"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_dataset_and_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "TransE"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "WN18RR", "--model", "GPT"]
            )

    def test_serve_requires_checkpoint_and_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--checkpoint", "m.npz"])

    def test_train_cache_backend_default_and_choices(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE"]
        )
        assert args.cache_backend == "array"
        assert args.profile is False
        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--cache-backend", "dict", "--profile"]
        )
        assert args.cache_backend == "dict"
        assert args.profile is True
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "WN18RR", "--model", "TransE",
                 "--cache-backend", "sqlite"]
            )

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--checkpoint", "m.npz", "--dataset", "WN18RR"]
        )
        assert args.port == 8080 and args.host == "127.0.0.1"
        assert args.top_k == 10 and args.cache_capacity == 1024

    def test_evaluate_top_k_option(self):
        args = build_parser().parse_args(
            ["evaluate", "--checkpoint", "m.npz", "--dataset", "WN18RR",
             "--top-k", "7"]
        )
        assert args.top_k == 7


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "WN18RR" in out and "#train" in out

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "cache-engine throughput" in out

    def test_train_profile_and_dict_backend(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--sampler", "NSCaching",
                "--epochs", "1",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-size", "4",
                "--candidate-size", "4",
                "--cache-backend", "dict",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-phase timing" in out
        for phase in ("sample", "cache_update", "optimizer"):
            assert phase in out

    def test_train_evaluate_roundtrip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--sampler", "NSCaching",
                "--epochs", "2",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-size", "5",
                "--candidate-size", "5",
                "--out", str(checkpoint),
                "--per-category",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mrr" in out
        assert "per-relation-category breakdown" in out
        assert checkpoint.exists()

        code = main(
            [
                "evaluate",
                "--checkpoint", str(checkpoint),
                "--dataset", "WN18RR",
                "--scale", "0.05",
                "--top-k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mrr" in out
        assert "sample tail predictions" in out
        assert "top-3 filtered predictions" in out

    def test_serve_scale_mismatch_fails_cleanly(self, tmp_path, capsys):
        from repro.models import make_model
        from repro.models.persistence import save_model

        # 3 entities can never match a loaded benchmark: serve must exit 2
        # before binding a socket.
        checkpoint = save_model(make_model("TransE", 3, 2, 4), tmp_path / "m")
        code = main(
            [
                "serve", "--checkpoint", str(checkpoint),
                "--dataset", "WN18RR", "--scale", "0.05",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_evaluate_scale_mismatch_fails_cleanly(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        main(
            [
                "train", "--dataset", "WN18RR", "--model", "TransE",
                "--epochs", "1", "--dim", "8", "--scale", "0.05",
                "--sampler", "Bernoulli", "--out", str(checkpoint),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "evaluate", "--checkpoint", str(checkpoint),
                "--dataset", "WN18RR", "--scale", "0.1",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestMemoryBoundedBackends:
    def test_parser_accepts_bounded_backends_and_buckets(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--cache-backend", "bucketed-array", "--n-buckets", "64"]
        )
        assert args.cache_backend == "bucketed-array"
        assert args.n_buckets == 64
        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--cache-backend", "hashed"]
        )
        assert args.cache_backend == "hashed"
        assert args.n_buckets is None

    def test_train_bucketed_array_end_to_end(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-size", "4",
                "--candidate-size", "4",
                "--cache-backend", "bucketed-array",
                "--n-buckets", "16",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mrr" in out
        # --profile surfaces the bucket introspection.
        assert "cache introspection" in out
        assert "allocated_bytes" in out
        assert "head_load_factor" in out

    def test_train_hashed_backend_reachable(self, capsys):
        """Regression: `hashed` used to be missing from the registry, so
        the paper's SVI extension was unreachable from the CLI."""
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-size", "4",
                "--candidate-size", "4",
                "--cache-backend", "hashed",
                "--n-buckets", "8",
            ]
        )
        assert code == 0
        assert "mrr" in capsys.readouterr().out

    def test_n_buckets_with_plain_backend_fails_cleanly(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-backend", "array",
                "--n-buckets", "16",
            ]
        )
        assert code == 2
        assert "does not accept option" in capsys.readouterr().err

    def test_non_positive_n_buckets_rejected_at_parse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["train", "--dataset", "WN18RR", "--model", "TransE",
                 "--cache-backend", "bucketed-array", "--n-buckets", "0"]
            )
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err


class TestParallelRefreshCLI:
    def test_parser_accepts_shards_and_workers(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--cache-backend", "sharded-array",
             "--n-shards", "4", "--refresh-workers", "2"]
        )
        assert args.cache_backend == "sharded-array"
        assert args.n_shards == 4
        assert args.refresh_workers == 2

    def test_shards_default_to_worker_count(self):
        from repro.cli import _sampler_kwargs

        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--sampler", "NSCaching",
             "--cache-backend", "sharded-array", "--refresh-workers", "3"]
        )
        kwargs = _sampler_kwargs(args)
        assert kwargs["cache_options"] == {"n_shards": 3}
        assert kwargs["refresh_workers"] == 3

    def test_n_buckets_selects_bucketed_inner_scheme(self):
        from repro.cli import _sampler_kwargs

        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--cache-backend", "sharded-array",
             "--n-shards", "2", "--n-buckets", "32"]
        )
        kwargs = _sampler_kwargs(args)
        assert kwargs["cache_options"] == {
            "n_shards": 2, "n_buckets": 32, "inner": "bucketed-array"
        }

    def test_train_sharded_backend_end_to_end(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-size", "4",
                "--candidate-size", "4",
                "--cache-backend", "sharded-array",
                "--n-shards", "2",
                "--refresh-workers", "2",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mrr" in out
        assert "parallel_refresh" in out
        assert "head_shard_live_rows" in out
        assert "refresh_workers" in out

    def test_n_shards_with_plain_backend_fails_cleanly(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--scale", "0.05",
                "--cache-backend", "array",
                "--n-shards", "4",
            ]
        )
        assert code == 2
        assert "does not accept option" in capsys.readouterr().err

    def test_workers_without_sharded_backend_fails_cleanly(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--scale", "0.05",
                "--refresh-workers", "2",
            ]
        )
        assert code == 2
        assert "sharded-array" in capsys.readouterr().err

    def test_parallel_flags_with_other_sampler_fail_cleanly(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--scale", "0.05",
                "--sampler", "Bernoulli",
                "--refresh-workers", "2",
            ]
        )
        assert code == 2
        assert "only apply to the NSCaching sampler" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flag", ("--n-shards", "--refresh-workers", "--refresh-period")
    )
    def test_non_positive_counts_rejected_at_parse(self, capsys, flag):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["train", "--dataset", "WN18RR", "--model", "TransE",
                 "--cache-backend", "sharded-array", flag, "0"]
            )
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err


class TestOverlapRefreshCLI:
    def test_overlap_flags_reach_sampler_kwargs(self):
        from repro.cli import _sampler_kwargs

        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--cache-backend", "sharded-array", "--refresh-workers", "2",
             "--refresh-overlap", "--refresh-period", "4", "--no-dirty-sync"]
        )
        kwargs = _sampler_kwargs(args)
        assert kwargs["refresh_overlap"] is True
        assert kwargs["refresh_period"] == 4
        assert kwargs["dirty_sync"] is False

    def test_defaults_keep_synchronous_full_sync_semantics(self):
        from repro.cli import _sampler_kwargs

        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE"]
        )
        kwargs = _sampler_kwargs(args)
        assert kwargs["refresh_overlap"] is False
        assert kwargs["refresh_period"] == 1
        assert kwargs["dirty_sync"] is True

    def test_overlap_without_workers_fails_cleanly(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--scale", "0.05",
                "--cache-backend", "sharded-array",
                "--refresh-overlap",
            ]
        )
        assert code == 2
        assert "refresh_workers >= 2" in capsys.readouterr().err

    def test_overlap_flags_with_other_sampler_fail_cleanly(self, capsys):
        for flags in (["--refresh-overlap"], ["--refresh-period", "2"]):
            code = main(
                [
                    "train",
                    "--dataset", "WN18RR",
                    "--model", "TransE",
                    "--epochs", "1",
                    "--scale", "0.05",
                    "--sampler", "Bernoulli",
                    *flags,
                ]
            )
            assert code == 2
            err = capsys.readouterr().err
            assert "only apply to the NSCaching sampler" in err

    def test_end_to_end_overlap_training(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "1",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-size", "4",
                "--candidate-size", "4",
                "--cache-backend", "sharded-array",
                "--n-shards", "2",
                "--refresh-workers", "2",
                "--refresh-overlap",
                "--refresh-period", "2",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mrr" in out
        assert "refresh_overlap" in out
        assert "refresh_period" in out
        assert "dirty_sync" in out


class TestObservabilityCLI:
    def _train_with_metrics(self, path):
        return main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--sampler", "NSCaching",
                "--epochs", "2",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-size", "4",
                "--candidate-size", "4",
                "--metrics-out", str(path),
            ]
        )

    def test_parser_accepts_metrics_out_and_tail(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--metrics-out", "run.jsonl"]
        )
        assert args.metrics_out == "run.jsonl"
        args = build_parser().parse_args(["metrics", "run.jsonl", "--tail", "5"])
        assert args.run_log == "run.jsonl"
        assert args.tail == 5

    def test_non_positive_tail_rejected_at_parse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["metrics", "run.jsonl", "--tail", "0"])
        assert excinfo.value.code == 2

    def test_train_writes_run_log_and_metrics_summarises(
        self, tmp_path, capsys
    ):
        from repro.obs.runlog import read_run_log

        path = tmp_path / "run.jsonl"
        assert self._train_with_metrics(path) == 0
        out = capsys.readouterr().out
        assert "run log written to" in out

        records = read_run_log(path)
        assert records[0]["type"] == "run_meta"
        assert records[-1]["type"] == "run_end"
        assert sum(r["type"] == "epoch" for r in records) == 2

        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run overview" in out
        assert "per-epoch telemetry" in out
        assert "per-phase seconds" in out
        assert "churn" in out

    def test_metrics_tail_limits_epoch_rows(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert self._train_with_metrics(path) == 0
        capsys.readouterr()
        assert main(["metrics", str(path), "--tail", "1"]) == 0
        out = capsys.readouterr().out
        # Exactly one epoch row: epoch 1 present, epoch 0 elided.
        assert "(last 1 of 2 epochs)" in out

    def test_metrics_missing_file_fails_cleanly(self, capsys):
        code = main(["metrics", "/nonexistent/run.jsonl"])
        assert code == 2
        assert "run.jsonl" in capsys.readouterr().err

    def test_metrics_invalid_log_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        assert main(["metrics", str(path)]) == 2
        assert "record type" in capsys.readouterr().err

    def test_metrics_empty_log_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["metrics", str(path)]) == 2
        assert "empty" in capsys.readouterr().err.lower()


class TestSampledEvaluateCLI:
    def test_sampled_flag_parses(self):
        args = build_parser().parse_args(
            ["evaluate", "--checkpoint", "m.npz", "--dataset", "WN18RR",
             "--sampled", "100", "--eval-seed", "7"]
        )
        assert args.sampled == 100
        assert args.eval_seed == 7

    def test_sampled_defaults_to_full_protocol(self):
        args = build_parser().parse_args(
            ["evaluate", "--checkpoint", "m.npz", "--dataset", "WN18RR"]
        )
        assert args.sampled is None
        assert args.eval_seed == 0

    def test_sampled_rejects_nonpositive_k(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--checkpoint", "m.npz", "--dataset", "WN18RR",
                 "--sampled", "0"]
            )

    def test_sampled_evaluate_runs(self, tmp_path, capsys):
        from repro.data.benchmarks import load_benchmark
        from repro.models import make_model
        from repro.models.persistence import save_model

        ds = load_benchmark("WN18RR", seed=0, scale=0.05)
        checkpoint = save_model(
            make_model("TransE", ds.n_entities, ds.n_relations, 8, rng=0),
            tmp_path / "m",
        )
        argv = [
            "evaluate", "--checkpoint", str(checkpoint),
            "--dataset", "WN18RR", "--scale", "0.05",
            "--sampled", "10", "--eval-seed", "3",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "mrr" in first
        # Same K and seed -> identical metrics on a second run.
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestLenientMetricsCLI:
    """`repro metrics` on truncated/partial logs: summarise, don't raise."""

    def _valid_lines(self):
        import json

        from repro.obs.runlog import RUN_LOG_VERSION

        meta = {
            "type": "run_meta", "version": RUN_LOG_VERSION,
            "model": "TransE", "dataset": "tiny", "sampler": "NSCaching",
            "config": {},
        }
        epoch = {
            "type": "epoch", "version": RUN_LOG_VERSION, "epoch": 0,
            "loss": 1.0, "nzl": 0.5, "grad_norm": 2.0,
            "epoch_seconds": 0.1, "samples_per_sec": 100.0,
        }
        return json.dumps(meta), json.dumps(epoch)

    def test_half_written_last_line_summarised_with_warning(
        self, tmp_path, capsys
    ):
        meta, epoch = self._valid_lines()
        path = tmp_path / "crashed.jsonl"
        path.write_text(meta + "\n" + epoch + "\n" + epoch[:25] + "\n")
        assert main(["metrics", str(path)]) == 0
        captured = capsys.readouterr()
        assert "run overview" in captured.out
        assert "warning" in captured.err
        assert "prefix" in captured.err

    def test_missing_run_end_summarised_with_warning(self, tmp_path, capsys):
        meta, epoch = self._valid_lines()
        path = tmp_path / "inflight.jsonl"
        path.write_text(meta + "\n" + epoch + "\n")
        assert main(["metrics", str(path)]) == 0
        captured = capsys.readouterr()
        assert "per-epoch telemetry" in captured.out
        assert "no run_end" in captured.err

    def test_complete_log_stays_warning_free(self, tmp_path, capsys):
        import json

        from repro.obs.runlog import RUN_LOG_VERSION

        meta, epoch = self._valid_lines()
        end = json.dumps({
            "type": "run_end", "version": RUN_LOG_VERSION,
            "epochs": 1, "train_seconds": 0.1,
        })
        path = tmp_path / "ok.jsonl"
        path.write_text(meta + "\n" + epoch + "\n" + end + "\n")
        assert main(["metrics", str(path)]) == 0
        assert capsys.readouterr().err == ""


class TestTraceCLI:
    def _train_with_trace(self, path, *extra):
        return main(
            [
                "train",
                "--dataset", "WN18RR",
                "--model", "TransE",
                "--epochs", "2",
                "--dim", "8",
                "--scale", "0.05",
                "--cache-size", "4",
                "--candidate-size", "4",
                "--trace-out", str(path),
                *extra,
            ]
        )

    def test_parser_accepts_trace_flags(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "WN18RR", "--model", "TransE",
             "--trace-out", "t.jsonl"]
        )
        assert args.trace_out == "t.jsonl"
        args = build_parser().parse_args(["trace", "summary", "t.jsonl"])
        assert args.trace_command == "summary"
        args = build_parser().parse_args(
            ["trace", "export", "t.jsonl", "--chrome", "t.json"]
        )
        assert args.chrome == "t.json"
        args = build_parser().parse_args(
            ["serve", "--checkpoint", "m.npz", "--dataset", "WN18RR",
             "--trace-out", "t.jsonl", "--slow-request-ms", "250"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.slow_request_ms == 250.0

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_train_trace_then_summary_and_export(self, tmp_path, capsys):
        import json

        from repro.obs.trace import validate_chrome_trace

        trace_path = tmp_path / "trace.jsonl"
        assert self._train_with_trace(trace_path) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert trace_path.exists()

        assert main(["trace", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "span summary" in out
        assert "train" in out

        chrome_path = tmp_path / "trace.json"
        assert main(
            ["trace", "export", str(trace_path), "--chrome", str(chrome_path)]
        ) == 0
        assert "chrome trace written" in capsys.readouterr().out
        validate_chrome_trace(json.loads(chrome_path.read_text()))

    def test_overlap_trace_reports_hiding_percentage(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = self._train_with_trace(
            trace_path,
            "--cache-backend", "sharded-array",
            "--refresh-workers", "2",
            "--refresh-overlap",
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "refresh/step overlap" in out
        assert "hidden behind step (%)" in out
        assert "refresh_worker" in out

    def test_trace_missing_file_fails_cleanly(self, capsys):
        assert main(["trace", "summary", "/nonexistent/t.jsonl"]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_trace_on_run_log_fails_with_guidance(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(
            [
                "train", "--dataset", "WN18RR", "--model", "TransE",
                "--epochs", "1", "--dim", "8", "--scale", "0.05",
                "--cache-size", "4", "--candidate-size", "4",
                "--metrics-out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(path)]) == 2
        assert "not a trace file" in capsys.readouterr().err

    def test_trace_empty_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "summary", str(path)]) == 2
        assert "no spans" in capsys.readouterr().err
