"""Unit tests for span tracing: ring, serialisation, export, analysis."""

import json
import os
import threading

import pytest

from repro.obs.runlog import RUN_LOG_VERSION, RunLogError, RunLogWriter
from repro.obs.trace import (
    Span,
    Tracer,
    category_summary,
    chrome_trace,
    overlap_report,
    read_trace,
    validate_chrome_trace,
    write_trace,
)


def _span_record(name="s", cat="c", ts=0.0, dur=1.0, pid=1, tid=1, **extra):
    record = {
        "type": "span", "version": RUN_LOG_VERSION,
        "name": name, "cat": cat, "ts": ts, "dur": dur, "pid": pid, "tid": tid,
    }
    record.update(extra)
    return record


class TestSpan:
    def test_start_end_records_into_tracer(self):
        tracer = Tracer(capacity=8)
        span = tracer.start_span("work", "test", args={"k": 1})
        assert len(tracer) == 0  # open spans are not in the ring yet
        duration = span.end()
        assert duration >= 0.0
        (record,) = tracer.records()
        assert record["name"] == "work"
        assert record["cat"] == "test"
        assert record["args"] == {"k": 1}
        assert record["pid"] == os.getpid()
        assert record["tid"] == threading.get_native_id()

    def test_end_is_idempotent(self):
        tracer = Tracer(capacity=8)
        span = tracer.start_span("once")
        first = span.end()
        assert span.end() == first
        assert len(tracer) == 1

    def test_context_manager_ends(self):
        tracer = Tracer(capacity=8)
        with tracer.start_span("ctx"):
            pass
        assert len(tracer) == 1

    def test_as_record_validates(self):
        tracer = Tracer(capacity=8)
        span = tracer.start_span("valid", "cat")
        span.end()
        from repro.obs.runlog import validate_record

        validate_record(span.as_record())

    def test_unfinished_span_records_zero_duration(self):
        span = Span("open", "", 1.0, 1, 1, None, None)
        assert span.as_record()["dur"] == 0.0


class TestTracerRing:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_overwrites_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.ingest((_span_record(name=f"s{i}", ts=float(i)),))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [r["name"] for r in tracer.records()] == ["s2", "s3", "s4"]

    def test_records_preserves_drain_resets(self):
        tracer = Tracer(capacity=4)
        tracer.ingest((_span_record(), _span_record(name="t")))
        assert len(tracer.records()) == 2
        assert len(tracer) == 2  # records() is non-destructive
        drained = tracer.drain()
        assert [r["name"] for r in drained] == ["s", "t"]
        assert len(tracer) == 0
        assert tracer.records() == []

    def test_ingest_roundtrips_worker_records(self):
        worker = Tracer(capacity=8)
        with worker.start_span("shard_task", "refresh_worker", args={"shard": 1}):
            pass
        shipped = worker.drain()
        parent = Tracer(capacity=8)
        assert parent.ingest(shipped) == 1
        (record,) = parent.records()
        assert record["name"] == "shard_task"
        assert record["args"] == {"shard": 1}

    def test_thread_safety_under_concurrent_recording(self):
        tracer = Tracer(capacity=4096)
        n_threads, per_thread = 8, 200

        def work():
            for _ in range(per_thread):
                tracer.start_span("t").end()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == n_threads * per_thread
        assert tracer.dropped == 0


class TestTraceFiles:
    def test_write_read_roundtrip_sorted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [
            _span_record(name="b", ts=2.0),
            _span_record(name="a", ts=1.0),
        ]
        write_trace(path, records)
        back = read_trace(path)
        assert [r["name"] for r in back] == ["a", "b"]

    def test_write_validates_before_touching_the_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with pytest.raises(RunLogError):
            write_trace(path, [_span_record(), {"type": "span"}])
        assert not path.exists()

    def test_read_rejects_non_span_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as writer:
            writer.write(_span_record())
            writer.write({
                "type": "run_end", "version": RUN_LOG_VERSION,
                "epochs": 1, "train_seconds": 1.0,
            })
        with pytest.raises(RunLogError, match="not a trace file"):
            read_trace(path)


class TestChromeExport:
    def test_rebases_and_converts_to_microseconds(self):
        obj = chrome_trace([
            _span_record(name="late", ts=10.5, dur=0.25),
            _span_record(name="early", ts=10.0, dur=1.0),
        ])
        validate_chrome_trace(obj)
        assert obj["displayTimeUnit"] == "ms"
        early, late = obj["traceEvents"]
        assert early["name"] == "early"
        assert early["ts"] == 0.0
        assert early["dur"] == pytest.approx(1e6)
        assert late["ts"] == pytest.approx(0.5e6)
        assert late["dur"] == pytest.approx(0.25e6)

    def test_empty_category_becomes_default(self):
        obj = chrome_trace([_span_record(cat="")])
        assert obj["traceEvents"][0]["cat"] == "default"

    def test_args_pass_through(self):
        obj = chrome_trace([_span_record(args={"epoch": 3})])
        assert obj["traceEvents"][0]["args"] == {"epoch": 3}

    def test_export_is_json_serialisable(self):
        obj = chrome_trace([_span_record()])
        validate_chrome_trace(json.loads(json.dumps(obj)))

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda e: e.pop("name"), "name"),
            (lambda e: e.update(ph="B"), "ph"),
            (lambda e: e.update(ts=-1.0), "ts"),
            (lambda e: e.update(dur="x"), "dur"),
            (lambda e: e.update(pid=True), "pid"),
            (lambda e: e.update(tid=1.5), "tid"),
        ],
    )
    def test_validate_rejects_malformed_events(self, mutate, match):
        obj = chrome_trace([_span_record()])
        mutate(obj["traceEvents"][0])
        with pytest.raises(ValueError, match=match):
            validate_chrome_trace(obj)

    def test_validate_rejects_non_object(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace([])


class TestCategorySummary:
    def test_self_time_carves_out_direct_children(self):
        records = [
            _span_record(name="parent", cat="train", ts=0.0, dur=10.0),
            _span_record(name="child", cat="refresh", ts=1.0, dur=4.0),
            _span_record(name="grandchild", cat="refresh", ts=2.0, dur=1.0),
        ]
        rows = {r["category"]: r for r in category_summary(records)}
        # parent loses only its direct child's 4s (grandchild nests in child)
        assert rows["train"]["self_seconds"] == pytest.approx(6.0)
        assert rows["refresh"]["seconds"] == pytest.approx(5.0)
        assert rows["refresh"]["self_seconds"] == pytest.approx(4.0)

    def test_different_threads_never_nest(self):
        records = [
            _span_record(name="a", cat="x", ts=0.0, dur=10.0, tid=1),
            _span_record(name="b", cat="y", ts=1.0, dur=4.0, tid=2),
        ]
        rows = {r["category"]: r for r in category_summary(records)}
        assert rows["x"]["self_seconds"] == pytest.approx(10.0)
        assert rows["y"]["self_seconds"] == pytest.approx(4.0)

    def test_sorted_by_self_seconds_descending(self):
        records = [
            _span_record(cat="small", dur=1.0),
            _span_record(cat="big", ts=10.0, dur=5.0),
        ]
        assert [r["category"] for r in category_summary(records)] == [
            "big", "small",
        ]


class TestOverlapReport:
    def test_half_hidden_worker(self):
        records = [
            _span_record(
                name="shard_task", cat="refresh_worker", ts=0.0, dur=2.0, pid=2
            ),
            _span_record(name="gradients", cat="train", ts=1.0, dur=1.5, pid=1),
            _span_record(name="optimizer", cat="train", ts=2.5, dur=0.5, pid=1),
        ]
        report = overlap_report(records)
        assert report == {
            "worker_seconds": pytest.approx(2.0),
            "step_seconds": pytest.approx(2.0),
            "hidden_seconds": pytest.approx(1.0),
            "hidden_pct": pytest.approx(50.0),
        }

    def test_none_when_either_side_absent(self):
        worker_only = [_span_record(name="shard_task", cat="refresh_worker")]
        step_only = [_span_record(name="gradients", cat="train")]
        assert overlap_report(worker_only) is None
        assert overlap_report(step_only) is None
        assert overlap_report([]) is None

    def test_step_intervals_merge_before_intersection(self):
        # Two overlapping step spans must not double-count hidden time.
        records = [
            _span_record(
                name="shard_task", cat="refresh_worker", ts=0.0, dur=4.0, pid=2
            ),
            _span_record(name="gradients", cat="train", ts=0.0, dur=3.0, pid=1),
            _span_record(name="optimizer", cat="train", ts=1.0, dur=2.0, pid=1),
        ]
        report = overlap_report(records)
        assert report["hidden_seconds"] == pytest.approx(3.0)
        assert report["hidden_pct"] == pytest.approx(75.0)
