"""Tests for the metrics registry: instruments, exposition, snapshots."""

import threading

import numpy as np
import pytest

from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_set_total_mirrors_external_counter(self):
        counter = Counter("c")
        counter.set_total(42)
        assert counter.value == 42.0

    def test_samples_one_point(self):
        (sample,) = Counter("c", labels=(("mode", "head"),)).samples()
        assert sample.name == "c"
        assert sample.kind == "counter"
        assert sample.labels == (("mode", "head"),)


class TestGauge:
    def test_set_and_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.dec(3.0)
        gauge.inc()
        assert gauge.value == 8.0


class TestHistogram:
    def test_observe_fills_correct_bucket(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(99.0)  # +Inf bucket
        assert list(hist.counts) == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == pytest.approx(101.0)

    def test_observe_many_matches_scalar_observes(self):
        values = np.array([0.1, 0.4, 1.1, 2.5, 100.0])
        one = Histogram("a", bounds=(0.5, 1.0, 5.0))
        many = Histogram("b", bounds=(0.5, 1.0, 5.0))
        for v in values:
            one.observe(float(v))
        many.observe_many(values)
        assert list(one.counts) == list(many.counts)
        assert one.sum == pytest.approx(many.sum)
        assert one.count == many.count

    def test_samples_are_cumulative_with_inf(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            hist.observe(v)
        samples = {f"{s.name}{dict(s.labels).get('le', '')}": s.value
                   for s in hist.samples()}
        assert samples["h_bucket1"] == 1.0
        assert samples["h_bucket2"] == 2.0  # cumulative
        assert samples["h_bucket+Inf"] == 3.0
        assert samples["h_count"] == 3.0
        assert samples["h_sum"] == pytest.approx(5.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_default_bounds_are_latency_shaped(self):
        assert DEFAULT_SECONDS_BUCKETS[0] < 0.001
        assert DEFAULT_SECONDS_BUCKETS[-1] >= 10.0

    def test_concurrent_observes_are_not_lost(self):
        hist = Histogram("h", bounds=(1.0,))
        n, threads = 500, []
        for _ in range(4):
            threads.append(
                threading.Thread(
                    target=lambda: [hist.observe(0.5) for _ in range(n)]
                )
            )
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 4 * n


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("c", "help")
        b = registry.counter("c")
        assert a is b
        assert len(registry) == 1

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        head = registry.counter("c", labels={"mode": "head"})
        tail = registry.counter("c", labels={"mode": "tail"})
        assert head is not tail
        assert len(registry) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"a": 1, "b": 2})
        b = registry.counter("c", labels={"b": 2, "a": 1})
        assert a is b

    def test_name_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_gauge_counter_confusion_rejected_even_with_new_labels(self):
        # Gauge subclasses Counter; a lax isinstance check would hand a
        # gauge back to a caller that asked for a counter.
        registry = MetricsRegistry()
        registry.gauge("x", labels={"a": 1})
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x", labels={"b": 2})

    def test_value_reads_without_creating(self):
        registry = MetricsRegistry()
        assert registry.value("missing") == 0.0
        assert len(registry) == 0
        registry.inc("c", 5)
        assert registry.value("c") == 5.0

    def test_snapshot_delta_is_one_dict_subtraction(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labels={"mode": "head"})
        counter.inc(3)
        before = registry.snapshot()
        counter.inc(4)
        after = registry.snapshot()
        key = ("c", (("mode", "head"),))
        assert after[key] - before[key] == 4.0

    def test_snapshot_has_histogram_sum_count_but_no_buckets(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.5)
        names = {name for name, _labels in registry.snapshot()}
        assert names == {"h_sum", "h_count"}


class TestExposition:
    def test_as_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc(2)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        payload = registry.as_json()
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["c"]["value"] == 2.0
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["buckets"]["+Inf"] == 0

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "requests served",
                         labels={"route": "/predict"}).inc(7)
        registry.gauge("load", "current load").set(0.5)
        text = registry.to_prometheus()
        assert "# HELP requests_total requests served" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{route="/predict"} 7' in text
        assert "# TYPE load gauge" in text
        assert "load 0.5" in text
        assert text.endswith("\n")

    def test_prometheus_histogram_series(self):
        registry = MetricsRegistry()
        registry.histogram("h", "timings", bounds=(1.0, 2.0)).observe(1.5)
        text = registry.to_prometheus()
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1.5" in text
        assert "h_count 1" in text

    def test_help_and_type_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("c", "shared help", labels={"mode": "head"}).inc()
        registry.counter("c", labels={"mode": "tail"}).inc()
        text = registry.to_prometheus()
        assert text.count("# TYPE c counter") == 1
        assert text.count("# HELP c shared help") == 1

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"path": 'a"b\\c\nd'}).inc()
        text = registry.to_prometheus()
        assert r'path="a\"b\\c\nd"' in text
