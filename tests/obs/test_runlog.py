"""Tests for the JSONL run log: writer, validation, summarisation."""

import json

import pytest

from repro.obs.runlog import (
    RUN_LOG_VERSION,
    SUPPORTED_VERSIONS,
    RunLogError,
    RunLogWriter,
    epoch_records,
    read_run_log,
    read_run_log_lenient,
    validate_record,
)
from repro.obs.summary import EPOCH_COLUMNS, epoch_rows, phase_totals, run_overview


def _meta():
    return {
        "type": "run_meta", "version": RUN_LOG_VERSION,
        "model": "TransE", "dataset": "tiny", "sampler": "NSCaching",
        "config": {"epochs": 2},
    }


def _epoch(i, **extra):
    record = {
        "type": "epoch", "version": RUN_LOG_VERSION, "epoch": i,
        "loss": 1.0 - 0.1 * i, "nzl": 0.9, "grad_norm": 3.0,
        "epoch_seconds": 0.5, "samples_per_sec": 1000.0,
    }
    record.update(extra)
    return record


def _end():
    return {
        "type": "run_end", "version": RUN_LOG_VERSION,
        "epochs": 2, "train_seconds": 1.0,
    }


def _span(**extra):
    record = {
        "type": "span", "version": RUN_LOG_VERSION,
        "name": "gradients", "cat": "train",
        "ts": 12.5, "dur": 0.25, "pid": 100, "tid": 200,
    }
    record.update(extra)
    return record


class TestValidate:
    def test_valid_records_pass(self):
        for record in (_meta(), _epoch(0), _end()):
            assert validate_record(record) is record

    @pytest.mark.parametrize(
        "record, match",
        [
            ([], "must be an object"),
            ({"type": "nope", "version": RUN_LOG_VERSION}, "record type"),
            ({"type": "epoch", "version": 99}, "version"),
            ({**_meta(), "model": 3}, "run_meta.model"),
            ({**_meta(), "config": "x"}, "run_meta.config"),
            (_epoch(-1), "non-negative"),
            (_epoch(True), "non-negative"),
            ({k: v for k, v in _epoch(0).items() if k != "loss"}, "epoch.loss"),
            (_epoch(0, loss="high"), "epoch.loss"),
            (_epoch(0, phase_seconds=[1, 2]), "phase_seconds"),
            (_epoch(0, cache={"churn": 1}), "cache.refreshed_rows"),
            ({**_end(), "train_seconds": None}, "train_seconds"),
        ],
    )
    def test_invalid_records_rejected(self, record, match):
        with pytest.raises(RunLogError, match=match):
            validate_record(record)

    def test_cache_block_with_both_fields_passes(self):
        validate_record(_epoch(0, cache={"churn": 5, "refreshed_rows": 10}))


class TestSchemaVersions:
    """Version 2 is additive: v1 records stay valid, spans need v2."""

    def test_both_versions_supported(self):
        assert SUPPORTED_VERSIONS == (1, 2)
        assert RUN_LOG_VERSION == 2

    def test_version_1_records_still_valid(self):
        for record in (_meta(), _epoch(0), _end()):
            validate_record({**record, "version": 1})

    def test_span_record_valid_at_v2(self):
        assert validate_record(_span())
        validate_record(_span(args={"epoch": 3}))

    def test_span_record_rejected_at_v1(self):
        with pytest.raises(RunLogError, match="version >= 2"):
            validate_record(_span(version=1))

    @pytest.mark.parametrize(
        "record, match",
        [
            (_span(name=3), "span.name"),
            (_span(cat=None), "span.cat"),
            ({k: v for k, v in _span().items() if k != "ts"}, "span.ts"),
            (_span(ts=-1.0), "span.ts"),
            (_span(dur="long"), "span.dur"),
            (_span(pid=1.5), "span.pid"),
            (_span(tid=True), "span.tid"),
            (_span(args=[1]), "span.args"),
        ],
    )
    def test_malformed_span_rejected(self, record, match):
        with pytest.raises(RunLogError, match=match):
            validate_record(record)


class TestWriter:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as writer:
            writer.write(_meta())
            writer.write(_epoch(0))
            writer.write(_end())
        records = read_run_log(path)
        assert [r["type"] for r in records] == ["run_meta", "epoch", "run_end"]
        assert writer.records_written == 3

    def test_flushes_per_record_for_live_tailing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = RunLogWriter(path)
        writer.write(_meta())
        # Readable before close — the writer flushes every record.
        assert len(read_run_log(path)) == 1
        writer.close()

    def test_invalid_record_rejected_before_write(self, tmp_path):
        writer = RunLogWriter(tmp_path / "run.jsonl")
        with pytest.raises(RunLogError):
            writer.write({"type": "epoch"})
        assert writer.records_written == 0

    def test_closed_writer_silently_drops(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = RunLogWriter(path)
        writer.write(_meta())
        writer.close()
        writer.close()  # idempotent
        writer.write(_epoch(0))  # dropped, no error
        assert len(read_run_log(path)) == 1

    def test_stamp_adds_version_and_time(self):
        record = RunLogWriter("unused.jsonl").stamp({"type": "run_end"})
        assert record["version"] == RUN_LOG_VERSION
        assert record["unix_time"] > 0

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "run.jsonl"
        with RunLogWriter(path) as writer:
            writer.write(_meta())
        assert path.exists()


class TestReader:
    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(_meta()) + "\n\n" + json.dumps(_end()) + "\n")
        assert len(read_run_log(path)) == 2

    def test_bad_json_fails_with_line_number(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(_meta()) + "\n{broken\n")
        with pytest.raises(RunLogError, match=":2:"):
            read_run_log(path)

    def test_invalid_record_fails_with_line_number(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(_meta()) + "\n" + json.dumps({"type": "x"}) + "\n")
        with pytest.raises(RunLogError, match=":2:"):
            read_run_log(path)

    def test_epoch_records_filter(self):
        records = [_meta(), _epoch(0), _epoch(1), _end()]
        assert [r["epoch"] for r in epoch_records(records)] == [0, 1]


class TestLenientReader:
    def _write(self, tmp_path, *lines):
        path = tmp_path / "run.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_clean_complete_log_no_warnings(self, tmp_path):
        path = self._write(
            tmp_path, json.dumps(_meta()), json.dumps(_epoch(0)),
            json.dumps(_end()),
        )
        records, warnings = read_run_log_lenient(path)
        assert len(records) == 3
        assert warnings == []

    def test_half_written_last_line_returns_prefix(self, tmp_path):
        path = self._write(
            tmp_path, json.dumps(_meta()), json.dumps(_epoch(0)),
            json.dumps(_epoch(1))[:20],  # writer died mid-record
        )
        records, warnings = read_run_log_lenient(path)
        assert [r["type"] for r in records] == ["run_meta", "epoch"]
        assert any("invalid JSON" in w and ":3:" in w for w in warnings)
        assert any("no run_end" in w for w in warnings)

    def test_invalid_record_returns_prefix_with_warning(self, tmp_path):
        path = self._write(
            tmp_path, json.dumps(_meta()), json.dumps({"type": "bogus"}),
        )
        records, warnings = read_run_log_lenient(path)
        assert len(records) == 1
        assert any("record type" in w for w in warnings)

    def test_missing_run_end_alone_warns(self, tmp_path):
        path = self._write(tmp_path, json.dumps(_meta()), json.dumps(_epoch(0)))
        records, warnings = read_run_log_lenient(path)
        assert len(records) == 2
        assert len(warnings) == 1
        assert "no run_end" in warnings[0]

    def test_empty_file_no_records_no_warnings(self, tmp_path):
        path = self._write(tmp_path, "")
        records, warnings = read_run_log_lenient(path)
        assert records == []
        assert warnings == []

    def test_strict_reader_still_raises_on_truncation(self, tmp_path):
        path = self._write(tmp_path, json.dumps(_meta()), "{broken")
        with pytest.raises(RunLogError):
            read_run_log(path)
        records, _ = read_run_log_lenient(path)
        assert len(records) == 1


class TestSummary:
    def _records(self, complete=True):
        records = [
            _meta(),
            _epoch(0, cache={"churn": 100, "refreshed_rows": 10,
                             "survivor_fraction": 0.8},
                   phase_seconds={"sample": 0.1, "score": 0.2}),
            _epoch(1, cache={"churn": 50, "refreshed_rows": 10},
                   phase_seconds={"sample": 0.3}),
        ]
        if complete:
            records.append(_end())
        return records

    def test_overview_complete_run(self):
        overview = run_overview(self._records())
        assert overview["model"] == "TransE"
        assert overview["epochs_logged"] == 2
        assert overview["total_churn"] == 150
        assert overview["complete"] is True
        assert overview["train_seconds"] == 1.0

    def test_overview_partial_run(self):
        overview = run_overview(self._records(complete=False))
        assert overview["complete"] is False
        assert "train_seconds" not in overview

    def test_epoch_rows_match_columns(self):
        rows = epoch_rows(self._records())
        assert len(rows) == 2
        assert all(len(row) == len(EPOCH_COLUMNS) for row in rows)
        assert rows[0][EPOCH_COLUMNS.index("churn")] == 100
        # Second epoch logged no survivor fraction: placeholder, not crash.
        assert rows[1][EPOCH_COLUMNS.index("survivors")] == "--"

    def test_epoch_rows_tail(self):
        rows = epoch_rows(self._records(), tail=1)
        assert len(rows) == 1
        assert rows[0][0] == 1

    def test_phase_totals_sum_across_epochs(self):
        totals = phase_totals(self._records())
        assert totals["sample"] == pytest.approx(0.4)
        assert totals["score"] == pytest.approx(0.2)
