"""Tests for embedding initialisers."""

import numpy as np
import pytest

from repro.models.initializers import (
    normalize_rows,
    uniform_ball,
    xavier_normal,
    xavier_uniform,
)


class TestXavier:
    def test_uniform_bound(self):
        d = 16
        array = xavier_uniform((100, d), rng=0)
        bound = np.sqrt(6.0 / (2 * d))
        assert np.all(np.abs(array) <= bound)

    def test_uniform_deterministic(self):
        np.testing.assert_array_equal(
            xavier_uniform((5, 4), rng=1), xavier_uniform((5, 4), rng=1)
        )

    def test_normal_std_close_to_target(self):
        d = 32
        array = xavier_normal((2000, d), rng=0)
        assert array.std() == pytest.approx(np.sqrt(1.0 / d), rel=0.1)


class TestNormalizeRows:
    def test_large_rows_projected(self):
        array = np.array([[3.0, 4.0], [0.1, 0.0]])
        out = normalize_rows(array)
        assert np.linalg.norm(out[0]) == pytest.approx(1.0)
        np.testing.assert_allclose(out[1], [0.1, 0.0])  # inside ball untouched

    def test_custom_max_norm(self):
        array = np.array([[3.0, 4.0]])
        out = normalize_rows(array, max_norm=2.0)
        assert np.linalg.norm(out[0]) == pytest.approx(2.0)

    def test_zero_row_survives(self):
        out = normalize_rows(np.zeros((1, 4)))
        np.testing.assert_array_equal(out, np.zeros((1, 4)))


class TestUniformBall:
    def test_all_rows_inside_unit_ball(self):
        array = uniform_ball((50, 6), rng=0)
        assert np.all(np.linalg.norm(array, axis=1) <= 1.0 + 1e-12)
