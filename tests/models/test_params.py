"""Tests for the GradientBag sparse-gradient container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.params import GradientBag


class TestGradientBag:
    def test_empty_bag_is_falsy(self):
        assert not GradientBag()

    def test_add_then_compact(self):
        bag = GradientBag()
        bag.add("w", np.array([0, 2]), np.array([[1.0, 1.0], [2.0, 2.0]]))
        items = list(bag.compacted())
        assert len(items) == 1
        name, rows, grads = items[0]
        assert name == "w"
        np.testing.assert_array_equal(rows, [0, 2])

    def test_duplicate_rows_summed(self):
        bag = GradientBag()
        bag.add("w", np.array([1, 1]), np.array([[1.0], [2.0]]))
        _, rows, grads = next(iter(bag.compacted()))
        np.testing.assert_array_equal(rows, [1])
        np.testing.assert_allclose(grads, [[3.0]])

    def test_duplicates_across_calls_summed(self):
        bag = GradientBag()
        bag.add("w", np.array([4]), np.array([[1.0]]))
        bag.add("w", np.array([4]), np.array([[5.0]]))
        _, rows, grads = next(iter(bag.compacted()))
        np.testing.assert_allclose(grads, [[6.0]])

    def test_empty_rows_ignored(self):
        bag = GradientBag()
        bag.add("w", np.empty(0, dtype=np.int64), np.empty((0, 3)))
        assert not bag

    def test_mismatched_lengths_rejected(self):
        bag = GradientBag()
        with pytest.raises(ValueError, match="disagree"):
            bag.add("w", np.array([0, 1]), np.array([[1.0]]))

    def test_merge_combines_bags(self):
        a, b = GradientBag(), GradientBag()
        a.add("x", np.array([0]), np.array([[1.0]]))
        b.add("x", np.array([0]), np.array([[2.0]]))
        b.add("y", np.array([1]), np.array([[3.0]]))
        a.merge(b)
        dense = a.dense({"x": (2, 1), "y": (2, 1)})
        assert dense["x"][0, 0] == 3.0
        assert dense["y"][1, 0] == 3.0

    def test_dense_materialisation(self):
        bag = GradientBag()
        bag.add("w", np.array([1]), np.array([[2.0, 0.0]]))
        dense = bag.dense({"w": (3, 2)})
        expected = np.zeros((3, 2))
        expected[1, 0] = 2.0
        np.testing.assert_array_equal(dense["w"], expected)

    def test_global_norm(self):
        bag = GradientBag()
        bag.add("w", np.array([0]), np.array([[3.0, 4.0]]))
        assert bag.global_norm() == pytest.approx(5.0)

    def test_touched_rows_unknown_param_empty(self):
        assert len(GradientBag().touched_rows("nope")) == 0

    def test_matrix_shaped_rows_supported(self):
        bag = GradientBag()
        bag.add("m", np.array([0, 0]), np.ones((2, 3, 3)))
        _, rows, grads = next(iter(bag.compacted()))
        assert grads.shape == (1, 3, 3)
        np.testing.assert_allclose(grads[0], 2.0)

    @given(
        rows=st.lists(st.integers(0, 9), min_size=1, max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_compaction_preserves_total(self, rows):
        """Sum of compacted gradients equals sum of raw contributions."""
        bag = GradientBag()
        values = np.arange(len(rows), dtype=np.float64).reshape(-1, 1)
        bag.add("w", np.asarray(rows), values)
        _, unique_rows, grads = next(iter(bag.compacted()))
        assert grads.sum() == pytest.approx(values.sum())
        assert sorted(set(rows)) == unique_rows.tolist()
