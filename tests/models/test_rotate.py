"""RotatE-specific semantics (gradients/consistency are covered by the
parametrised registry suites)."""

import numpy as np
import pytest

from repro.models.rotate import RotatE

E, R, D = 10, 3, 8


class TestRotatE:
    def test_zero_phase_reduces_to_plain_distance(self):
        model = RotatE(E, R, D, rng=0)
        model.params["phase"][...] = 0.0
        h, r, t = np.array([0]), np.array([0]), np.array([1])
        p = model.params
        expected = -np.sqrt(
            np.sum((p["entity_re"][0] - p["entity_re"][1]) ** 2)
            + np.sum((p["entity_im"][0] - p["entity_im"][1]) ** 2)
            + 2e-12
        )
        assert model.score(h, r, t)[0] == pytest.approx(expected, abs=1e-9)

    def test_exact_rotation_scores_zero_distance(self):
        model = RotatE(E, R, D, rng=0)
        theta = model.params["phase"][0]
        h_re = model.params["entity_re"][0]
        h_im = model.params["entity_im"][0]
        model.params["entity_re"][1] = h_re * np.cos(theta) - h_im * np.sin(theta)
        model.params["entity_im"][1] = h_re * np.sin(theta) + h_im * np.cos(theta)
        score = model.score(np.array([0]), np.array([0]), np.array([1]))[0]
        assert score == pytest.approx(0.0, abs=1e-6)

    def test_rotation_models_inverse_relation(self):
        """r and -theta are exact inverses: f(h, r, t) == f(t, r_inv, h)."""
        model = RotatE(E, R, D, rng=0)
        model.params["phase"][1] = -model.params["phase"][0]
        forward = model.score(np.array([2]), np.array([0]), np.array([5]))[0]
        backward = model.score(np.array([5]), np.array([1]), np.array([2]))[0]
        assert forward == pytest.approx(backward, abs=1e-9)

    def test_symmetric_relation_via_pi_phases(self):
        """theta in {0, pi} gives r = r^-1: the relation is symmetric."""
        model = RotatE(E, R, D, rng=0)
        model.params["phase"][0] = np.pi * (np.arange(D) % 2)
        forward = model.score(np.array([2]), np.array([0]), np.array([5]))[0]
        backward = model.score(np.array([5]), np.array([0]), np.array([2]))[0]
        assert forward == pytest.approx(backward, abs=1e-9)

    def test_margin_loss_family(self):
        assert RotatE.default_loss == "margin"
