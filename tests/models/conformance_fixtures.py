"""Shared helpers for the model-conformance harness (see ``conftest.py``).

Kept outside ``conftest.py`` so test modules can import the constants and
oracle directly (the tests directory is not a package).
"""

from __future__ import annotations

import numpy as np

from repro.models import make_model

#: Vocabulary the conformance models are built with — deliberately odd
#: sizes (13 entities, 4 relations, dim 6) to shake out square-shape
#: assumptions in kernels.
CONF_N_ENTITIES = 13
CONF_N_RELATIONS = 4
CONF_DIM = 6


def build_conformance_model(name: str, rng: int = 3):
    """A small, seeded instance of one registry model."""
    return make_model(name, CONF_N_ENTITIES, CONF_N_RELATIONS, CONF_DIM, rng=rng)


def looped_reference_scores(model, anchors, r, candidates, mode):
    """Candidate-block scores via one ``score()`` call per row.

    The slowest, most obviously correct formulation — the oracle every
    ``score_candidates`` kernel must agree with.
    """
    b, c = candidates.shape
    out = np.empty((b, c), dtype=np.float64)
    for i in range(b):
        if mode == "tail":
            out[i] = model.score(
                np.full(c, anchors[i]), np.full(c, r[i]), candidates[i]
            )
        else:
            out[i] = model.score(
                candidates[i], np.full(c, r[i]), np.full(c, anchors[i])
            )
    return out
