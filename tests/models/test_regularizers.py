"""Tests for the touched-row L2 regulariser."""

import numpy as np
import pytest

from repro.models.params import GradientBag
from repro.models.regularizers import L2Regularizer


class TestL2Regularizer:
    def test_gradient_is_two_lambda_theta(self):
        reg = L2Regularizer(0.5)
        params = {"w": np.array([[1.0, 2.0], [3.0, 4.0]])}
        bag = GradientBag()
        reg.add_gradients(bag, params, {"w": np.array([1])})
        dense = bag.dense({"w": (2, 2)})
        np.testing.assert_allclose(dense["w"][1], [3.0, 4.0])  # 2*0.5*row
        np.testing.assert_allclose(dense["w"][0], 0.0)

    def test_duplicate_rows_counted_once(self):
        reg = L2Regularizer(1.0)
        params = {"w": np.ones((3, 2))}
        bag = GradientBag()
        reg.add_gradients(bag, params, {"w": np.array([0, 0, 0])})
        dense = bag.dense({"w": (3, 2)})
        np.testing.assert_allclose(dense["w"][0], 2.0)  # not 6.0

    def test_zero_weight_is_noop(self):
        reg = L2Regularizer(0.0)
        bag = GradientBag()
        reg.add_gradients(bag, {"w": np.ones((2, 2))}, {"w": np.array([0])})
        assert not bag

    def test_penalty_value(self):
        reg = L2Regularizer(0.1)
        params = {"w": np.array([[3.0, 4.0]])}
        assert reg.penalty(params, {"w": np.array([0])}) == pytest.approx(2.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            L2Regularizer(-0.1)

    def test_matches_finite_difference_of_penalty(self):
        reg = L2Regularizer(0.3)
        params = {"w": np.random.default_rng(0).normal(size=(4, 3))}
        rows = {"w": np.array([1, 2])}
        bag = GradientBag()
        reg.add_gradients(bag, params, rows)
        dense = bag.dense({"w": (4, 3)})
        eps = 1e-6
        for i in (1, 2):
            for j in range(3):
                params["w"][i, j] += eps
                up = reg.penalty(params, rows)
                params["w"][i, j] -= 2 * eps
                down = reg.penalty(params, rows)
                params["w"][i, j] += eps
                assert dense["w"][i, j] == pytest.approx(
                    (up - down) / (2 * eps), abs=1e-5
                )
