"""Bulk-scoring consistency: every fast path must agree with score().

The cache update, the GAN generators and the evaluator all rely on
``score_tails`` / ``score_heads`` / ``score_all_*``; these are overridden
with closed forms per model, so each must match the reference ``score``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import MODEL_REGISTRY, make_model

N_ENTITIES, N_RELATIONS, DIM = 12, 3, 6


def _model(name):
    return make_model(name, N_ENTITIES, N_RELATIONS, DIM, rng=3)


@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
class TestBulkScoring:
    def test_score_tails_matches_score(self, model_name, rng):
        model = _model(model_name)
        b, c = 4, 7
        h = rng.integers(0, N_ENTITIES, b)
        r = rng.integers(0, N_RELATIONS, b)
        cand = rng.integers(0, N_ENTITIES, (b, c))
        got = model.score_tails(h, r, cand)
        for i in range(b):
            expected = model.score(
                np.full(c, h[i]), np.full(c, r[i]), cand[i]
            )
            np.testing.assert_allclose(got[i], expected, atol=1e-10)

    def test_score_heads_matches_score(self, model_name, rng):
        model = _model(model_name)
        b, c = 4, 7
        r = rng.integers(0, N_RELATIONS, b)
        t = rng.integers(0, N_ENTITIES, b)
        cand = rng.integers(0, N_ENTITIES, (b, c))
        got = model.score_heads(cand, r, t)
        for i in range(b):
            expected = model.score(
                cand[i], np.full(c, r[i]), np.full(c, t[i])
            )
            np.testing.assert_allclose(got[i], expected, atol=1e-10)

    def test_score_all_tails_matches_score_tails(self, model_name, rng):
        model = _model(model_name)
        b = 3
        h = rng.integers(0, N_ENTITIES, b)
        r = rng.integers(0, N_RELATIONS, b)
        all_cand = np.broadcast_to(
            np.arange(N_ENTITIES), (b, N_ENTITIES)
        )
        np.testing.assert_allclose(
            model.score_all_tails(h, r),
            model.score_tails(h, r, all_cand),
            atol=1e-10,
        )

    def test_score_all_heads_matches_score_heads(self, model_name, rng):
        model = _model(model_name)
        b = 3
        r = rng.integers(0, N_RELATIONS, b)
        t = rng.integers(0, N_ENTITIES, b)
        all_cand = np.broadcast_to(
            np.arange(N_ENTITIES), (b, N_ENTITIES)
        )
        np.testing.assert_allclose(
            model.score_all_heads(r, t),
            model.score_heads(all_cand, r, t),
            atol=1e-10,
        )

    def test_score_triples_matches_score(self, model_name, rng):
        model = _model(model_name)
        triples = np.stack(
            [
                rng.integers(0, N_ENTITIES, 6),
                rng.integers(0, N_RELATIONS, 6),
                rng.integers(0, N_ENTITIES, 6),
            ],
            axis=1,
        )
        np.testing.assert_allclose(
            model.score_triples(triples),
            model.score(triples[:, 0], triples[:, 1], triples[:, 2]),
        )


@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_property_bulk_equals_pointwise(model_name, data):
    """Hypothesis: arbitrary (h, r, candidate-set) agree with score()."""
    model = _model(model_name)
    h = data.draw(st.integers(0, N_ENTITIES - 1))
    r = data.draw(st.integers(0, N_RELATIONS - 1))
    cand = data.draw(
        st.lists(st.integers(0, N_ENTITIES - 1), min_size=1, max_size=8)
    )
    cand_arr = np.asarray([cand])
    bulk = model.score_tails(np.array([h]), np.array([r]), cand_arr)[0]
    point = model.score(
        np.full(len(cand), h), np.full(len(cand), r), np.asarray(cand)
    )
    np.testing.assert_allclose(bulk, point, atol=1e-10)
