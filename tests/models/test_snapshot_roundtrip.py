"""Save → load → score must be bit-identical for every registry model.

The serving layer answers queries from reloaded checkpoints, so any drift
between a trained model and its restored twin silently corrupts served
rankings.  ``save_model`` keeps float64 exactly and ``export_snapshot``
writes raw ``.npy``, so equality here is exact (``assert_array_equal``),
not approximate.
"""

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, make_model
from repro.models.persistence import export_snapshot, save_model
from repro.serve.snapshot import EmbeddingSnapshot

N_ENTITIES, N_RELATIONS, DIM = 14, 5, 8


@pytest.fixture(params=sorted(MODEL_REGISTRY))
def model(request):
    return make_model(request.param, N_ENTITIES, N_RELATIONS, DIM, rng=11)


def _queries(rng):
    return (
        rng.integers(0, N_ENTITIES, 20),
        rng.integers(0, N_RELATIONS, 20),
        rng.integers(0, N_ENTITIES, 20),
    )


def test_npz_roundtrip_scores_bit_identical(tmp_path, model, rng):
    h, r, t = _queries(rng)
    expected = model.score(h, r, t)
    restored = EmbeddingSnapshot.load(save_model(model, tmp_path / "m.npz")).model()
    np.testing.assert_array_equal(restored.score(h, r, t), expected)


def test_snapshot_dir_roundtrip_scores_bit_identical(tmp_path, model, rng):
    h, r, t = _queries(rng)
    expected = model.score(h, r, t)
    restored = EmbeddingSnapshot.load(export_snapshot(model, tmp_path / "s")).model()
    np.testing.assert_array_equal(restored.score(h, r, t), expected)


def test_bulk_scoring_paths_bit_identical(tmp_path, model, rng):
    # The serving layer scores via score_all_tails/heads, not score();
    # those paths must survive the roundtrip bit-for-bit too.
    h, r, _ = _queries(rng)
    restored = EmbeddingSnapshot.load(save_model(model, tmp_path / "m.npz")).model()
    np.testing.assert_array_equal(
        restored.score_all_tails(h[:4], r[:4]), model.score_all_tails(h[:4], r[:4])
    )
    np.testing.assert_array_equal(
        restored.score_all_heads(r[:4], h[:4]), model.score_all_heads(r[:4], h[:4])
    )
