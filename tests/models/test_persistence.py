"""Tests for .npz model checkpointing."""

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, make_model
from repro.models.persistence import load_model, save_model


@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_roundtrip_every_model(tmp_path, model_name):
    model = make_model(model_name, 12, 4, 6, rng=3)
    path = save_model(model, tmp_path / "checkpoint")
    restored = load_model(path)
    assert type(restored).__name__ == model_name
    assert restored.n_entities == 12 and restored.dim == 6
    for name, array in model.params.items():
        np.testing.assert_array_equal(restored.params[name], array)


def test_scores_identical_after_roundtrip(tmp_path, rng):
    model = make_model("TransD", 15, 4, 8, rng=0)
    path = save_model(model, tmp_path / "m.npz")
    restored = load_model(path)
    h = rng.integers(0, 15, 10)
    r = rng.integers(0, 4, 10)
    t = rng.integers(0, 15, 10)
    np.testing.assert_allclose(restored.score(h, r, t), model.score(h, r, t))


def test_npz_suffix_appended(tmp_path):
    model = make_model("TransE", 5, 2, 4, rng=0)
    path = save_model(model, tmp_path / "plain")
    assert path.suffix == ".npz"


def test_norm_order_preserved(tmp_path):
    model = make_model("TransE", 5, 2, 4, rng=0, p=2)
    restored = load_model(save_model(model, tmp_path / "l2"))
    assert restored.p == 2


def test_relation_dim_preserved(tmp_path):
    model = make_model("TransR", 5, 2, 6, rng=0, relation_dim=3)
    restored = load_model(save_model(model, tmp_path / "tr"))
    assert restored.relation_dim == 3
    assert restored.params["projection"].shape == (2, 3, 6)


def test_non_checkpoint_rejected(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, a=np.zeros(3))
    with pytest.raises(ValueError, match="not a repro model checkpoint"):
        load_model(path)
