"""Tests for the margin and logistic losses (Eq. 1 / Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.losses import LogisticLoss, MarginRankingLoss, sigmoid, softplus

floats = st.floats(min_value=-30, max_value=30, allow_nan=False)


class TestSigmoidSoftplus:
    def test_sigmoid_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_extremes_stable(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)

    def test_softplus_large_input_linear(self):
        assert softplus(np.array([500.0]))[0] == pytest.approx(500.0)

    def test_softplus_matches_reference(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(softplus(x), np.log1p(np.exp(x)))

    @given(x=floats)
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_is_softplus_derivative(self, x):
        eps = 1e-5
        arr = np.array([x])
        numeric = (softplus(arr + eps) - softplus(arr - eps)) / (2 * eps)
        assert sigmoid(arr)[0] == pytest.approx(numeric[0], abs=1e-4)


class TestMarginRankingLoss:
    def test_zero_when_margin_satisfied(self):
        loss = MarginRankingLoss(gamma=1.0)
        values = loss.value(np.array([5.0]), np.array([1.0]))
        assert values[0] == 0.0

    def test_active_value(self):
        loss = MarginRankingLoss(gamma=2.0)
        # gamma - pos + neg = 2 - 1 + 0.5 = 1.5
        assert loss.value(np.array([1.0]), np.array([0.5]))[0] == pytest.approx(1.5)

    def test_grads_zero_when_inactive(self):
        loss = MarginRankingLoss(gamma=1.0)
        dpos, dneg = loss.score_grads(np.array([10.0]), np.array([0.0]))
        assert dpos[0] == 0.0 and dneg[0] == 0.0

    def test_grads_signs_when_active(self):
        loss = MarginRankingLoss(gamma=2.0)
        dpos, dneg = loss.score_grads(np.array([0.0]), np.array([0.0]))
        assert dpos[0] == -1.0  # increase positive score
        assert dneg[0] == 1.0  # decrease negative score

    def test_nonzero_ratio_counts_active_pairs(self):
        loss = MarginRankingLoss(gamma=1.0)
        pos = np.array([10.0, 0.0, 0.0, 10.0])
        neg = np.array([0.0, 0.0, 0.0, 0.0])
        assert loss.nonzero_ratio(pos, neg) == pytest.approx(0.5)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError, match="gamma"):
            MarginRankingLoss(gamma=0.0)

    @given(pos=floats, neg=floats)
    @settings(max_examples=50, deadline=None)
    def test_grad_matches_finite_difference(self, pos, neg):
        loss = MarginRankingLoss(gamma=1.0)
        eps = 1e-6
        if abs(1.0 - pos + neg) < 1e-4:
            return  # skip the kink
        dpos, dneg = loss.score_grads(np.array([pos]), np.array([neg]))
        num_dpos = (
            loss.value(np.array([pos + eps]), np.array([neg]))[0]
            - loss.value(np.array([pos - eps]), np.array([neg]))[0]
        ) / (2 * eps)
        assert dpos[0] == pytest.approx(num_dpos, abs=1e-5)


class TestLogisticLoss:
    def test_value_paper_formula(self):
        """l(+1, f+) + l(-1, f-) with l(a, b) = log(1 + exp(-a b))."""
        loss = LogisticLoss()
        pos, neg = np.array([1.3]), np.array([-0.7])
        expected = np.log1p(np.exp(-pos)) + np.log1p(np.exp(neg))
        np.testing.assert_allclose(loss.value(pos, neg), expected)

    def test_gradient_signs(self):
        loss = LogisticLoss()
        dpos, dneg = loss.score_grads(np.array([0.0]), np.array([0.0]))
        assert dpos[0] < 0  # push positive score up
        assert dneg[0] > 0  # push negative score down

    @given(pos=floats, neg=floats)
    @settings(max_examples=50, deadline=None)
    def test_grad_matches_finite_difference(self, pos, neg):
        loss = LogisticLoss()
        eps = 1e-5
        dpos, dneg = loss.score_grads(np.array([pos]), np.array([neg]))
        num_dneg = (
            loss.value(np.array([pos]), np.array([neg + eps]))[0]
            - loss.value(np.array([pos]), np.array([neg - eps]))[0]
        ) / (2 * eps)
        assert dneg[0] == pytest.approx(num_dneg, abs=1e-4)

    def test_nonzero_ratio_saturates_for_easy_pairs(self):
        loss = LogisticLoss()
        pos = np.array([30.0] * 4)
        neg = np.array([-30.0] * 4)
        assert loss.nonzero_ratio(pos, neg) == 0.0
