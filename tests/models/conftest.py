"""Shared fixtures for the model test suites.

The conformance harness (``test_conformance.py``) runs every entry in
``MODEL_REGISTRY`` through one scoring contract; the fixtures here supply
the per-model instances and candidate blocks so each contract test stays a
few lines.  Constants and the looped-score oracle live in
``conformance_fixtures.py`` so test modules can import them directly.
"""

from __future__ import annotations

import pytest

from repro.models import MODEL_REGISTRY

from conformance_fixtures import (
    CONF_N_ENTITIES,
    CONF_N_RELATIONS,
    build_conformance_model,
)


@pytest.fixture(params=sorted(MODEL_REGISTRY), ids=sorted(MODEL_REGISTRY))
def conformance_model(request):
    """One registry model per parametrised run, freshly built and seeded."""
    return build_conformance_model(request.param)


@pytest.fixture
def candidate_block(rng):
    """A deterministic ``(anchors, r, candidates)`` block sized [B=5, C=9]."""
    b, c = 5, 9
    return (
        rng.integers(0, CONF_N_ENTITIES, b),
        rng.integers(0, CONF_N_RELATIONS, b),
        rng.integers(0, CONF_N_ENTITIES, (b, c)),
    )
