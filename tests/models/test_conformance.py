"""Model-conformance harness: one scoring contract for every registry model.

``score_candidates`` is the primitive the NSCaching cache refresh is built
on, and each model family ships its own fused kernel for it.  This suite
pins the contract those kernels must honour so any future specialisation
is caught by construction:

* agreement with the looped ``score()`` oracle and with the bulk
  ``score_tails`` / ``score_heads`` / ``score_all_*`` scorers;
* duplicate-candidate invariance (equal ids ⇒ bitwise-equal scores);
* dtype / shape / read-only guarantees (float64 ``[B, C]`` out, inputs
  never written, non-contiguous and non-int64 inputs accepted);
* determinism (same parameters ⇒ bitwise-identical scores, no RNG);
* early ``ValueError`` on an unknown corruption mode or bad shapes;
* edge cases: empty batch, a single candidate (``N1 + N2 == 1``), ids at
  ``n_entities - 1``.

Every test runs for every entry in ``MODEL_REGISTRY`` via the
``conformance_model`` fixture (see ``conftest.py``).
"""

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY
from repro.models.base import CANDIDATE_MODES, KGEModel

from conformance_fixtures import (
    CONF_N_ENTITIES,
    CONF_N_RELATIONS,
    build_conformance_model,
    looped_reference_scores,
)

MODES = sorted(CANDIDATE_MODES)


def test_registry_is_fully_covered():
    # The fixtures parametrise over MODEL_REGISTRY; this guards against the
    # registry silently gaining a family the harness never sees.
    assert len(MODEL_REGISTRY) >= 10
    for name in MODEL_REGISTRY:
        assert build_conformance_model(name) is not None


@pytest.mark.parametrize("mode", MODES)
class TestAgreement:
    def test_matches_looped_score(self, conformance_model, candidate_block, mode):
        anchors, r, cand = candidate_block
        got = conformance_model.score_candidates(anchors, r, cand, mode)
        expected = looped_reference_scores(conformance_model, anchors, r, cand, mode)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_matches_bulk_scorers(self, conformance_model, candidate_block, mode):
        anchors, r, cand = candidate_block
        got = conformance_model.score_candidates(anchors, r, cand, mode)
        if mode == "tail":
            expected = conformance_model.score_tails(anchors, r, cand)
        else:
            expected = conformance_model.score_heads(cand, r, anchors)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_matches_generic_fallback(self, conformance_model, candidate_block, mode):
        """Specialised kernels may not drift from the base-class fallback."""
        anchors, r, cand = candidate_block
        got = conformance_model.score_candidates(anchors, r, cand, mode)
        generic = KGEModel._score_candidates_impl(
            conformance_model, anchors, r, cand, mode
        )
        np.testing.assert_allclose(got, generic, atol=1e-10)

    def test_matches_score_all(self, conformance_model, mode, rng):
        b = 3
        anchors = rng.integers(0, CONF_N_ENTITIES, b)
        r = rng.integers(0, CONF_N_RELATIONS, b)
        every = np.broadcast_to(
            np.arange(CONF_N_ENTITIES), (b, CONF_N_ENTITIES)
        )
        got = conformance_model.score_candidates(anchors, r, every, mode)
        if mode == "tail":
            expected = conformance_model.score_all_tails(anchors, r)
        else:
            expected = conformance_model.score_all_heads(r, anchors)
        np.testing.assert_allclose(got, expected, atol=1e-10)


@pytest.mark.parametrize("mode", MODES)
class TestDuplicateInvariance:
    def test_equal_ids_get_bitwise_equal_scores(self, conformance_model, rng, mode):
        b, c = 4, 8
        anchors = rng.integers(0, CONF_N_ENTITIES, b)
        r = rng.integers(0, CONF_N_RELATIONS, b)
        # Build rows from few distinct values so every row repeats ids.
        cand = rng.integers(0, 3, (b, c))
        scores = conformance_model.score_candidates(anchors, r, cand, mode)
        for i in range(b):
            for value in np.unique(cand[i]):
                cols = scores[i, cand[i] == value]
                assert np.all(cols == cols[0]), (
                    f"duplicate id {value} scored differently in row {i}: {cols}"
                )

    def test_column_permutation_permutes_scores(self, conformance_model, rng, mode):
        b, c = 3, 7
        anchors = rng.integers(0, CONF_N_ENTITIES, b)
        r = rng.integers(0, CONF_N_RELATIONS, b)
        cand = rng.integers(0, CONF_N_ENTITIES, (b, c))
        perm = rng.permutation(c)
        base = conformance_model.score_candidates(anchors, r, cand, mode)
        permuted = conformance_model.score_candidates(anchors, r, cand[:, perm], mode)
        np.testing.assert_array_equal(permuted, base[:, perm])


class TestDtypeShapeReadOnly:
    @pytest.mark.parametrize("mode", MODES)
    def test_output_is_fresh_float64_of_block_shape(
        self, conformance_model, candidate_block, mode
    ):
        anchors, r, cand = candidate_block
        out = conformance_model.score_candidates(anchors, r, cand, mode)
        assert out.dtype == np.float64
        assert out.shape == cand.shape
        # The result must not alias any parameter table.
        for table in conformance_model.params.values():
            assert not np.shares_memory(out, table)

    def test_inputs_never_written(self, conformance_model, candidate_block):
        anchors, r, cand = candidate_block
        snapshots = (anchors.copy(), r.copy(), cand.copy())
        for mode in MODES:
            conformance_model.score_candidates(anchors, r, cand, mode)
        np.testing.assert_array_equal(anchors, snapshots[0])
        np.testing.assert_array_equal(r, snapshots[1])
        np.testing.assert_array_equal(cand, snapshots[2])

    def test_accepts_readonly_broadcast_candidates(self, conformance_model, rng):
        anchors = rng.integers(0, CONF_N_ENTITIES, 4)
        r = rng.integers(0, CONF_N_RELATIONS, 4)
        row = rng.integers(0, CONF_N_ENTITIES, 6)
        cand = np.broadcast_to(row, (4, 6))  # zero-stride, non-writeable
        out = conformance_model.score_candidates(anchors, r, cand, "tail")
        expected = conformance_model.score_candidates(
            anchors, r, np.tile(row, (4, 1)), "tail"
        )
        np.testing.assert_array_equal(out, expected)

    def test_accepts_non_int64_ids(self, conformance_model):
        anchors = np.array([0, 1], dtype=np.int32)
        r = np.array([0, 1], dtype=np.int16)
        cand = np.array([[2, 3], [4, 5]], dtype=np.int32)
        out = conformance_model.score_candidates(anchors, r, cand, "head")
        assert out.shape == (2, 2)
        expected = conformance_model.score_candidates(
            anchors.astype(np.int64), r.astype(np.int64), cand.astype(np.int64), "head"
        )
        np.testing.assert_array_equal(out, expected)


class TestDeterminism:
    def test_repeated_calls_are_bitwise_identical(
        self, conformance_model, candidate_block
    ):
        anchors, r, cand = candidate_block
        for mode in MODES:
            first = conformance_model.score_candidates(anchors, r, cand, mode)
            second = conformance_model.score_candidates(anchors, r, cand, mode)
            np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
    def test_same_seed_same_scores(self, model_name, rng):
        anchors = rng.integers(0, CONF_N_ENTITIES, 3)
        r = rng.integers(0, CONF_N_RELATIONS, 3)
        cand = rng.integers(0, CONF_N_ENTITIES, (3, 5))
        a = build_conformance_model(model_name, rng=11)
        b = build_conformance_model(model_name, rng=11)
        np.testing.assert_array_equal(
            a.score_candidates(anchors, r, cand, "tail"),
            b.score_candidates(anchors, r, cand, "tail"),
        )


class TestValidation:
    @pytest.mark.parametrize("bad_mode", ["relation", "tails", "HEAD", "", None])
    def test_unknown_mode_raises_before_scoring(
        self, conformance_model, candidate_block, bad_mode
    ):
        anchors, r, cand = candidate_block
        with pytest.raises(ValueError, match="mode"):
            conformance_model.score_candidates(anchors, r, cand, bad_mode)

    def test_non_2d_candidates_rejected(self, conformance_model):
        with pytest.raises(ValueError, match=r"\[B, C\]"):
            conformance_model.score_candidates(
                np.array([0]), np.array([0]), np.array([1, 2, 3]), "tail"
            )

    def test_row_count_mismatch_rejected(self, conformance_model):
        cand = np.zeros((3, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="anchors"):
            conformance_model.score_candidates(
                np.array([0, 1]), np.array([0, 1, 2]), cand, "tail"
            )


@pytest.mark.parametrize("mode", MODES)
class TestEdgeCases:
    def test_empty_batch(self, conformance_model, mode):
        empty = np.empty(0, dtype=np.int64)
        out = conformance_model.score_candidates(
            empty, empty, np.empty((0, 7), dtype=np.int64), mode
        )
        assert out.shape == (0, 7)
        assert out.dtype == np.float64

    def test_zero_candidates(self, conformance_model, mode):
        ids = np.array([0, 1], dtype=np.int64)
        out = conformance_model.score_candidates(
            ids, ids, np.empty((2, 0), dtype=np.int64), mode
        )
        assert out.shape == (2, 0)

    def test_single_candidate_block(self, conformance_model, rng, mode):
        """The N1 + N2 == 1 degenerate refresh width."""
        b = 4
        anchors = rng.integers(0, CONF_N_ENTITIES, b)
        r = rng.integers(0, CONF_N_RELATIONS, b)
        cand = rng.integers(0, CONF_N_ENTITIES, (b, 1))
        got = conformance_model.score_candidates(anchors, r, cand, mode)
        expected = looped_reference_scores(conformance_model, anchors, r, cand, mode)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_boundary_entity_ids(self, conformance_model, rng, mode):
        """The last entity row must be reachable from every kernel."""
        b, c = 3, 4
        last = CONF_N_ENTITIES - 1
        anchors = np.full(b, last, dtype=np.int64)
        r = rng.integers(0, CONF_N_RELATIONS, b)
        cand = np.full((b, c), last, dtype=np.int64)
        got = conformance_model.score_candidates(anchors, r, cand, mode)
        expected = looped_reference_scores(conformance_model, anchors, r, cand, mode)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_non_contiguous_candidates(self, conformance_model, rng, mode):
        b, c = 4, 6
        anchors = rng.integers(0, CONF_N_ENTITIES, b)
        r = rng.integers(0, CONF_N_RELATIONS, b)
        wide = rng.integers(0, CONF_N_ENTITIES, (b, 2 * c))
        cand = wide[:, ::2]  # strided view
        assert not cand.flags.c_contiguous
        got = conformance_model.score_candidates(anchors, r, cand, mode)
        expected = conformance_model.score_candidates(
            anchors, r, np.ascontiguousarray(cand), mode
        )
        np.testing.assert_array_equal(got, expected)
        np.testing.assert_array_equal(cand, wide[:, ::2])  # input untouched
