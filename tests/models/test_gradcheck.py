"""Numerical gradient verification for every scoring function.

This is the test that substitutes for PyTorch autodiff: every model's
hand-derived ``grad`` is compared against central finite differences of its
``score``.  A failure here means a wrong formula, so tolerances are tight.
"""

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, make_model

N_ENTITIES, N_RELATIONS, DIM, BATCH = 15, 4, 6, 5


def _numeric_grad(model, h, r, t, upstream, name, index, eps=1e-6):
    flat = model.params[name].ravel()
    old = flat[index]
    flat[index] = old + eps
    up_score = float(np.sum(upstream * model.score(h, r, t)))
    flat[index] = old - eps
    down_score = float(np.sum(upstream * model.score(h, r, t)))
    flat[index] = old
    return (up_score - down_score) / (2 * eps)


@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
class TestAnalyticGradients:
    def _setup(self, model_name, seed=0):
        model = make_model(model_name, N_ENTITIES, N_RELATIONS, DIM, rng=seed)
        rng = np.random.default_rng(seed + 1)
        h = rng.integers(0, N_ENTITIES, BATCH)
        r = rng.integers(0, N_RELATIONS, BATCH)
        t = rng.integers(0, N_ENTITIES, BATCH)
        upstream = rng.normal(size=BATCH)
        return model, h, r, t, upstream

    def test_gradients_match_finite_differences(self, model_name):
        model, h, r, t, upstream = self._setup(model_name)
        bag = model.grad(h, r, t, upstream)
        analytic = bag.dense({k: v.shape for k, v in model.params.items()})
        rng = np.random.default_rng(99)
        for name, param in model.params.items():
            flat_size = param.size
            probe = rng.choice(flat_size, size=min(25, flat_size), replace=False)
            for index in probe:
                numeric = _numeric_grad(model, h, r, t, upstream, name, index)
                assert analytic[name].ravel()[index] == pytest.approx(
                    numeric, abs=1e-6, rel=1e-5
                ), f"{model_name}.{name}[{index}]"

    def test_gradient_touches_only_batch_rows(self, model_name):
        model, h, r, t, upstream = self._setup(model_name)
        bag = model.grad(h, r, t, upstream)
        for name in model.entity_params:
            touched = set(bag.touched_rows(name).tolist())
            batch_entities = set(h.tolist()) | set(t.tolist())
            assert touched <= batch_entities
        for name in model.relation_params:
            touched = set(bag.touched_rows(name).tolist())
            assert touched <= set(r.tolist())

    def test_zero_upstream_gives_zero_gradient(self, model_name):
        model, h, r, t, _ = self._setup(model_name)
        bag = model.grad(h, r, t, np.zeros(BATCH))
        dense = bag.dense({k: v.shape for k, v in model.params.items()})
        for grad in dense.values():
            np.testing.assert_allclose(grad, 0.0)

    def test_gradient_linear_in_upstream(self, model_name):
        model, h, r, t, upstream = self._setup(model_name)
        dense_1 = model.grad(h, r, t, upstream).dense(
            {k: v.shape for k, v in model.params.items()}
        )
        dense_2 = model.grad(h, r, t, 2.0 * upstream).dense(
            {k: v.shape for k, v in model.params.items()}
        )
        for name in dense_1:
            np.testing.assert_allclose(dense_2[name], 2.0 * dense_1[name], atol=1e-12)
