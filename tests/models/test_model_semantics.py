"""Model-specific semantic properties from the paper's Table III discussion."""

import numpy as np
import pytest

from repro.models import (
    ComplEx,
    DistMult,
    HolE,
    SimplE,
    TransD,
    TransE,
    TransH,
    TransR,
    make_model,
)

E, R, D = 10, 3, 8


class TestTransE:
    def test_perfect_translation_scores_zero_distance(self):
        model = TransE(E, R, D, rng=0)
        model.params["entity"][0] = np.ones(D) / np.sqrt(D)
        model.params["relation"][0] = np.full(D, 0.1)
        model.params["entity"][1] = model.params["entity"][0] + 0.1
        score = model.score(np.array([0]), np.array([0]), np.array([1]))[0]
        assert score == pytest.approx(0.0, abs=1e-9)

    def test_score_decreases_with_distance(self):
        model = TransE(E, R, D, rng=0)
        model.params["relation"][0] = 0.0
        model.params["entity"][0] = 0.0
        model.params["entity"][1] = 0.0
        model.params["entity"][2] = np.full(D, 1.0)
        near = model.score(np.array([0]), np.array([0]), np.array([1]))[0]
        far = model.score(np.array([0]), np.array([0]), np.array([2]))[0]
        assert near > far

    def test_normalize_puts_entities_on_unit_sphere(self):
        model = TransE(E, R, D, rng=0)
        model.params["entity"] *= 5.0
        model.normalize()
        norms = np.linalg.norm(model.params["entity"], axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_normalize_touched_rows_only(self):
        model = TransE(E, R, D, rng=0)
        model.params["entity"][...] = 3.0
        model.normalize(np.array([0, 1]))
        norms = np.linalg.norm(model.params["entity"], axis=1)
        assert norms[0] == pytest.approx(1.0)
        assert norms[5] > 1.0

    def test_l2_variant_supported(self):
        model = TransE(E, R, D, rng=0, p=2)
        assert np.isfinite(
            model.score(np.array([0]), np.array([0]), np.array([1]))
        ).all()

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError, match="p must be 1 or 2"):
            TransE(E, R, D, rng=0, p=3)


class TestTransH:
    def test_normal_vectors_unit_norm_after_normalize(self):
        model = TransH(E, R, D, rng=0)
        model.params["normal"] *= 7.0
        model.normalize()
        norms = np.linalg.norm(model.params["normal"], axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_projection_removes_normal_component(self):
        model = TransH(E, R, D, rng=0)
        w = model.params["normal"][0]
        e, u, _ = model._residual(np.array([0]), np.array([0]), np.array([1]))
        # e - d_r should be orthogonal to w.
        residual = e[0] - model.params["relation"][0]
        assert abs(np.dot(residual, w)) < 1e-9


class TestTransD:
    def test_reduces_to_transe_when_projections_zero(self):
        model = TransD(E, R, D, rng=0)
        model.params["entity_proj"][...] = 0.0
        model.params["relation_proj"][...] = 0.0
        reference = TransE(E, R, D, rng=0)
        reference.params["entity"][...] = model.params["entity"]
        reference.params["relation"][...] = model.params["relation"]
        h = np.arange(5) % E
        r = np.arange(5) % R
        t = (np.arange(5) + 3) % E
        np.testing.assert_allclose(
            model.score(h, r, t), reference.score(h, r, t), atol=1e-12
        )


class TestTransR:
    def test_identity_projection_reduces_to_transe(self):
        model = TransR(E, R, D, rng=0)
        eye = np.zeros((D, D))
        np.fill_diagonal(eye, 1.0)
        model.params["projection"][...] = eye
        reference = TransE(E, R, D, rng=0)
        reference.params["entity"][...] = model.params["entity"]
        reference.params["relation"][...] = model.params["relation"]
        h = np.arange(4) % E
        r = np.arange(4) % R
        t = (np.arange(4) + 2) % E
        np.testing.assert_allclose(
            model.score(h, r, t), reference.score(h, r, t), atol=1e-12
        )

    def test_relation_dim_can_differ(self):
        model = TransR(E, R, D, rng=0, relation_dim=4)
        assert model.params["relation"].shape == (R, 4)
        assert model.params["projection"].shape == (R, 4, D)
        assert np.isfinite(
            model.score(np.array([0]), np.array([0]), np.array([1]))
        ).all()


class TestDistMult:
    def test_symmetric_in_head_and_tail(self):
        model = DistMult(E, R, D, rng=0)
        h = np.array([0, 2, 4])
        r = np.array([0, 1, 2])
        t = np.array([1, 3, 5])
        np.testing.assert_allclose(
            model.score(h, r, t), model.score(t, r, h), atol=1e-12
        )


class TestComplEx:
    def test_asymmetric_when_imaginary_nonzero(self):
        model = ComplEx(E, R, D, rng=0)
        h, r, t = np.array([0]), np.array([0]), np.array([1])
        forward = model.score(h, r, t)[0]
        backward = model.score(t, r, h)[0]
        assert forward != pytest.approx(backward)

    def test_symmetric_when_imaginary_relation_zero(self):
        model = ComplEx(E, R, D, rng=0)
        model.params["relation_im"][...] = 0.0
        h, r, t = np.array([0]), np.array([0]), np.array([1])
        assert model.score(h, r, t)[0] == pytest.approx(
            model.score(t, r, h)[0]
        )

    def test_reduces_to_distmult_when_all_imaginary_zero(self):
        model = ComplEx(E, R, D, rng=0)
        model.params["entity_im"][...] = 0.0
        model.params["relation_im"][...] = 0.0
        reference = DistMult(E, R, D, rng=0)
        reference.params["entity"][...] = model.params["entity_re"]
        reference.params["relation"][...] = model.params["relation_re"]
        h = np.arange(5) % E
        r = np.arange(5) % R
        t = (np.arange(5) + 1) % E
        np.testing.assert_allclose(
            model.score(h, r, t), reference.score(h, r, t), atol=1e-12
        )


class TestHolE:
    def test_matches_direct_circular_correlation(self):
        model = HolE(E, R, D, rng=0)
        h, r, t = 2, 1, 5
        eh = model.params["entity"][h]
        er = model.params["relation"][r]
        et = model.params["entity"][t]
        direct = sum(
            er[k] * sum(eh[i] * et[(k + i) % D] for i in range(D))
            for k in range(D)
        )
        score = model.score(np.array([h]), np.array([r]), np.array([t]))[0]
        assert score == pytest.approx(direct, abs=1e-9)


class TestSimplE:
    def test_average_of_forward_and_inverse_terms(self):
        model = SimplE(E, R, D, rng=0)
        h, r, t = np.array([1]), np.array([2]), np.array([3])
        p = model.params
        forward = np.sum(p["entity_head"][1] * p["relation"][2] * p["entity_tail"][3])
        inverse = np.sum(p["entity_head"][3] * p["relation_inv"][2] * p["entity_tail"][1])
        assert model.score(h, r, t)[0] == pytest.approx(0.5 * (forward + inverse))


class TestFactory:
    def test_all_registry_names_constructible(self):
        for name in ("TransE", "DistMult", "ComplEx"):
            model = make_model(name, E, R, D, rng=0)
            assert model.n_parameters() > 0

    def test_case_insensitive(self):
        assert isinstance(make_model("transe", E, R, D, rng=0), TransE)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown model"):
            make_model("ConvE", E, R, D)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            TransE(0, 1, 4)

    def test_state_dict_roundtrip(self):
        model = make_model("TransH", E, R, D, rng=0)
        state = model.state_dict()
        model.params["entity"][...] = 0.0
        model.load_state_dict(state)
        np.testing.assert_array_equal(model.params["entity"], state["entity"])

    def test_load_state_shape_mismatch_rejected(self):
        model = make_model("TransE", E, R, D, rng=0)
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict({"entity": np.zeros((2, 2))})

    def test_load_state_unknown_key_rejected(self):
        model = make_model("TransE", E, R, D, rng=0)
        with pytest.raises(KeyError, match="unknown parameter"):
            model.load_state_dict({"nope": np.zeros(2)})
