"""RefreshPool: deterministic shard streams, process↔inline parity, errors.

The pool's contract is that the *shard*, not the worker, owns the RNG
stream: results must be identical across worker counts, across repeated
seeded runs, and between forked-process execution and the in-process
fallback.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.strategies import UpdateStrategy
from repro.data.keyindex import KeyIndex
from repro.models import make_model
from repro.parallel.pool import RefreshPool, ShardTask
from repro.parallel.sharded import make_sharded_cache

N_ENTITIES = 25
N_RELATIONS = 4
ENTRY = 4
N_KEYS = 8

FORK_AVAILABLE = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="fork start method unavailable"
)


def _head_index() -> KeyIndex:
    return KeyIndex(
        np.arange(N_KEYS, dtype=np.int64) % N_RELATIONS,
        np.arange(N_KEYS, dtype=np.int64) % N_ENTITIES,
        N_ENTITIES,
    )


def _make_pool(n_workers, use_processes, n_shards=3, seed=7):
    model = make_model("DistMult", N_ENTITIES, N_RELATIONS, 6, rng=0)
    caches = {}
    for mode in ("head", "tail"):
        store = make_sharded_cache(
            ENTRY, N_ENTITIES, np.random.default_rng(5), n_shards=n_shards
        )
        store.attach_index(_head_index())
        caches[mode] = store
    pool = RefreshPool(
        model,
        caches,
        n_entities=N_ENTITIES,
        candidate_size=ENTRY,
        update_strategy=UpdateStrategy.IMPORTANCE,
        seed=seed,
        n_workers=n_workers,
        use_processes=use_processes,
    )
    return pool, caches


def _tasks(caches, epoch=0, batch=0):
    rng = np.random.default_rng(3)
    tasks = []
    for mode, store in caches.items():
        rows = rng.integers(0, N_KEYS, size=12)
        storage_rows = store.storage_rows(rows)
        anchors = rng.integers(0, N_ENTITIES, size=12)
        relations = rng.integers(0, N_RELATIONS, size=12)
        for shard, positions in store.plan.split(storage_rows):
            tasks.append(
                ShardTask(
                    mode=mode,
                    shard=shard,
                    epoch=epoch,
                    batch=batch,
                    anchors=anchors[positions],
                    relations=relations[positions],
                    rows=storage_rows[positions],
                )
            )
    return tasks


def _run_rounds(n_workers, use_processes, rounds=3):
    """Final cache states + counter totals after a few refresh rounds."""
    pool, caches = _make_pool(n_workers, use_processes)
    try:
        with pool:
            for batch in range(rounds):
                results = pool.refresh(_tasks(caches, epoch=0, batch=batch))
                assert all(r.changed >= 0 for r in results)
        states = {
            mode: store.gather(np.arange(N_KEYS, dtype=np.int64))
            for mode, store in caches.items()
        }
        counters = {
            mode: (store.changed_elements, store.initialised_entries)
            for mode, store in caches.items()
        }
        return states, counters
    finally:
        for store in caches.values():
            store.close()


class TestDeterminism:
    def test_inline_runs_are_reproducible(self):
        first = _run_rounds(2, use_processes=False)
        second = _run_rounds(2, use_processes=False)
        for mode in first[0]:
            np.testing.assert_array_equal(first[0][mode], second[0][mode])
        assert first[1] == second[1]

    @needs_fork
    def test_processes_match_inline_fallback(self):
        inline = _run_rounds(2, use_processes=False)
        procs = _run_rounds(2, use_processes=True)
        for mode in inline[0]:
            np.testing.assert_array_equal(inline[0][mode], procs[0][mode])
        assert inline[1] == procs[1]

    @needs_fork
    def test_results_independent_of_worker_count(self):
        two = _run_rounds(2, use_processes=True)
        three = _run_rounds(3, use_processes=True)
        for mode in two[0]:
            np.testing.assert_array_equal(two[0][mode], three[0][mode])
        assert two[1] == three[1]

    def test_distinct_task_keys_draw_distinct_streams(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            state = pool._state
            empty = np.empty(0, np.int64)

            def task(mode, shard, epoch, batch):
                return ShardTask(mode, shard, epoch, batch, empty, empty, empty)

            draws = {
                name: int(state.task_rng(t).integers(0, 2**31))
                for name, t in {
                    "base": task("head", 0, 0, 0),
                    "mode": task("tail", 0, 0, 0),
                    "shard": task("head", 1, 0, 0),
                    "epoch": task("head", 0, 1, 0),
                    "batch": task("head", 0, 0, 1),
                }.items()
            }
            assert len(set(draws.values())) == len(draws)
        finally:
            pool.close()
            for store in caches.values():
                store.close()


class TestPoolMechanics:
    @needs_fork
    def test_worker_processes_actually_fork(self):
        pool, caches = _make_pool(2, use_processes=True)
        try:
            pool.start()
            assert pool.using_processes
            assert len(pool._processes) == 2
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_single_worker_never_forks(self):
        pool, caches = _make_pool(1, use_processes=True)
        try:
            pool.start()
            assert not pool.using_processes
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_empty_refresh_is_a_noop(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            assert pool.refresh([]) == []
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    @needs_fork
    def test_worker_failure_surfaces_as_runtime_error(self):
        pool, caches = _make_pool(2, use_processes=True)
        try:
            pool.start()
            bad = ShardTask(
                "head", 0, 0, 0,
                np.array([0]), np.array([0]),
                np.array([N_KEYS + 100]),  # out-of-range storage row
            )
            with pytest.raises(RuntimeError, match="refresh worker failed"):
                pool.refresh([bad])
            # The pool keeps serving after a failed task.
            results = pool.refresh(_tasks(caches))
            assert results
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    @needs_fork
    def test_partial_failure_drains_sibling_results(self):
        """A failed task among successful siblings must not leave stale
        results queued — the next refresh gets exactly its own answers."""
        pool, caches = _make_pool(2, use_processes=True)
        try:
            pool.start()
            good_tasks = _tasks(caches)
            bad = ShardTask(
                "head", 0, 0, 0,
                np.array([0]), np.array([0]), np.array([N_KEYS + 100]),
            )
            with pytest.raises(RuntimeError, match="refresh worker failed"):
                pool.refresh(good_tasks + [bad])
            follow_up = _tasks(caches, batch=1)
            results = pool.refresh(follow_up)
            assert len(results) == len(follow_up)
            # Results belong to the follow-up tasks, not the earlier batch.
            assert sorted((r.mode, r.shard) for r in results) == sorted(
                (t.mode, t.shard) for t in follow_up
            )
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_param_sync_ships_current_embeddings(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            pool.model.params["entity"][:] = 123.0
            pool.sync_params()
            worker_view = pool._state.model.params["entity"]
            assert float(worker_view[0, 0]) == 123.0
            assert not worker_view.flags.writeable  # read-only snapshot
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_results_carry_task_telemetry(self):
        import os
        import time

        pool, caches = _make_pool(2, use_processes=False)
        try:
            tasks = _tasks(caches)
            results = pool.refresh(tasks)
            by_key = {(t.mode, t.shard): t for t in tasks}
            for result in results:
                task = by_key[(result.mode, result.shard)]
                assert result.n_rows == len(task.rows)
                assert result.seconds > 0
                assert result.worker_pid == os.getpid()  # inline mode
                # The helper builds tasks without an enqueue stamp, so the
                # queue wait defaults to "no wait" rather than garbage.
                assert result.queue_wait == 0.0
            stamped = [
                ShardTask(
                    t.mode, t.shard, t.epoch, 1, t.anchors, t.relations,
                    t.rows, enqueued_at=time.monotonic(),
                )
                for t in tasks
            ]
            for result in pool.refresh(stamped):
                assert result.queue_wait >= 0.0
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    @needs_fork
    def test_process_results_name_worker_pids(self):
        pool, caches = _make_pool(2, use_processes=True)
        try:
            pool.start()
            worker_pids = {p.pid for p in pool._processes}
            results = pool.refresh(_tasks(caches))
            assert {r.worker_pid for r in results} <= worker_pids
            assert all(r.worker_pid != 0 for r in results)
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_rejects_bad_construction(self):
        model = make_model("TransE", N_ENTITIES, N_RELATIONS, 4, rng=0)
        with pytest.raises(ValueError, match="n_workers"):
            RefreshPool(
                model, {},
                n_entities=N_ENTITIES, candidate_size=2,
                update_strategy="importance", seed=0, n_workers=0,
            )
        with pytest.raises(ValueError, match="unknown corruption mode"):
            RefreshPool(
                model, {"sideways": None},
                n_entities=N_ENTITIES, candidate_size=2,
                update_strategy="importance", seed=0,
            )
