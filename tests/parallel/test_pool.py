"""RefreshPool: deterministic shard streams, process↔inline parity, errors.

The pool's contract is that the *shard*, not the worker, owns the RNG
stream: results must be identical across worker counts, across repeated
seeded runs, and between forked-process execution and the in-process
fallback.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.strategies import UpdateStrategy
from repro.data.keyindex import KeyIndex
from repro.models import make_model
from repro.parallel.pool import RefreshPool, ShardTask
from repro.parallel.sharded import make_sharded_cache

N_ENTITIES = 25
N_RELATIONS = 4
ENTRY = 4
N_KEYS = 8

FORK_AVAILABLE = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="fork start method unavailable"
)


def _head_index() -> KeyIndex:
    return KeyIndex(
        np.arange(N_KEYS, dtype=np.int64) % N_RELATIONS,
        np.arange(N_KEYS, dtype=np.int64) % N_ENTITIES,
        N_ENTITIES,
    )


def _make_pool(n_workers, use_processes, n_shards=3, seed=7, **pool_kwargs):
    model = make_model("DistMult", N_ENTITIES, N_RELATIONS, 6, rng=0)
    caches = {}
    for mode in ("head", "tail"):
        store = make_sharded_cache(
            ENTRY, N_ENTITIES, np.random.default_rng(5), n_shards=n_shards
        )
        store.attach_index(_head_index())
        caches[mode] = store
    pool = RefreshPool(
        model,
        caches,
        n_entities=N_ENTITIES,
        candidate_size=ENTRY,
        update_strategy=UpdateStrategy.IMPORTANCE,
        seed=seed,
        n_workers=n_workers,
        use_processes=use_processes,
        **pool_kwargs,
    )
    return pool, caches


def _tasks(caches, epoch=0, batch=0):
    rng = np.random.default_rng(3)
    tasks = []
    for mode, store in caches.items():
        rows = rng.integers(0, N_KEYS, size=12)
        storage_rows = store.storage_rows(rows)
        anchors = rng.integers(0, N_ENTITIES, size=12)
        relations = rng.integers(0, N_RELATIONS, size=12)
        for shard, positions in store.plan.split(storage_rows):
            tasks.append(
                ShardTask(
                    mode=mode,
                    shard=shard,
                    epoch=epoch,
                    batch=batch,
                    anchors=anchors[positions],
                    relations=relations[positions],
                    rows=storage_rows[positions],
                )
            )
    return tasks


def _run_rounds(n_workers, use_processes, rounds=3):
    """Final cache states + counter totals after a few refresh rounds."""
    pool, caches = _make_pool(n_workers, use_processes)
    try:
        with pool:
            for batch in range(rounds):
                results = pool.refresh(_tasks(caches, epoch=0, batch=batch))
                assert all(r.changed >= 0 for r in results)
        states = {
            mode: store.gather(np.arange(N_KEYS, dtype=np.int64))
            for mode, store in caches.items()
        }
        counters = {
            mode: (store.changed_elements, store.initialised_entries)
            for mode, store in caches.items()
        }
        return states, counters
    finally:
        for store in caches.values():
            store.close()


class TestDeterminism:
    def test_inline_runs_are_reproducible(self):
        first = _run_rounds(2, use_processes=False)
        second = _run_rounds(2, use_processes=False)
        for mode in first[0]:
            np.testing.assert_array_equal(first[0][mode], second[0][mode])
        assert first[1] == second[1]

    @needs_fork
    def test_processes_match_inline_fallback(self):
        inline = _run_rounds(2, use_processes=False)
        procs = _run_rounds(2, use_processes=True)
        for mode in inline[0]:
            np.testing.assert_array_equal(inline[0][mode], procs[0][mode])
        assert inline[1] == procs[1]

    @needs_fork
    def test_results_independent_of_worker_count(self):
        two = _run_rounds(2, use_processes=True)
        three = _run_rounds(3, use_processes=True)
        for mode in two[0]:
            np.testing.assert_array_equal(two[0][mode], three[0][mode])
        assert two[1] == three[1]

    def test_distinct_task_keys_draw_distinct_streams(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            state = pool._state
            empty = np.empty(0, np.int64)

            def task(mode, shard, epoch, batch):
                return ShardTask(mode, shard, epoch, batch, empty, empty, empty)

            draws = {
                name: int(state.task_rng(t).integers(0, 2**31))
                for name, t in {
                    "base": task("head", 0, 0, 0),
                    "mode": task("tail", 0, 0, 0),
                    "shard": task("head", 1, 0, 0),
                    "epoch": task("head", 0, 1, 0),
                    "batch": task("head", 0, 0, 1),
                }.items()
            }
            assert len(set(draws.values())) == len(draws)
        finally:
            pool.close()
            for store in caches.values():
                store.close()


class TestPoolMechanics:
    @needs_fork
    def test_worker_processes_actually_fork(self):
        pool, caches = _make_pool(2, use_processes=True)
        try:
            pool.start()
            assert pool.using_processes
            assert len(pool._processes) == 2
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_single_worker_never_forks(self):
        pool, caches = _make_pool(1, use_processes=True)
        try:
            pool.start()
            assert not pool.using_processes
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_empty_refresh_is_a_noop(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            assert pool.refresh([]) == []
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    @needs_fork
    def test_worker_failure_surfaces_as_runtime_error(self):
        pool, caches = _make_pool(2, use_processes=True)
        try:
            pool.start()
            bad = ShardTask(
                "head", 0, 0, 0,
                np.array([0]), np.array([0]),
                np.array([N_KEYS + 100]),  # out-of-range storage row
            )
            with pytest.raises(RuntimeError, match="refresh worker failed"):
                pool.refresh([bad])
            # The pool keeps serving after a failed task.
            results = pool.refresh(_tasks(caches))
            assert results
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    @needs_fork
    def test_partial_failure_drains_sibling_results(self):
        """A failed task among successful siblings must not leave stale
        results queued — the next refresh gets exactly its own answers."""
        pool, caches = _make_pool(2, use_processes=True)
        try:
            pool.start()
            good_tasks = _tasks(caches)
            bad = ShardTask(
                "head", 0, 0, 0,
                np.array([0]), np.array([0]), np.array([N_KEYS + 100]),
            )
            with pytest.raises(RuntimeError, match="refresh worker failed"):
                pool.refresh(good_tasks + [bad])
            follow_up = _tasks(caches, batch=1)
            results = pool.refresh(follow_up)
            assert len(results) == len(follow_up)
            # Results belong to the follow-up tasks, not the earlier batch.
            assert sorted((r.mode, r.shard) for r in results) == sorted(
                (t.mode, t.shard) for t in follow_up
            )
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_param_sync_ships_current_embeddings(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            pool.model.params["entity"][:] = 123.0
            pool.sync_params()
            worker_view = pool._state.models[0].params["entity"]
            assert float(worker_view[0, 0]) == 123.0
            assert not worker_view.flags.writeable  # read-only snapshot
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_results_carry_task_telemetry(self):
        import os
        import time

        pool, caches = _make_pool(2, use_processes=False)
        try:
            tasks = _tasks(caches)
            results = pool.refresh(tasks)
            by_key = {(t.mode, t.shard): t for t in tasks}
            for result in results:
                task = by_key[(result.mode, result.shard)]
                assert result.n_rows == len(task.rows)
                assert result.seconds > 0
                assert result.worker_pid == os.getpid()  # inline mode
                # The helper builds tasks without an enqueue stamp, so the
                # queue wait defaults to "no wait" rather than garbage.
                assert result.queue_wait == 0.0
            stamped = [
                ShardTask(
                    t.mode, t.shard, t.epoch, 1, t.anchors, t.relations,
                    t.rows, enqueued_at=time.monotonic(),
                )
                for t in tasks
            ]
            for result in pool.refresh(stamped):
                assert result.queue_wait >= 0.0
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    @needs_fork
    def test_process_results_name_worker_pids(self):
        pool, caches = _make_pool(2, use_processes=True)
        try:
            pool.start()
            worker_pids = {p.pid for p in pool._processes}
            results = pool.refresh(_tasks(caches))
            assert {r.worker_pid for r in results} <= worker_pids
            assert all(r.worker_pid != 0 for r in results)
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_close_drains_uncollected_inflight_refresh(self):
        """close() over an uncollected dispatch must not wedge the queues:
        the in-flight results are drained (and discarded) first."""
        pool, caches = _make_pool(
            2, use_processes=False, double_buffer=True
        )
        try:
            pool.start()
            assert pool.dispatch(_tasks(caches)) > 0
            assert pool.inflight > 0
            pool.close()
            assert pool.inflight == 0
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    @needs_fork
    def test_close_drains_uncollected_inflight_refresh_with_processes(self):
        pool, caches = _make_pool(2, use_processes=True, double_buffer=True)
        try:
            pool.start()
            assert pool.dispatch(_tasks(caches)) > 0
            pool.close()  # must neither hang nor raise
            assert pool.inflight == 0
        finally:
            for store in caches.values():
                store.close()

    def test_rejects_bad_construction(self):
        model = make_model("TransE", N_ENTITIES, N_RELATIONS, 4, rng=0)
        with pytest.raises(ValueError, match="n_workers"):
            RefreshPool(
                model, {},
                n_entities=N_ENTITIES, candidate_size=2,
                update_strategy="importance", seed=0, n_workers=0,
            )
        with pytest.raises(ValueError, match="unknown corruption mode"):
            RefreshPool(
                model, {"sideways": None},
                n_entities=N_ENTITIES, candidate_size=2,
                update_strategy="importance", seed=0,
            )


class TestDirtySync:
    def test_unmarked_sync_takes_the_full_copy_path(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            report = pool.sync_params()
            assert report.full_tables == report.n_tables
            assert report.bytes_copied == report.total_bytes
            assert report.dirty_fraction == 1.0
            # Still full: nobody ever marked, so deltas never engage.
            assert pool.sync_params().full_tables == report.n_tables
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_marked_sync_ships_only_dirty_rows(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            pool.sync_params()  # first sync: full copy, tracker drained
            rows = np.array([0, 3, 9])
            pool.model.params["entity"][rows] = 42.0
            pool.mark_dirty("entity", rows)
            report = pool.sync_params()
            assert report.full_tables == 0
            assert report.rows_copied == len(rows)
            assert report.bytes_copied < report.total_bytes
            assert 0.0 < report.dirty_fraction < 1.0
            view = pool._state.models[0].params["entity"]
            np.testing.assert_array_equal(view[rows], 42.0)
            assert pool.last_sync is report
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_delta_and_full_sync_agree_bit_for_bit(self):
        """The tentpole's agreement contract: after identical mutation +
        mark sequences, the delta-synced buffer equals the full-copy one."""
        pools = {}
        stores = []
        try:
            for dirty_sync in (True, False):
                pool, caches = _make_pool(1, use_processes=False,
                                          dirty_sync=dirty_sync)
                stores.extend(caches.values())
                pool.start()
                pool.sync_params()
                rng = np.random.default_rng(11)
                for _ in range(5):
                    rows = rng.integers(0, N_ENTITIES, size=6)
                    pool.model.params["entity"][rows] += 0.5
                    pool.mark_dirty("entity", rows)
                    rel = rng.integers(0, N_RELATIONS, size=2)
                    pool.model.params["relation"][rel] -= 0.25
                    pool.mark_dirty("relation", rel)
                    pool.sync_params()
                pools[dirty_sync] = pool
            for name in ("entity", "relation"):
                np.testing.assert_array_equal(
                    pools[True]._state.models[0].params[name],
                    pools[False]._state.models[0].params[name],
                )
            assert pools[True].last_sync.bytes_copied < (
                pools[False].last_sync.bytes_copied
            )
        finally:
            for pool in pools.values():
                pool.close()
            for store in stores:
                store.close()

    def test_mark_all_dirty_forces_full_copy(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            pool.sync_params()
            pool.mark_dirty("entity", np.array([1]))  # arm delta syncs
            pool.sync_params()
            pool.model.params["entity"][:] = 7.0  # untracked bulk edit
            pool.mark_all_dirty()  # the escape hatch
            report = pool.sync_params()
            assert report.full_tables == report.n_tables
            view = pool._state.models[0].params["entity"]
            np.testing.assert_array_equal(view, 7.0)
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_empty_refresh_skips_the_parameter_publish(self):
        """The satellite bugfix: refresh([]) must not pay the memcpy."""
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            pool.sync_params()
            pool.model.params["entity"][:] = 123.0
            assert pool.refresh([]) == []
            view = pool._state.models[0].params["entity"]
            assert float(view[0, 0]) != 123.0  # snapshot untouched
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_dirty_fraction_reflects_pending_marks(self):
        pool, caches = _make_pool(1, use_processes=False)
        try:
            pool.start()
            assert pool.dirty_fraction() == 1.0  # first sync pending
            pool.sync_params()
            assert pool.dirty_fraction() == 0.0
            pool.mark_dirty("entity", np.array([0, 1]))
            assert 0.0 < pool.dirty_fraction() < 1.0
        finally:
            pool.close()
            for store in caches.values():
                store.close()


def _overlap_rounds(use_processes, overlap, rounds=3, mutate=True):
    """Cache states after `rounds` refreshes, overlapped or one-shot.

    ``mutate`` perturbs the model *after* each dispatch — under overlap
    the tasks must still see the pre-step snapshot, so results have to
    match the synchronous pool that syncs before refreshing.
    """
    pool, caches = _make_pool(
        2, use_processes=use_processes, double_buffer=overlap
    )
    try:
        with pool:
            for batch in range(rounds):
                tasks = _tasks(caches, epoch=0, batch=batch)
                if overlap:
                    pool.dispatch(tasks)
                    if mutate:
                        pool.model.params["entity"][:] += 0.125
                    results = pool.collect()
                else:
                    results = pool.refresh(tasks)
                    if mutate:
                        pool.model.params["entity"][:] += 0.125
                assert len(results) == len(tasks)
        return {
            mode: store.gather(np.arange(N_KEYS, dtype=np.int64))
            for mode, store in caches.items()
        }
    finally:
        for store in caches.values():
            store.close()


class TestOverlap:
    def test_overlap_matches_one_shot_refresh(self):
        sync = _overlap_rounds(False, overlap=False)
        overlapped = _overlap_rounds(False, overlap=True)
        for mode in sync:
            np.testing.assert_array_equal(sync[mode], overlapped[mode])

    @needs_fork
    def test_overlap_matches_one_shot_refresh_with_processes(self):
        sync = _overlap_rounds(False, overlap=False)
        overlapped = _overlap_rounds(True, overlap=True)
        for mode in sync:
            np.testing.assert_array_equal(sync[mode], overlapped[mode])

    def test_dispatch_rejects_second_batch_in_flight(self):
        pool, caches = _make_pool(2, use_processes=False, double_buffer=True)
        try:
            pool.start()
            pool.dispatch(_tasks(caches, batch=0))
            with pytest.raises(RuntimeError, match="not yet collected"):
                pool.dispatch(_tasks(caches, batch=1))
            assert pool.collect()  # the first batch is still intact
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_collect_without_dispatch_returns_nothing(self):
        pool, caches = _make_pool(2, use_processes=False, double_buffer=True)
        try:
            pool.start()
            assert pool.collect() == []
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_empty_dispatch_is_a_noop(self):
        pool, caches = _make_pool(2, use_processes=False, double_buffer=True)
        try:
            pool.start()
            assert pool.dispatch([]) == 0
            assert pool.inflight == 0
            assert pool.last_sync is None  # no publish happened
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    def test_double_buffers_alternate(self):
        pool, caches = _make_pool(2, use_processes=False, double_buffer=True)
        try:
            pool.start()
            flags = []
            for batch in range(3):
                pool.dispatch(_tasks(caches, batch=batch))
                flags.append(int(pool._flag_block.array[0]))
                pool.collect()
            assert flags == [0, 1, 0]
        finally:
            pool.close()
            for store in caches.values():
                store.close()

    @needs_fork
    def test_worker_death_mid_overlap_fails_collect(self, monkeypatch):
        """A dispatched batch whose workers die must fail the collect with
        a clear error instead of hanging training."""
        from repro.parallel import pool as pool_module

        monkeypatch.setattr(pool_module, "_RESULT_POLL_SECONDS", 0.2)
        pool, caches = _make_pool(2, use_processes=True, double_buffer=True)
        try:
            pool.start()
            # Kill the workers first so the dispatched tasks can never be
            # answered — the deterministic version of mid-overlap death.
            for process in pool._processes:
                process.terminate()
            for process in pool._processes:
                process.join(timeout=5.0)
            pool.dispatch(_tasks(caches))
            with pytest.raises(RuntimeError, match="died without answering"):
                pool.collect()
            assert pool.inflight == 0
            pool.close()  # shutdown after the failure must not hang
        finally:
            for store in caches.values():
                store.close()

    @needs_fork
    def test_overlap_failure_drains_queue_for_next_dispatch(self):
        """A _TaskFailure inside an overlapped batch must leave the result
        queue empty: the next dispatch/collect gets exactly its own
        answers."""
        pool, caches = _make_pool(2, use_processes=True, double_buffer=True)
        try:
            pool.start()
            bad = ShardTask(
                "head", 0, 0, 0,
                np.array([0]), np.array([0]), np.array([N_KEYS + 100]),
            )
            pool.dispatch(_tasks(caches) + [bad])
            with pytest.raises(RuntimeError, match="refresh worker failed"):
                pool.collect()
            follow_up = _tasks(caches, batch=1)
            pool.dispatch(follow_up)
            results = pool.collect()
            assert sorted((r.mode, r.shard) for r in results) == sorted(
                (t.mode, t.shard) for t in follow_up
            )
        finally:
            pool.close()
            for store in caches.values():
                store.close()
