"""ShardedCacheStore ↔ unsharded backend bit-parity and lifecycle.

Sharding only changes where the storage bytes live (shared memory) and
how the row-space is described (the shard plan); gather/scatter/CE/RNG
semantics must be bit-identical to the unsharded inner backend for any
``n_shards`` — including colliding bucket writes and co-stored scores.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.array_cache import ArrayNegativeCache
from repro.core.bucketed import BucketedArrayCache
from repro.core.store import make_cache_backend
from repro.data.keyindex import KeyIndex
from repro.parallel.sharded import (
    ShardedArrayCache,
    ShardedBucketedArrayCache,
    ShardedCacheStore,
    make_sharded_cache,
)

N_KEYS = 6
N_ENTITIES = 30
ENTRY = 4
N_BUCKETS = 3  # < N_KEYS so bucket collisions are exercised


def _index() -> KeyIndex:
    return KeyIndex(
        np.arange(N_KEYS, dtype=np.int64),
        np.arange(N_KEYS, dtype=np.int64),
        N_KEYS,
    )


def _pair(inner, n_shards, store_scores=False):
    """(unsharded reference, sharded store) with identical seeds."""
    if inner == "array":
        reference = ArrayNegativeCache(
            ENTRY, N_ENTITIES, np.random.default_rng(99), store_scores=store_scores
        )
    else:
        reference = BucketedArrayCache(
            ENTRY,
            N_ENTITIES,
            np.random.default_rng(99),
            n_buckets=N_BUCKETS,
            store_scores=store_scores,
        )
    sharded = make_sharded_cache(
        ENTRY,
        N_ENTITIES,
        np.random.default_rng(99),
        store_scores=store_scores,
        n_shards=n_shards,
        inner=inner,
        n_buckets=N_BUCKETS if inner == "bucketed-array" else None,
    )
    index = _index()
    reference.attach_index(index)
    sharded.attach_index(index)
    return reference, sharded


_ops = st.lists(
    st.tuples(
        st.sampled_from(["gather", "scatter"]),
        st.lists(st.integers(0, N_KEYS - 1), min_size=1, max_size=8),
    ),
    min_size=1,
    max_size=12,
)


class TestShardedUnshardedParity:
    """The tentpole invariant: n_shards is storage layout, not semantics."""

    @given(
        ops=_ops,
        data_seed=st.integers(0, 2**16),
        n_shards=st.sampled_from([1, 2, 3, 5]),
        inner=st.sampled_from(["array", "bucketed-array"]),
        store_scores=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_entries_scores_and_ce(
        self, ops, data_seed, n_shards, inner, store_scores
    ):
        reference, sharded = _pair(inner, n_shards, store_scores)
        try:
            data_rng = np.random.default_rng(data_seed)
            for op, row_list in ops:
                rows = np.array(row_list, dtype=np.int64)
                if op == "gather":
                    np.testing.assert_array_equal(
                        reference.gather(rows), sharded.gather(rows)
                    )
                    if store_scores:
                        np.testing.assert_array_equal(
                            reference.gather_scores(rows),
                            sharded.gather_scores(rows),
                        )
                else:
                    ids = data_rng.integers(0, N_ENTITIES, size=(len(rows), ENTRY))
                    scores = data_rng.random((len(rows), ENTRY)) if store_scores else None
                    assert reference.scatter(rows, ids, scores) == sharded.scatter(
                        rows, ids, scores
                    )
            assert reference.changed_elements == sharded.changed_elements
            assert reference.initialised_entries == sharded.initialised_entries
            assert reference.n_entries == sharded.n_entries
            assert reference.memory_bytes() == sharded.memory_bytes()
            np.testing.assert_array_equal(
                reference.storage_rows(np.arange(N_KEYS)),
                sharded.storage_rows(np.arange(N_KEYS)),
            )
            for row in range(N_KEYS):
                key = (row, row)
                assert (key in reference) == (key in sharded)
                if key in reference:
                    np.testing.assert_array_equal(
                        reference.get(key), sharded.get(key)
                    )
        finally:
            sharded.close()


class TestShardPlanIntrospection:
    def test_plan_covers_storage_rows(self):
        _, sharded = _pair("array", 3)
        try:
            assert sharded.plan.n_rows == N_KEYS
            assert sharded.plan.n_shards == 3
            assert sharded.shard_key_ownership().sum() == N_KEYS
        finally:
            sharded.close()

    def test_bucketed_plan_partitions_buckets_not_keys(self):
        _, sharded = _pair("bucketed-array", 2)
        try:
            assert sharded.plan.n_rows == N_BUCKETS
            # Every key's bucket row falls in some shard; collisions mean
            # ownership counts keys, not rows.
            assert sharded.shard_key_ownership().sum() == N_KEYS
        finally:
            sharded.close()

    def test_shard_occupancy_tracks_live_rows(self):
        _, sharded = _pair("array", 2)
        try:
            assert sharded.shard_occupancy().sum() == 0
            sharded.gather(np.array([0, 5]))  # materialises two rows
            occupancy = sharded.shard_occupancy()
            assert occupancy.sum() == 2
            np.testing.assert_array_equal(occupancy, [1, 1])  # rows 0-2 / 3-5
        finally:
            sharded.close()


class TestLifecycle:
    def test_close_releases_and_blocks_access(self):
        _, sharded = _pair("array", 2)
        sharded.gather(np.array([0]))
        sharded.close()
        with pytest.raises(RuntimeError, match="no storage"):
            sharded.gather(np.array([0]))
        with pytest.raises(RuntimeError, match="no shard plan"):
            sharded.shard_occupancy()
        with pytest.raises(RuntimeError, match="no shard plan"):
            sharded.worker_layout()
        sharded.close()  # idempotent

    def test_reattach_replaces_segments(self):
        _, sharded = _pair("array", 2)
        try:
            sharded.gather(np.array([0]))
            sharded.attach_index(_index())
            assert sharded.n_entries == 0  # fresh storage
        finally:
            sharded.close()

    def test_registry_constructs_sharded_backend(self):
        store = make_cache_backend(
            "sharded-array", ENTRY, N_ENTITIES, 0, n_shards=2
        )
        assert isinstance(store, ShardedArrayCache)
        store.attach_index(_index())
        store.close()
        bucketed = make_cache_backend(
            "sharded-array", ENTRY, N_ENTITIES, 0,
            n_shards=2, inner="bucketed-array", n_buckets=N_BUCKETS,
        )
        assert isinstance(bucketed, ShardedBucketedArrayCache)
        assert isinstance(bucketed, ShardedCacheStore)
        bucketed.attach_index(_index())
        bucketed.close()


class TestOptionValidation:
    """Bad option values fail early with ValueError (the CLI exit-2 path)."""

    @pytest.mark.parametrize(
        "options",
        (
            {"n_shards": 0},
            {"n_shards": -3},
            {"n_shards": 2.5},
            {"n_shards": True},
            {"inner": "dict"},
            {"n_buckets": 0, "inner": "bucketed-array"},
            {"n_buckets": 8},  # n_buckets without the bucketed inner scheme
        ),
    )
    def test_sharded_option_values_rejected(self, options):
        with pytest.raises(ValueError):
            make_cache_backend("sharded-array", ENTRY, N_ENTITIES, 0, **options)

    @pytest.mark.parametrize("backend", ("hashed", "bucketed-array"))
    @pytest.mark.parametrize("n_buckets", (0, -1, "many"))
    def test_bucket_counts_rejected_before_allocation(self, backend, n_buckets):
        with pytest.raises(ValueError, match="n_buckets"):
            make_cache_backend(backend, ENTRY, N_ENTITIES, 0, n_buckets=n_buckets)
