"""ShardPlan: contiguous, covering, near-equal partitions of a row-space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.keyindex import even_ranges
from repro.parallel.plan import ShardPlan


class TestEvenRanges:
    @given(n_rows=st.integers(0, 500), n_parts=st.integers(1, 40))
    @settings(max_examples=80, deadline=None)
    def test_bounds_cover_and_balance(self, n_rows, n_parts):
        bounds = even_ranges(n_rows, n_parts)
        assert bounds[0] == 0 and bounds[-1] == n_rows
        sizes = np.diff(bounds)
        assert (sizes >= 0).all()
        assert sizes.sum() == n_rows
        if n_rows:
            assert sizes.max() - sizes.min() <= 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="n_parts"):
            even_ranges(10, 0)
        with pytest.raises(ValueError, match="n_rows"):
            even_ranges(-1, 2)


class TestShardPlan:
    def test_shard_of_rows_matches_bounds(self):
        plan = ShardPlan(10, 3)
        rows = np.arange(10)
        shards = plan.shard_of_rows(rows)
        for shard in range(plan.n_shards):
            start, stop = plan.shard_bounds(shard)
            np.testing.assert_array_equal(
                shards[start:stop], np.full(stop - start, shard)
            )

    def test_rows_out_of_range_rejected(self):
        plan = ShardPlan(10, 2)
        with pytest.raises(ValueError, match="rows must lie"):
            plan.shard_of_rows(np.array([10]))
        with pytest.raises(ValueError, match="rows must lie"):
            plan.shard_of_rows(np.array([-1]))

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlan(10, 0)
        with pytest.raises(IndexError):
            ShardPlan(10, 2).shard_bounds(2)

    def test_more_shards_than_rows_leaves_empty_shards(self):
        plan = ShardPlan(2, 5)
        assert plan.rows_per_shard().sum() == 2
        assert (plan.rows_per_shard() <= 1).all()

    @given(
        n_rows=st.integers(1, 200),
        n_shards=st.integers(1, 16),
        seed=st.integers(0, 2**16),
        batch=st.integers(0, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_partitions_batch_positions(self, n_rows, n_shards, seed, batch):
        plan = ShardPlan(n_rows, n_shards)
        rows = np.random.default_rng(seed).integers(0, n_rows, size=batch)
        groups = plan.split(rows)
        all_positions = (
            np.concatenate([positions for _, positions in groups])
            if groups
            else np.empty(0, dtype=np.int64)
        )
        # Every batch position appears exactly once across the groups.
        assert sorted(all_positions.tolist()) == list(range(batch))
        for shard, positions in groups:
            start, stop = plan.shard_bounds(shard)
            shard_rows = rows[positions]
            assert ((shard_rows >= start) & (shard_rows < stop)).all()
            # Batch order is preserved inside each shard slice (repeated
            # rows keep their write order).
            assert (np.diff(positions) > 0).all()

    def test_occupancy_counts_rows(self):
        plan = ShardPlan(6, 2)  # shard 0 owns rows 0-2, shard 1 rows 3-5
        rows = np.array([0, 1, 1, 5])
        np.testing.assert_array_equal(plan.occupancy_of(rows), [3, 1])
