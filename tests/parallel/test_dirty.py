"""DirtyRowTracker: marking, draining, and the collapse-to-full heuristic.

The tracker's contract is what makes delta parameter syncs safe: a drain
must report *every* row marked since the previous drain (or the ``None``
fully-dirty sentinel), because an under-report means workers silently
score against stale embeddings.
"""

import numpy as np
import pytest

from repro.parallel.dirty import DirtyRowTracker


def _tracker(**kwargs):
    return DirtyRowTracker({"entity": 100, "relation": 10}, **kwargs)


class TestLifecycle:
    def test_starts_fully_dirty(self):
        tracker = _tracker()
        assert tracker.is_full("entity")
        assert tracker.is_full("relation")
        assert tracker.pending_fraction() == 1.0

    def test_first_drain_is_full_then_clean(self):
        tracker = _tracker()
        assert tracker.drain("entity") is None  # fully dirty sentinel
        assert not tracker.is_full("entity")
        rows = tracker.drain("entity")
        assert rows is not None and len(rows) == 0

    def test_drain_returns_sorted_unique_rows(self):
        tracker = _tracker()
        tracker.drain("entity")
        tracker.mark("entity", np.array([7, 3, 7]))
        tracker.mark("entity", np.array([3, 1]))
        np.testing.assert_array_equal(
            tracker.drain("entity"), np.array([1, 3, 7])
        )
        # Drain resets: the next one reports nothing.
        assert len(tracker.drain("entity")) == 0

    def test_tables_are_independent(self):
        tracker = _tracker()
        tracker.drain("entity")
        tracker.drain("relation")
        tracker.mark("entity", np.array([5]))
        np.testing.assert_array_equal(tracker.drain("entity"), [5])
        assert len(tracker.drain("relation")) == 0

    def test_mark_all_restores_full_sentinel(self):
        tracker = _tracker()
        tracker.drain("entity")
        tracker.mark("entity", np.array([1, 2]))
        tracker.mark_all("entity")
        assert tracker.drain("entity") is None

    def test_mark_all_without_name_covers_every_table(self):
        tracker = _tracker()
        tracker.drain("entity")
        tracker.drain("relation")
        tracker.mark_all()
        assert tracker.drain("entity") is None
        assert tracker.drain("relation") is None


class TestCollapseToFull:
    def test_collapses_past_threshold(self):
        tracker = _tracker(full_threshold=0.5)
        tracker.drain("entity")
        tracker.mark("entity", np.arange(60))  # 60% of 100 rows
        assert tracker.is_full("entity")
        assert tracker.drain("entity") is None

    def test_duplicate_marks_do_not_collapse(self):
        """Raw volume triggers a compaction, but only *unique* coverage
        past the threshold collapses to full."""
        tracker = _tracker(full_threshold=0.5)
        tracker.drain("entity")
        for _ in range(30):
            tracker.mark("entity", np.array([1, 2, 3]))  # 90 raw, 3 unique
        assert not tracker.is_full("entity")
        np.testing.assert_array_equal(tracker.drain("entity"), [1, 2, 3])

    def test_threshold_one_never_collapses_below_full(self):
        tracker = _tracker(full_threshold=1.0)
        tracker.drain("entity")
        tracker.mark("entity", np.arange(99))
        rows = tracker.drain("entity")
        assert rows is not None and len(rows) == 99


class TestIntrospection:
    def test_pending_rows_is_a_raw_upper_bound(self):
        tracker = _tracker()
        assert tracker.pending_rows("entity") == 100  # fully dirty
        tracker.drain("entity")
        tracker.mark("entity", np.array([1, 1, 2]))
        assert tracker.pending_rows("entity") == 3  # pre-dedup

    def test_pending_fraction_tracks_marks(self):
        tracker = _tracker()
        tracker.drain("entity")
        tracker.drain("relation")
        assert tracker.pending_fraction() == 0.0
        tracker.mark("entity", np.arange(11))
        assert tracker.pending_fraction() == pytest.approx(11 / 110)

    def test_repr_names_pending_and_full(self):
        text = repr(_tracker())
        assert "entity" in text and "full" in text


class TestValidation:
    def test_rejects_unknown_names(self):
        tracker = _tracker()
        with pytest.raises(KeyError, match="unknown parameter"):
            tracker.mark("typo", np.array([0]))
        with pytest.raises(KeyError, match="unknown parameter"):
            tracker.drain("typo")
        with pytest.raises(KeyError, match="unknown parameter"):
            tracker.mark_all("typo")

    def test_rejects_out_of_range_rows(self):
        tracker = _tracker()
        tracker.drain("entity")
        with pytest.raises(ValueError, match="must lie in"):
            tracker.mark("entity", np.array([100]))
        with pytest.raises(ValueError, match="must lie in"):
            tracker.mark("entity", np.array([-1]))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="full_threshold"):
            DirtyRowTracker({"entity": 10}, full_threshold=0.0)
        with pytest.raises(ValueError, match="full_threshold"):
            DirtyRowTracker({"entity": 10}, full_threshold=1.5)
        with pytest.raises(ValueError, match="row count"):
            DirtyRowTracker({"entity": 0})

    def test_empty_marks_and_marks_while_full_are_noops(self):
        tracker = _tracker()
        tracker.mark("entity", np.empty(0, dtype=np.int64))  # full: no-op
        tracker.drain("entity")
        tracker.mark("entity", np.empty(0, dtype=np.int64))
        assert tracker.pending_rows("entity") == 0
