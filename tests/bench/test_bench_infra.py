"""Tests for the benchmark harness, tables and experiment registry."""

import pytest

from repro.bench.harness import (
    MODEL_DEFAULTS,
    build_model,
    build_sampler,
    make_config,
    run_setting,
)
from repro.bench.registry import EXPERIMENTS, describe_experiments
from repro.bench.tables import format_float, format_table, render_metrics_row
from repro.models import PAPER_MODELS


class TestTables:
    def test_basic_rendering(self):
        table = format_table(("a", "bb"), [(1, 2.5), ("x", 3.25)])
        lines = table.splitlines()
        assert lines[0].startswith("+")
        assert "| a" in lines[1]
        assert any("2.5000" in line for line in lines)

    def test_title_included(self):
        assert format_table(("a",), [(1,)], title="My Title").startswith("My Title")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("a", "b"), [(1,)])

    def test_format_float_nan(self):
        assert format_float(float("nan")) == "--"

    def test_format_float_integerish(self):
        assert format_float(249.0) == "249"

    def test_render_metrics_row_missing_key_is_nan(self):
        row = render_metrics_row("x", {"mrr": 0.5}, keys=("mrr", "mr"))
        assert row[0] == "x"
        assert row[1] == 0.5
        assert row[2] != row[2]  # NaN


class TestRegistry:
    def test_all_paper_tables_and_figures_covered(self):
        # Table I, II, IV, V, VI + Figures 1-10 (grouped) + extensions.
        required = {"T1", "T2", "T4", "T5", "T6", "F1", "F2", "F4", "F6",
                    "F7", "F8", "F9", "F10", "X1", "X2"}
        assert required <= set(EXPERIMENTS)

    def test_every_experiment_names_a_bench_file(self):
        for exp in EXPERIMENTS.values():
            assert exp.bench.startswith("benchmarks/bench_")

    def test_describe_renders(self):
        text = describe_experiments()
        assert "Table IV" in text or "Table IV".lower() in text.lower()


class TestHarness:
    def test_defaults_cover_paper_models(self):
        assert set(PAPER_MODELS) <= set(MODEL_DEFAULTS)

    def test_make_config_merges_overrides(self):
        config = make_config("TransE", epochs=7, margin=4.0)
        assert config.epochs == 7
        assert config.margin == 4.0
        assert config.learning_rate == MODEL_DEFAULTS["TransE"]["learning_rate"]

    def test_build_model_and_sampler(self, tiny_kg):
        model = build_model("TransE", tiny_kg, dim=8)
        assert model.n_entities == tiny_kg.n_entities
        sampler = build_sampler("NSCaching", cache_size=5)
        assert sampler.cache_size == 5

    def test_run_setting_smoke(self, tiny_kg):
        result = run_setting(
            tiny_kg,
            "TransE",
            "Bernoulli",
            regime="baseline",
            epochs=2,
            dim=8,
        )
        assert result.regime == "baseline"
        assert "mrr" in result.metrics
        assert result.train_seconds > 0

    def test_run_setting_pretrain_regime(self, tiny_kg):
        result = run_setting(
            tiny_kg,
            "TransE",
            "NSCaching",
            regime="pretrain",
            epochs=1,
            pretrain_epochs=1,
            dim=8,
            sampler_kwargs={"cache_size": 4, "candidate_size": 4},
        )
        assert result.sampler == "NSCaching"
        assert result.regime == "pretrain"

    def test_run_setting_invalid_regime(self, tiny_kg):
        with pytest.raises(ValueError, match="regime"):
            run_setting(tiny_kg, "TransE", "Bernoulli", regime="finetune")

    def test_setting_result_row_labels(self, tiny_kg):
        result = run_setting(
            tiny_kg, "TransE", "Bernoulli", regime="baseline", epochs=1, dim=8
        )
        assert result.row()[0] == "Bernoulli"
