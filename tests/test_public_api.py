"""The public API surface: everything in ``repro.__all__`` must resolve."""

import repro


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version_present(self):
        assert repro.__version__.count(".") == 2

    def test_paper_components_exported(self):
        # The abstractions a paper reader would look for by name.
        for name in (
            "NSCachingSampler",  # the contribution
            "KBGANSampler", "IGANSampler",  # the competitors
            "BernoulliSampler",  # the baseline
            "TransE", "TransH", "TransD", "DistMult", "ComplEx",  # Table III
            "Trainer", "TrainConfig", "evaluate", "pretrain",
            "wn18_like", "wn18rr_like", "fb15k_like", "fb15k237_like",
        ):
            assert name in repro.__all__, name

    def test_quickstart_docstring_names_exist(self):
        """The module docstring's quickstart must only use exported names."""
        doc = repro.__doc__
        for name in ("NSCachingSampler", "TrainConfig", "Trainer", "TransE",
                     "evaluate", "wn18rr_like"):
            assert name in doc and name in repro.__all__
