"""Shared fixtures: small, fast, deterministic datasets and models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import KGDataset
from repro.data.synthetic import SyntheticKGConfig, generate_kg
from repro.models import make_model


@pytest.fixture(scope="session")
def tiny_kg() -> KGDataset:
    """A ~300-triple synthetic KG shared (read-only) across the suite."""
    config = SyntheticKGConfig(
        name="tiny",
        n_entities=80,
        n_relations=6,
        latent_dim=8,
        triples_per_relation=60,
        diagonal_fraction=0.3,
        range_fraction=0.5,
    )
    return generate_kg(config, rng=0).dataset


@pytest.fixture(scope="session")
def leaky_kg() -> KGDataset:
    """A KG with inverse-duplicate relations (WN18-style leakage)."""
    config = SyntheticKGConfig(
        name="leaky",
        n_entities=80,
        n_relations=6,
        latent_dim=8,
        triples_per_relation=60,
        inverse_fraction=0.5,
    )
    return generate_kg(config, rng=1).dataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_transe(tiny_kg):
    """A small TransE sized for ``tiny_kg``."""
    return make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
