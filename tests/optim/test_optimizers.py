"""Tests for the sparse optimisers (SGD, AdaGrad, lazy Adam)."""

import numpy as np
import pytest

from repro.models.params import GradientBag
from repro.optim import SGD, AdaGrad, Adam, make_optimizer


def _bag(rows, grads, name="w"):
    bag = GradientBag()
    bag.add(name, np.asarray(rows), np.asarray(grads, dtype=np.float64))
    return bag


class TestSGD:
    def test_basic_step(self):
        params = {"w": np.zeros((3, 2))}
        SGD(0.1).step(params, _bag([1], [[1.0, 2.0]]))
        np.testing.assert_allclose(params["w"][1], [-0.1, -0.2])
        np.testing.assert_allclose(params["w"][0], 0.0)

    def test_duplicate_rows_summed_before_step(self):
        params = {"w": np.zeros((2, 1))}
        SGD(1.0).step(params, _bag([0, 0], [[1.0], [2.0]]))
        np.testing.assert_allclose(params["w"][0], [-3.0])

    def test_unknown_param_rejected(self):
        with pytest.raises(KeyError, match="unknown parameter"):
            SGD(0.1).step({}, _bag([0], [[1.0]]))

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError, match="learning_rate"):
            SGD(0.0)

    def test_dirty_mark_reports_compacted_rows(self):
        """The dirty-sync hook sees every touched (name, unique rows)
        pair, after gradient compaction — exactly what was mutated."""
        params = {"w": np.zeros((4, 1)), "v": np.zeros((2, 1))}
        bag = GradientBag()
        bag.add("w", np.array([2, 0, 2]), np.ones((3, 1)))
        bag.add("v", np.array([1]), np.ones((1, 1)))
        seen = {}
        SGD(0.1).step(params, bag, dirty_mark=lambda n, r: seen.update({n: r.copy()}))
        np.testing.assert_array_equal(np.sort(seen["w"]), [0, 2])
        np.testing.assert_array_equal(seen["v"], [1])

    def test_dirty_mark_defaults_to_none(self):
        params = {"w": np.zeros((2, 1))}
        SGD(0.1).step(params, _bag([0], [[1.0]]), dirty_mark=None)
        np.testing.assert_allclose(params["w"][0], [-0.1])


class TestAdaGrad:
    def test_accumulator_shrinks_steps(self):
        params = {"w": np.zeros((1, 1))}
        opt = AdaGrad(1.0)
        opt.step(params, _bag([0], [[1.0]]))
        first_move = -params["w"][0, 0]
        before = params["w"][0, 0]
        opt.step(params, _bag([0], [[1.0]]))
        second_move = before - params["w"][0, 0]
        assert 0 < second_move < first_move

    def test_reset_clears_state(self):
        params = {"w": np.zeros((1, 1))}
        opt = AdaGrad(1.0)
        opt.step(params, _bag([0], [[1.0]]))
        opt.reset()
        assert opt.steps == 0
        params2 = {"w": np.zeros((1, 1))}
        opt.step(params2, _bag([0], [[1.0]]))
        # After reset, the first step magnitude is restored.
        assert params2["w"][0, 0] == pytest.approx(params["w"][0, 0], rel=1e-6)


class TestAdam:
    def test_first_step_magnitude_close_to_lr(self):
        """Dense Adam's first step is ~lr regardless of gradient scale."""
        for scale in (0.01, 1.0, 100.0):
            params = {"w": np.zeros((1, 1))}
            Adam(0.1).step(params, _bag([0], [[scale]]))
            assert abs(params["w"][0, 0]) == pytest.approx(0.1, rel=1e-3)

    def test_matches_dense_adam_when_all_rows_touched(self):
        """Lazy Adam == textbook dense Adam if every row appears every step."""
        rng = np.random.default_rng(0)
        shape = (4, 3)
        params = {"w": rng.normal(size=shape)}
        reference = params["w"].copy()
        opt = Adam(0.05, beta1=0.9, beta2=0.999, eps=1e-8)
        m = np.zeros(shape)
        v = np.zeros(shape)
        for step in range(1, 6):
            grads = rng.normal(size=shape)
            opt.step(params, _bag(np.arange(4), grads))
            m = 0.9 * m + 0.1 * grads
            v = 0.999 * v + 0.001 * grads**2
            m_hat = m / (1 - 0.9**step)
            v_hat = v / (1 - 0.999**step)
            reference -= 0.05 * m_hat / (np.sqrt(v_hat) + 1e-8)
            np.testing.assert_allclose(params["w"], reference, atol=1e-12)

    def test_sparse_rows_keep_independent_bias_correction(self):
        params = {"w": np.zeros((2, 1))}
        opt = Adam(0.1)
        # Row 0 updated 3 times, row 1 once; both should take ~lr-sized
        # steps thanks to per-row correction.
        for _ in range(3):
            opt.step(params, _bag([0], [[1.0]]))
        opt.step(params, _bag([1], [[1.0]]))
        assert abs(params["w"][1, 0]) == pytest.approx(0.1, rel=1e-3)

    def test_matrix_parameters_supported(self):
        params = {"m": np.zeros((2, 3, 3))}
        Adam(0.1).step(params, _bag([0], [np.ones((3, 3))], name="m"))
        assert np.all(params["m"][0] != 0.0)
        assert np.all(params["m"][1] == 0.0)

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"beta1": 1.0}, "beta1"),
            ({"beta2": -0.1}, "beta2"),
            ({"eps": 0.0}, "eps"),
        ],
    )
    def test_invalid_hyperparameters_rejected(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            Adam(0.1, **kwargs)

    def test_reset_clears_moments(self):
        opt = Adam(0.1)
        params = {"w": np.zeros((1, 1))}
        opt.step(params, _bag([0], [[1.0]]))
        opt.reset()
        assert opt.steps == 0


class TestFactory:
    @pytest.mark.parametrize("name, cls", [("sgd", SGD), ("adagrad", AdaGrad), ("adam", Adam)])
    def test_make_optimizer(self, name, cls):
        assert isinstance(make_optimizer(name, 0.1), cls)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown optimizer"):
            make_optimizer("lbfgs", 0.1)


class TestConvergenceSmoke:
    """All three optimisers should minimise a simple quadratic via the bag API."""

    @pytest.mark.parametrize("name", ["sgd", "adagrad", "adam"])
    def test_minimises_quadratic(self, name):
        target = np.array([[1.0, -2.0]])
        params = {"w": np.zeros((1, 2))}
        opt = make_optimizer(name, 0.1)
        for _ in range(500):
            grad = 2 * (params["w"] - target)
            opt.step(params, _bag([0], grad))
        np.testing.assert_allclose(params["w"], target, atol=0.05)
