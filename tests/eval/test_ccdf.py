"""Tests for the Figure 1 score-distribution analysis."""

import numpy as np
import pytest

from repro.eval.ccdf import ccdf, negative_distances, skewness
from repro.models import make_model


class TestCCDF:
    def test_monotone_nonincreasing(self, rng):
        values = rng.normal(size=500)
        xs, probs = ccdf(values)
        assert np.all(np.diff(probs) <= 1e-12)

    def test_boundary_values(self, rng):
        values = rng.normal(size=100)
        xs, probs = ccdf(values, xs=np.array([values.min() - 1, values.max() + 1]))
        assert probs[0] == 1.0
        assert probs[1] == 0.0

    def test_known_distribution(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        _, probs = ccdf(values, xs=np.array([2.5]))
        assert probs[0] == pytest.approx(0.5)  # 3 and 4 are >= 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ccdf(np.empty(0))


class TestNegativeDistances:
    def test_length_excludes_self_and_true(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        triple = tiny_kg.test[0]
        h, r, t = (int(x) for x in triple)
        distances = negative_distances(model, tiny_kg, triple, side="tail")
        n_true = len(tiny_kg.true_tails(h, r))
        expected = tiny_kg.n_entities - n_true - (0 if t in tiny_kg.true_tails(h, r) else 1)
        assert len(distances) == expected

    def test_keep_true_when_not_excluding(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        triple = tiny_kg.test[0]
        with_true = negative_distances(
            model, tiny_kg, triple, side="tail", exclude_true=False
        )
        without = negative_distances(model, tiny_kg, triple, side="tail")
        assert len(with_true) >= len(without)

    def test_head_side_supported(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        distances = negative_distances(model, tiny_kg, tiny_kg.test[0], side="head")
        assert len(distances) > 0

    def test_invalid_side_rejected(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        with pytest.raises(ValueError, match="side"):
            negative_distances(model, tiny_kg, tiny_kg.test[0], side="middle")


class TestSkewness:
    def test_symmetric_distribution_near_zero(self, rng):
        assert abs(skewness(rng.normal(size=20000))) < 0.1

    def test_right_skewed_positive(self, rng):
        assert skewness(rng.exponential(size=20000)) > 1.0

    def test_degenerate_inputs(self):
        assert skewness(np.array([1.0])) == 0.0
        assert skewness(np.array([2.0, 2.0, 2.0])) == 0.0
