"""Tests for the per-relation-category evaluation breakdown."""

import numpy as np
import pytest

from repro.data.relations import RelationCategory
from repro.eval.per_relation import per_category_link_prediction
from repro.eval.ranking import link_prediction
from repro.models import make_model


class TestPerCategoryBreakdown:
    def test_counts_cover_the_split(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test")
        assert sum(breakdown.counts.values()) == len(tiny_kg.test)

    def test_hits_are_probabilities(self, tiny_kg):
        model = make_model("DistMult", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test")
        for cell in breakdown.table.values():
            assert 0.0 <= cell["head"] <= 1.0
            assert 0.0 <= cell["tail"] <= 1.0

    def test_weighted_average_matches_overall_hits(self, tiny_kg):
        """The category cells must aggregate back to the global Hits@10."""
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test", k=10)
        overall = link_prediction(model, tiny_kg, "test", hits_at=(10,))
        total = sum(breakdown.counts.values())
        weighted = sum(
            breakdown.counts[key]
            * (breakdown.table[key]["head"] + breakdown.table[key]["tail"])
            / 2.0
            for key in breakdown.table
        ) / total
        assert weighted == pytest.approx(overall.hits(10), abs=1e-9)

    def test_missing_category_gives_nan(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test")
        missing = [
            c for c in RelationCategory if c.value not in breakdown.table
        ]
        for category in missing:
            assert np.isnan(breakdown.hits(category, "head"))

    def test_rows_are_report_ready(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        rows = per_category_link_prediction(model, tiny_kg, "test").rows()
        assert rows
        for category, count, head, tail in rows:
            assert isinstance(category, str)
            assert count > 0

    def test_shared_filter_masks_match_per_row_lookups(self, tiny_kg):
        """Regression: the breakdown used to build its masks with per-row
        ``dataset.true_tails``/``true_heads`` Python loops instead of the
        shared ``eval/filters.py`` builders — the exact drift that module
        exists to prevent.  The vectorised masks must be equivalent."""
        from repro.eval.filters import head_filter_masks, tail_filter_masks

        triples = tiny_kg.test
        h, r, t = triples[:, 0], triples[:, 1], triples[:, 2]
        shared_tails = tail_filter_masks(tiny_kg, h, r)
        shared_heads = head_filter_masks(tiny_kg, r, t)
        for i, (hi, ri, ti) in enumerate(zip(h, r, t)):
            np.testing.assert_array_equal(
                np.sort(shared_tails[i]),
                np.sort(tiny_kg.true_tails(int(hi), int(ri))),
            )
            np.testing.assert_array_equal(
                np.sort(shared_heads[i]),
                np.sort(tiny_kg.true_heads(int(ri), int(ti))),
            )

    def test_breakdown_unchanged_by_mask_builder_swap(self, tiny_kg):
        """End to end: the filtered breakdown computed through the shared
        mask builders matches a reference computed with the old per-row
        lookups (same ranks, same table)."""
        from repro.data.relations import categorize_relations
        from repro.eval.ranking import rank_scores

        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test", k=10)

        categories = categorize_relations(tiny_kg.train, tiny_kg.n_relations)
        triples = tiny_kg.test
        reference: dict[str, dict[str, list[float]]] = {}
        for start in range(0, len(triples), 128):
            batch = triples[start : start + 128]
            h, r, t = batch[:, 0], batch[:, 1], batch[:, 2]
            tail_ranks = rank_scores(
                model.score_all_tails(h, r), t,
                [tiny_kg.true_tails(int(hi), int(ri)) for hi, ri in zip(h, r)],
            )
            head_ranks = rank_scores(
                model.score_all_heads(r, t), h,
                [tiny_kg.true_heads(int(ri), int(ti)) for ri, ti in zip(r, t)],
            )
            for i, rel in enumerate(r):
                cell = reference.setdefault(
                    categories[int(rel)].value, {"head": [], "tail": []}
                )
                cell["head"].append(float(head_ranks[i] <= 10))
                cell["tail"].append(float(tail_ranks[i] <= 10))

        assert set(breakdown.table) == set(reference)
        for key, cell in reference.items():
            assert breakdown.table[key]["head"] == pytest.approx(np.mean(cell["head"]))
            assert breakdown.table[key]["tail"] == pytest.approx(np.mean(cell["tail"]))
