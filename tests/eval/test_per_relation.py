"""Tests for the per-relation-category evaluation breakdown."""

import numpy as np
import pytest

from repro.data.relations import RelationCategory
from repro.eval.per_relation import per_category_link_prediction
from repro.eval.ranking import link_prediction
from repro.models import make_model


class TestPerCategoryBreakdown:
    def test_counts_cover_the_split(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test")
        assert sum(breakdown.counts.values()) == len(tiny_kg.test)

    def test_hits_are_probabilities(self, tiny_kg):
        model = make_model("DistMult", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test")
        for cell in breakdown.table.values():
            assert 0.0 <= cell["head"] <= 1.0
            assert 0.0 <= cell["tail"] <= 1.0

    def test_weighted_average_matches_overall_hits(self, tiny_kg):
        """The category cells must aggregate back to the global Hits@10."""
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test", k=10)
        overall = link_prediction(model, tiny_kg, "test", hits_at=(10,))
        total = sum(breakdown.counts.values())
        weighted = sum(
            breakdown.counts[key]
            * (breakdown.table[key]["head"] + breakdown.table[key]["tail"])
            / 2.0
            for key in breakdown.table
        ) / total
        assert weighted == pytest.approx(overall.hits(10), abs=1e-9)

    def test_missing_category_gives_nan(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        breakdown = per_category_link_prediction(model, tiny_kg, "test")
        missing = [
            c for c in RelationCategory if c.value not in breakdown.table
        ]
        for category in missing:
            assert np.isnan(breakdown.hits(category, "head"))

    def test_rows_are_report_ready(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        rows = per_category_link_prediction(model, tiny_kg, "test").rows()
        assert rows
        for category, count, head, tail in rows:
            assert isinstance(category, str)
            assert count > 0
