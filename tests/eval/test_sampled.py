"""Tests for the sampled/restricted link-prediction evaluator."""

import numpy as np
import pytest

from repro.data.dataset import KGDataset
from repro.data.triples import Vocabulary
from repro.eval.filters import tail_filter_masks
from repro.eval.protocol import evaluate
from repro.eval.ranking import link_prediction
from repro.eval.sampled import sample_filtered_candidates, sampled_link_prediction
from repro.models import MODEL_REGISTRY, make_model
from repro.obs.registry import MetricsRegistry
from repro.utils.rng import ensure_rng


class TestCandidateSampling:
    """Invariants of the vectorised filtered candidate sampler."""

    def _masks_and_truth(self, tiny_kg):
        triples = tiny_kg.test[:32]
        h, r, t = triples[:, 0], triples[:, 1], triples[:, 2]
        return tail_filter_masks(tiny_kg, h, r), t

    def test_true_entity_is_column_zero(self, tiny_kg):
        masks, t = self._masks_and_truth(tiny_kg)
        candidates, valid = sample_filtered_candidates(
            masks, t, tiny_kg.n_entities, 10, ensure_rng(0)
        )
        assert np.array_equal(candidates[:, 0], t)
        assert valid[:, 0].all()

    def test_no_filtered_entity_is_sampled(self, tiny_kg):
        masks, t = self._masks_and_truth(tiny_kg)
        candidates, valid = sample_filtered_candidates(
            masks, t, tiny_kg.n_entities, 25, ensure_rng(3)
        )
        for i, mask in enumerate(masks):
            negatives = candidates[i, 1:][valid[i, 1:]]
            assert not np.isin(negatives, mask).any()
            assert (negatives >= 0).all() and (negatives < tiny_kg.n_entities).all()

    def test_negatives_are_distinct_within_a_row(self, tiny_kg):
        masks, t = self._masks_and_truth(tiny_kg)
        candidates, valid = sample_filtered_candidates(
            masks, t, tiny_kg.n_entities, 25, ensure_rng(4)
        )
        for i in range(len(masks)):
            negatives = candidates[i, 1:][valid[i, 1:]]
            assert len(np.unique(negatives)) == len(negatives)

    def test_small_pool_enumerates_every_allowed_entity(self):
        # E=6, filter {0, 2, 4} leaves a pool of 3 < K=5: the whole
        # allowed set must appear, trailing slots marked invalid.
        masks = [np.array([0, 2, 4], dtype=np.int64)]
        candidates, valid = sample_filtered_candidates(
            masks, np.array([0]), 6, 5, ensure_rng(0)
        )
        negatives = np.sort(candidates[0, 1:][valid[0, 1:]])
        assert np.array_equal(negatives, np.array([1, 3, 5]))
        assert valid[0].sum() == 4  # true + the 3 allowed entities

    def test_empty_batch(self):
        candidates, valid = sample_filtered_candidates(
            [], np.empty(0, dtype=np.int64), 10, 5, ensure_rng(0)
        )
        assert candidates.shape == (0, 6)
        assert valid.shape == (0, 6)


class TestAgreementWithFullRanking:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_exact_at_full_pool(self, tiny_kg, name):
        """K >= E-1 must reproduce full filtered ranking bit-identically."""
        model = make_model(name, tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        full = link_prediction(model, tiny_kg, "test")
        sampled = sampled_link_prediction(
            model, tiny_kg, "test", num_negatives=tiny_kg.n_entities - 1, seed=0
        )
        np.testing.assert_array_equal(sampled.ranks, full.ranks)
        assert sampled.metrics == full.metrics

    def test_exact_at_full_pool_raw(self, tiny_kg):
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        full = link_prediction(model, tiny_kg, "test", filtered=False)
        sampled = sampled_link_prediction(
            model,
            tiny_kg,
            "test",
            num_negatives=tiny_kg.n_entities - 1,
            filtered=False,
            seed=0,
        )
        np.testing.assert_array_equal(sampled.ranks, full.ranks)

    def test_sampled_ranks_never_exceed_full_ranks(self, tiny_kg):
        """Per query: the sampled pool is a subset of the full pool, so
        the true entity's sampled rank is bounded by its full rank."""
        model = make_model(
            "DistMult", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        full = link_prediction(model, tiny_kg, "test")
        sampled = sampled_link_prediction(
            model, tiny_kg, "test", num_negatives=15, seed=1
        )
        # Both evaluators emit ranks in the same query order.
        assert len(sampled.ranks) == len(full.ranks)
        assert (sampled.ranks <= full.ranks + 1e-9).all()
        assert sampled.ranks.max() <= 16.0

    def test_statistical_gap_is_bounded(self, tiny_kg):
        """At moderate K the sampled MRR sits above full-ranking MRR but
        within the gap implied by the pool-size ratio."""
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        full = link_prediction(model, tiny_kg, "test")
        gaps = []
        for seed in range(5):
            sampled = sampled_link_prediction(
                model, tiny_kg, "test", num_negatives=40, seed=seed
            )
            assert sampled.mrr >= full.mrr - 1e-9
            assert sampled.hits(10) >= full.hits(10) - 1e-9
            gaps.append(sampled.mrr - full.mrr)
        # K=40 of E=80 keeps the estimate in the same regime as the full
        # metric; a generous band still catches a broken sampler (which
        # drifts toward the K->1 limit of MRR ~ 1).
        assert np.mean(gaps) < 0.35


class TestSampledProtocol:
    def test_deterministic_under_seed(self, tiny_kg):
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        a = sampled_link_prediction(model, tiny_kg, "test",
                                    num_negatives=20, seed=7)
        b = sampled_link_prediction(model, tiny_kg, "test",
                                    num_negatives=20, seed=7)
        c = sampled_link_prediction(model, tiny_kg, "test",
                                    num_negatives=20, seed=8)
        np.testing.assert_array_equal(a.ranks, b.ranks)
        assert not np.array_equal(a.ranks, c.ranks)

    def test_generator_seed_accepted(self, tiny_kg):
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        result = sampled_link_prediction(
            model, tiny_kg, "test", num_negatives=5,
            seed=np.random.default_rng(0),
        )
        assert len(result.ranks) == 2 * len(tiny_kg.test)

    def test_rank_count_is_twice_split_size(self, tiny_kg):
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        result = sampled_link_prediction(model, tiny_kg, "test", num_negatives=10)
        assert len(result.ranks) == 2 * len(tiny_kg.test)

    def test_empty_split_reports_nan(self):
        vocab = Vocabulary.anonymous(5, 1)
        train = np.array([(0, 0, 1), (1, 0, 2)])
        empty = np.empty((0, 3), dtype=np.int64)
        ds = KGDataset("empty-test", vocab, train, empty, empty)
        model = make_model("TransE", 5, 1, 4, rng=0)
        result = sampled_link_prediction(model, ds, "test", num_negatives=3)
        assert len(result.ranks) == 0
        assert np.isnan(result.mrr)

    def test_invalid_num_negatives_rejected(self, tiny_kg):
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        with pytest.raises(ValueError, match="num_negatives"):
            sampled_link_prediction(model, tiny_kg, "test", num_negatives=0)

    def test_records_eval_counters(self, tiny_kg):
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        registry = MetricsRegistry()
        sampled_link_prediction(
            model, tiny_kg, "test", num_negatives=10, metrics=registry
        )
        labels = {"protocol": "sampled"}
        n_queries = 2 * len(tiny_kg.test)
        assert registry.value("eval_queries_total", labels) == n_queries
        assert registry.value("eval_candidates_scored_total", labels) == (
            n_queries * 11
        )
        assert registry.value("eval_seconds_total", labels) > 0.0


class TestEvaluateModes:
    def _model(self, tiny_kg):
        return make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )

    def test_full_mode_is_the_default(self, tiny_kg):
        model = self._model(tiny_kg)
        assert evaluate(model, tiny_kg, "test") == evaluate(
            model, tiny_kg, "test", mode="full"
        )

    def test_sampled_mode_matches_direct_call(self, tiny_kg):
        model = self._model(tiny_kg)
        via_protocol = evaluate(
            model, tiny_kg, "test", mode="sampled", num_negatives=20, seed=5
        )
        direct = sampled_link_prediction(
            model, tiny_kg, "test", num_negatives=20, seed=5
        )
        assert via_protocol == direct.metrics

    def test_sampled_mode_requires_num_negatives(self, tiny_kg):
        with pytest.raises(ValueError, match="num_negatives"):
            evaluate(self._model(tiny_kg), tiny_kg, "test", mode="sampled")

    def test_full_mode_rejects_num_negatives(self, tiny_kg):
        with pytest.raises(ValueError, match="num_negatives"):
            evaluate(self._model(tiny_kg), tiny_kg, "test", num_negatives=5)

    def test_unknown_mode_rejected(self, tiny_kg):
        with pytest.raises(ValueError, match="mode"):
            evaluate(self._model(tiny_kg), tiny_kg, "test", mode="approximate")

    def test_full_mode_records_counters(self, tiny_kg):
        registry = MetricsRegistry()
        evaluate(self._model(tiny_kg), tiny_kg, "test", metrics=registry)
        labels = {"protocol": "full"}
        n_queries = 2 * len(tiny_kg.test)
        assert registry.value("eval_queries_total", labels) == n_queries
        assert registry.value("eval_candidates_scored_total", labels) == (
            n_queries * tiny_kg.n_entities
        )
