"""Tests for the shared filtered-candidate mask builders."""

import numpy as np

from repro.data.triples import HEAD, REL, TAIL
from repro.eval.filters import head_filter_masks, tail_filter_masks


class TestTailFilterMasks:
    def test_masks_cover_every_known_tail(self, tiny_kg):
        triples = tiny_kg.test[:16]
        masks = tail_filter_masks(tiny_kg, triples[:, HEAD], triples[:, REL])
        assert len(masks) == len(triples)
        for triple, mask in zip(triples, masks):
            h, r, t = (int(x) for x in triple)
            np.testing.assert_array_equal(mask, tiny_kg.true_tails(h, r))
            assert t in mask  # the queried triple itself is known

    def test_mask_entries_are_known_triples(self, tiny_kg):
        triples = tiny_kg.test[:8]
        masks = tail_filter_masks(tiny_kg, triples[:, HEAD], triples[:, REL])
        for triple, mask in zip(triples, masks):
            h, r = int(triple[HEAD]), int(triple[REL])
            assert all(tiny_kg.is_known(h, r, int(t)) for t in mask)

    def test_unknown_pair_gives_empty_mask(self, tiny_kg):
        # A (h, r) pair absent from every split has no true tails.
        known = {(int(h), int(r)) for h, r, _ in tiny_kg.all_triples()}
        h, r = next(
            (h, r)
            for h in range(tiny_kg.n_entities)
            for r in range(tiny_kg.n_relations)
            if (h, r) not in known
        )
        (mask,) = tail_filter_masks(tiny_kg, np.array([h]), np.array([r]))
        assert len(mask) == 0


class TestHeadFilterMasks:
    def test_masks_cover_every_known_head(self, tiny_kg):
        triples = tiny_kg.test[:16]
        masks = head_filter_masks(tiny_kg, triples[:, REL], triples[:, TAIL])
        for triple, mask in zip(triples, masks):
            h, r, t = (int(x) for x in triple)
            np.testing.assert_array_equal(mask, tiny_kg.true_heads(r, t))
            assert h in mask

    def test_head_and_tail_masks_agree_on_symmetric_membership(self, tiny_kg):
        # t in tail_mask(h, r) <=> h in head_mask(r, t), both meaning
        # (h, r, t) is a known triple.
        triples = tiny_kg.valid[:8]
        tails = tail_filter_masks(tiny_kg, triples[:, HEAD], triples[:, REL])
        heads = head_filter_masks(tiny_kg, triples[:, REL], triples[:, TAIL])
        for triple, tail_mask, head_mask in zip(triples, tails, heads):
            assert int(triple[TAIL]) in tail_mask
            assert int(triple[HEAD]) in head_mask
