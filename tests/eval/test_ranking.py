"""Tests for the link-prediction evaluator."""

import numpy as np
import pytest

from repro.data.dataset import KGDataset
from repro.data.triples import Vocabulary
from repro.eval.ranking import RankingResult, link_prediction, rank_scores
from repro.models import make_model


class TestRankScores:
    def test_perfect_rank(self):
        scores = np.array([[0.1, 0.9, 0.2]])
        assert rank_scores(scores, np.array([1]), None)[0] == 1.0

    def test_worst_rank(self):
        scores = np.array([[0.9, 0.1, 0.5]])
        assert rank_scores(scores, np.array([1]), None)[0] == 3.0

    def test_tie_averaging(self):
        scores = np.array([[0.5, 0.5, 0.1]])
        # True column 0 ties with column 1 -> average of ranks 1 and 2.
        assert rank_scores(scores, np.array([0]), None)[0] == 1.5

    def test_constant_scores_give_middle_rank(self):
        scores = np.zeros((1, 5))
        assert rank_scores(scores, np.array([2]), None)[0] == 3.0

    def test_filtering_removes_other_true_entities(self):
        scores = np.array([[0.9, 0.8, 0.7, 0.1]])
        true_col = np.array([2])
        unfiltered = rank_scores(scores, true_col, None)[0]
        filtered = rank_scores(scores, true_col, [np.array([0, 1])])[0]
        assert unfiltered == 3.0
        assert filtered == 1.0

    def test_filtering_never_removes_true_column(self):
        scores = np.array([[0.9, 0.8]])
        # The mask includes the true column itself; it must survive.
        rank = rank_scores(scores, np.array([0]), [np.array([0, 1])])[0]
        assert rank == 1.0


class TestRankingResult:
    def test_metrics_from_known_ranks(self):
        result = RankingResult(ranks=np.array([1.0, 2.0, 10.0]), hits_at=(1, 10))
        assert result.mrr == pytest.approx((1 + 0.5 + 0.1) / 3)
        assert result.mr == pytest.approx(13 / 3)
        assert result.hits(1) == pytest.approx(1 / 3)
        assert result.hits(10) == pytest.approx(1.0)

    def test_empty_ranks_report_nan(self):
        # Regression: these used to report 0.0, and an MR of 0.0 is
        # *better* than the theoretical optimum of 1.0 — a minimize-style
        # early stopper on an empty split would lock onto it forever.
        result = RankingResult(ranks=np.empty(0))
        assert np.isnan(result.mrr)
        assert np.isnan(result.mr)
        for k in result.hits_at:
            assert np.isnan(result.hits(k))

    def test_empty_ranks_never_beat_a_real_result(self):
        empty = RankingResult(ranks=np.empty(0))
        real = RankingResult(ranks=np.array([5.0]))
        # NaN compares False in both directions, as "no data" should.
        assert not (empty.mr < real.mr)
        assert not (empty.mrr > real.mrr)


class TestLinkPrediction:
    def _perfect_dataset_and_model(self):
        """A 1-triple test set and a model rigged to rank it first."""
        vocab = Vocabulary.anonymous(5, 1)
        train = np.array([(0, 0, 1), (1, 0, 2), (2, 0, 3)])
        test = np.array([(3, 0, 4)])
        ds = KGDataset("rigged", vocab, train, np.empty((0, 3), dtype=np.int64), test)
        model = make_model("TransE", 5, 1, 4, rng=0)
        model.params["relation"][0] = 0.0
        for e in range(5):
            model.params["entity"][e] = 0.1 * e
        # With r=0 and distinct entity rows, the nearest entity to h is
        # its own embedding; rig tail 4 to coincide with head 3.
        model.params["entity"][4] = model.params["entity"][3]
        return ds, model

    def test_rigged_model_gets_top_ranks(self):
        ds, model = self._perfect_dataset_and_model()
        result = link_prediction(model, ds, "test", filtered=False)
        assert result.ranks.max() <= 2.0  # h itself may tie

    def test_filtered_never_worse_than_raw(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        raw = link_prediction(model, tiny_kg, "test", filtered=False)
        filtered = link_prediction(model, tiny_kg, "test", filtered=True)
        assert filtered.mr <= raw.mr + 1e-9
        assert filtered.mrr >= raw.mrr - 1e-9

    def test_rank_count_is_twice_split_size(self, tiny_kg):
        model = make_model("DistMult", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        result = link_prediction(model, tiny_kg, "test")
        assert len(result.ranks) == 2 * len(tiny_kg.test)

    def test_batching_invariance(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        small = link_prediction(model, tiny_kg, "test", batch_size=3)
        large = link_prediction(model, tiny_kg, "test", batch_size=512)
        # Rank *order* differs (head/tail interleaving per batch), but the
        # multiset of ranks and hence every metric must be identical.
        np.testing.assert_allclose(np.sort(small.ranks), np.sort(large.ranks))
        assert small.mrr == pytest.approx(large.mrr)

    def test_hits_at_configurable(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        result = link_prediction(model, tiny_kg, "test", hits_at=(5,))
        assert "hits@5" in result.metrics
        assert "hits@10" not in result.metrics

    def test_ranks_bounded_by_entity_count(self, tiny_kg):
        model = make_model("ComplEx", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        result = link_prediction(model, tiny_kg, "test")
        assert result.ranks.min() >= 1.0
        assert result.ranks.max() <= tiny_kg.n_entities
