"""Tests for triplet classification with relation thresholds."""

import numpy as np

from repro.eval.classification import (
    _best_threshold,
    fit_relation_thresholds,
    triplet_classification,
)
from repro.models import make_model


class TestBestThreshold:
    def test_perfectly_separable(self):
        scores = np.array([1.0, 2.0, 10.0, 11.0])
        labels = np.array([-1, -1, 1, 1])
        threshold = _best_threshold(scores, labels)
        assert 2.0 < threshold < 10.0

    def test_inseparable_prefers_majority(self):
        scores = np.array([1.0, 1.0, 1.0])
        labels = np.array([1, 1, -1])
        threshold = _best_threshold(scores, labels)
        predictions = np.where(scores >= threshold, 1, -1)
        assert np.mean(predictions == labels) >= 2 / 3

    def test_all_positive(self):
        scores = np.array([1.0, 2.0])
        labels = np.array([1, 1])
        threshold = _best_threshold(scores, labels)
        assert np.all(scores >= threshold)


class TestFitRelationThresholds:
    def test_per_relation_and_global(self):
        scores = np.array([0.0, 1.0, 10.0, 11.0])
        labels = np.array([-1, 1, -1, 1])
        relations = np.array([0, 0, 1, 1])
        thresholds, global_threshold = fit_relation_thresholds(scores, labels, relations)
        assert set(thresholds) == {0, 1}
        assert 0.0 < thresholds[0] <= 1.0
        assert 10.0 < thresholds[1] <= 11.0
        assert np.isfinite(global_threshold)


class TestTripletClassification:
    def test_untrained_model_near_chance(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        result = triplet_classification(model, tiny_kg, rng=0)
        assert 0.3 <= result.accuracy <= 0.8
        assert result.n_test == 2 * len(tiny_kg.test)

    def test_result_exposes_thresholds(self, tiny_kg):
        model = make_model("DistMult", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        result = triplet_classification(model, tiny_kg, rng=0)
        assert len(result.thresholds) >= 1
        assert np.isfinite(result.global_threshold)

    def test_deterministic_given_seed(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        a = triplet_classification(model, tiny_kg, rng=7)
        b = triplet_classification(model, tiny_kg, rng=7)
        assert a.accuracy == b.accuracy
