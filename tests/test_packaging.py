"""Packaging smoke tests: metadata, console entry point, installability.

The historical failure mode this pins down: ``setup.py`` shipped no
metadata at all — no ``requires-python``, no console script — so
``pip install .`` produced a package you could neither version-gate nor
invoke as ``repro``.  Everything now lives in ``pyproject.toml``.
"""

from __future__ import annotations

import importlib
import importlib.util
import subprocess
import sys
import sysconfig
import tomllib
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
PYPROJECT = REPO_ROOT / "pyproject.toml"

pytestmark = pytest.mark.skipif(
    not PYPROJECT.is_file(),
    reason="repro is not running from a source checkout",
)


def _metadata() -> dict:
    with PYPROJECT.open("rb") as handle:
        return tomllib.load(handle)


class TestDeclaredMetadata:
    def test_core_fields_present(self):
        project = _metadata()["project"]
        assert project["name"] == "repro-nscaching"
        assert project["version"] == repro.__version__
        assert project["requires-python"].startswith(">=3.")
        assert "numpy" in project["dependencies"]
        assert project["description"]

    def test_console_entry_point_declared_and_resolvable(self):
        scripts = _metadata()["project"]["scripts"]
        target = scripts["repro"]
        module_name, _, attr = target.partition(":")
        module = importlib.import_module(module_name)
        assert callable(getattr(module, attr))

    def test_src_layout_discovery(self):
        find = _metadata()["tool"]["setuptools"]["packages"]["find"]
        assert find["where"] == ["src"]

    def test_static_analysis_configs_declared(self):
        tool = _metadata()["tool"]
        assert tool["ruff"]["lint"]["select"] == ["F", "I"]
        overrides = tool["mypy"]["overrides"]
        strict = [o for o in overrides if o.get("disallow_untyped_defs")]
        modules = {m for o in strict for m in o["module"]}
        assert {
            "repro.core.*", "repro.eval.*", "repro.parallel.*",
            "repro.serve.*",
        } <= modules


class TestRunnableWithoutInstall:
    def test_python_m_repro_help(self):
        env_path = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "usage: repro" in proc.stdout
        for command in ("train", "evaluate", "serve", "metrics", "lint"):
            assert command in proc.stdout


@pytest.mark.skipif(
    importlib.util.find_spec("wheel") is None,
    reason="offline toolchain cannot build wheels (no `wheel` package)",
)
class TestPipInstallRoundTrip:
    def test_pip_install_then_repro_help(self, tmp_path):
        prefix = tmp_path / "prefix"
        install = subprocess.run(
            [
                sys.executable, "-m", "pip", "install",
                "--no-build-isolation", "--no-index", "--no-deps",
                "--quiet", f"--prefix={prefix}", str(REPO_ROOT),
            ],
            capture_output=True,
            text=True,
        )
        assert install.returncode == 0, install.stderr
        script = prefix / "bin" / "repro"
        assert script.is_file(), list(prefix.rglob("repro*"))
        purelib = sysconfig.get_paths(vars={"base": str(prefix)})["purelib"]
        proc = subprocess.run(
            [str(script), "--help"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": purelib, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "usage: repro" in proc.stdout
