"""Meta-test: the repository's own source must lint clean at HEAD.

This is the regression backstop the CI ``static-analysis`` job mirrors:
a PR that introduces a global-RNG call, an unguarded metrics site, a
leaked shared-memory segment, a kernel wall-clock read or an
unannotated public API fails the *test suite*, not just CI.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.lint import lint_paths

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

pytestmark = pytest.mark.skipif(
    not (SRC / "repro").is_dir(),
    reason="repro is not running from a source checkout",
)


def test_src_tree_is_lint_clean():
    result = lint_paths([SRC])
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.clean, f"repro lint src must stay clean:\n{rendered}"
    # The tree is non-trivial — guard against silently linting nothing.
    assert result.files_checked >= 90


def test_benchmarks_and_examples_are_lint_clean():
    result = lint_paths([REPO_ROOT / "benchmarks", REPO_ROOT / "examples"])
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.clean, f"benchmarks/examples must stay clean:\n{rendered}"
