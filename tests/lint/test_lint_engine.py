"""Engine behaviour: pragmas, selection, file collection, formatting."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    LintConfig,
    collect_files,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.lint.engine import PARSE_ERROR, UNKNOWN_PRAGMA_CODE, LintResult

BAD_LINE = "import numpy as np\nnp.random.shuffle([1, 2])"


class TestPragmas:
    def test_bare_ignore_suppresses_every_code(self):
        source = (
            "import numpy as np\n"
            "np.random.shuffle([1])  # repro-lint: ignore -- vendored demo\n"
        )
        assert lint_source(source, "src/repro/x.py") == []

    def test_coded_ignore_suppresses_only_that_code(self):
        source = (
            "import numpy as np\n"
            "np.random.shuffle([1])  # repro-lint: ignore[RPL001] -- reason\n"
        )
        assert lint_source(source, "src/repro/x.py") == []

    def test_wrong_code_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "np.random.shuffle([1])  # repro-lint: ignore[RPL005] -- nope\n"
        )
        codes = [f.code for f in lint_source(source, "src/repro/x.py")]
        assert "RPL001" in codes

    def test_multiple_codes_in_one_pragma(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro-lint: ignore[RPL001, RPL002] -- demo\n"
        )
        assert lint_source(source, "src/repro/x.py") == []

    def test_unknown_pragma_code_is_reported(self):
        source = "x = 1  # repro-lint: ignore[RPL999]\n"
        (finding,) = lint_source(source, "src/repro/x.py")
        assert finding.code == UNKNOWN_PRAGMA_CODE
        assert "RPL999" in finding.message

    def test_pragma_inside_string_literal_is_inert(self):
        source = (
            "import numpy as np\n"
            'DOC = "# repro-lint: ignore[RPL001]"\n'
            "np.random.shuffle([1])\n"
        )
        codes = [f.code for f in lint_source(source, "src/repro/x.py")]
        assert codes == ["RPL001"]

    def test_pragma_only_covers_its_own_line(self):
        source = (
            "import numpy as np  # repro-lint: ignore[RPL001]\n"
            "np.random.shuffle([1])\n"
        )
        codes = [f.code for f in lint_source(source, "src/repro/x.py")]
        assert codes == ["RPL001"]


class TestSelection:
    def test_select_narrows_to_named_rules(self):
        config = LintConfig.from_selectors(select="RPL002")
        assert lint_source(BAD_LINE, "src/repro/x.py", config) == []

    def test_ignore_drops_named_rules(self):
        config = LintConfig.from_selectors(ignore="RPL001")
        assert lint_source(BAD_LINE, "src/repro/x.py", config) == []
        assert lint_source(BAD_LINE, "src/repro/x.py") != []

    def test_unknown_code_raises_with_known_codes_listed(self):
        with pytest.raises(ValueError, match="RPL777"):
            LintConfig.from_selectors(select="RPL777")
        with pytest.raises(ValueError, match="known codes"):
            LintConfig.from_selectors(ignore="RPL001,bogus")


class TestParseErrors:
    def test_syntax_error_becomes_a_finding(self):
        (finding,) = lint_source("def broken(:\n", "src/repro/x.py")
        assert finding.code == PARSE_ERROR
        assert "does not parse" in finding.message


class TestCollectFiles:
    def test_walks_directories_and_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        files = collect_files([tmp_path])
        assert [f.name for f in files] == ["a.py"]

    def test_explicit_file_and_dir_deduplicate(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        files = collect_files([tmp_path, target])
        assert files == [target]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no_such"):
            collect_files([tmp_path / "no_such.py"])


class TestLintPaths:
    def test_tree_run_counts_files_and_sorts_findings(self, tmp_path):
        root = tmp_path / "src" / "repro" / "core"
        root.mkdir(parents=True)
        (root / "ok.py").write_text("X = 1\n")
        (root / "bad.py").write_text(
            "import time\n\n\ndef f() -> float:\n    return time.time()\n"
        )
        result = lint_paths([tmp_path])
        assert result.files_checked == 2
        assert result.counts == {"RPL005": 1}
        assert not result.clean

    def test_clean_tree(self, tmp_path):
        (tmp_path / "ok.py").write_text("X = 1\n")
        result = lint_paths([tmp_path])
        assert result.clean and result.files_checked == 1


class TestFormatting:
    def _result(self) -> LintResult:
        findings = lint_source(BAD_LINE, "pkg/mod.py")
        result = LintResult(findings=findings, files_checked=1)
        return result.finalize()

    def test_text_lists_findings_and_summary(self):
        text = format_findings(self._result(), "text")
        assert "pkg/mod.py:2:0: RPL001" in text
        assert "1 finding(s) in 1 file(s): RPL001 x1" in text

    def test_text_clean_summary(self):
        text = format_findings(LintResult(files_checked=3), "text")
        assert text == "clean: 3 file(s), 0 findings"

    def test_json_golden(self):
        payload = format_findings(self._result(), "json")
        expected = {
            "version": 1,
            "files_checked": 1,
            "counts": {"RPL001": 1},
            "findings": [
                {
                    "path": "pkg/mod.py",
                    "line": 2,
                    "col": 0,
                    "code": "RPL001",
                    "message": (
                        "np.random.shuffle uses the process-global NumPy "
                        "RNG; pass an explicit np.random.Generator "
                        "(repro.utils.rng.ensure_rng) instead"
                    ),
                }
            ],
        }
        assert json.loads(payload) == expected
        # Key order is pinned so downstream diffs stay byte-stable.
        assert payload.startswith('{\n  "version": 1,\n  "files_checked": 1,')

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="xml"):
            format_findings(LintResult(), "xml")
