"""Shared helpers for the lint suite: fixture loading and one-rule runs.

Imported bare (``from lint_helpers import ...``) like the model
conformance fixtures — pytest puts this directory on ``sys.path``.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import LintConfig, lint_source
from repro.lint.findings import Finding

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def run_rule(code: str, source: str, path: str) -> list[Finding]:
    """Lint ``source`` (pretending it lives at ``path``) with one rule."""
    config = LintConfig.from_selectors(select=code)
    return lint_source(source, path, config)
