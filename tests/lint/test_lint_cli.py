"""CLI surface of ``repro lint``: exit codes, formats, selector errors."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def tree(tmp_path):
    root = tmp_path / "src" / "repro" / "core"
    root.mkdir(parents=True)
    (root / "ok.py").write_text("X = 1\n")
    (root / "bad.py").write_text(
        "import numpy as np\n\n\ndef f() -> None:\n    np.random.seed(0)\n"
    )
    return tmp_path


def test_clean_run_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("X = 1\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert "clean: 1 file(s), 0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_text_report(tree, capsys):
    assert main(["lint", str(tree)]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out and "bad.py" in out
    assert "1 finding(s) in 2 file(s)" in out


def test_json_format_is_machine_readable(tree, capsys):
    assert main(["lint", str(tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["files_checked"] == 2
    assert payload["counts"] == {"RPL001": 1}
    (finding,) = payload["findings"]
    assert finding["code"] == "RPL001" and finding["line"] == 5


def test_select_narrows_the_run(tree, capsys):
    assert main(["lint", str(tree), "--select", "RPL002"]) == 0
    assert main(["lint", str(tree), "--ignore", "RPL001"]) == 0


def test_unknown_code_exits_two(tree, capsys):
    assert main(["lint", str(tree), "--select", "RPL777"]) == 2
    assert "RPL777" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope")]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006"):
        assert code in out
