"""Good obs module: every clock read routes through repro.obs.clock."""
from repro.obs import clock


def span_start():
    return clock.monotonic()


def stamp(record):
    record["unix_time"] = clock.wall_time()
    return record
