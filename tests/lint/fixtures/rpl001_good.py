"""Good: every draw flows through an explicitly threaded Generator."""
import numpy as np


def corrupt(rows, rng: np.random.Generator):
    rng.shuffle(rows)
    return rng.integers(0, 10)
