"""Good kernel module: clock-free; timing happens a layer up."""


def score(block):
    return block * 2.0
