"""Good: every metrics chain is guarded (all four accepted forms)."""

from repro.obs.registry import MetricsRegistry


def record_guarded(metrics=None):
    if metrics is not None:
        metrics.counter("requests_total", "requests").inc()


def record_early_exit(metrics=None):
    if metrics is None:
        return
    metrics.gauge("depth", "queue depth").set(1.0)


def record_asserted(metrics=None):
    assert metrics is not None
    metrics.histogram("seconds", "latency").observe(0.1)


def record_annotated(metrics: MetricsRegistry) -> None:
    metrics.counter("requests_total", "requests").inc()


class Worker:
    def __init__(self, metrics=None):
        self.metrics = metrics

    def tick(self):
        if self.metrics is not None:
            self.metrics.gauge("depth", "queue depth").set(1.0)
