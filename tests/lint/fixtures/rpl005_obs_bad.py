"""Bad (as an obs/ module that is not clock.py): direct time reads."""
import time
from time import monotonic


def span_start():
    return monotonic()


def stamp(record):
    record["unix_time"] = time.time()
    return record
