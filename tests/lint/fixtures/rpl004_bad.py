"""Bad: a class that allocates a segment and only ever close()s it."""
from multiprocessing import shared_memory


class LeakyBlock:
    def __init__(self, nbytes: int):
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)

    def half_release(self):
        self.shm.close()  # mapping dropped, but the segment leaks
