"""Good: the creating class owns a full close()+unlink() release path."""
from multiprocessing import shared_memory


class OwnedBlock:
    def __init__(self, nbytes: int):
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)

    def release(self):
        self.shm.close()
        self.shm.unlink()


def attach(name: str):
    # attach-only (create defaults to False): not an owner, no finding.
    return shared_memory.SharedMemory(name=name)
