"""Bad: unseeded generator construction (non-test code)."""
import numpy as np
import numpy.random as npr


def make_rngs():
    a = np.random.default_rng()
    b = np.random.default_rng(None)
    c = npr.PCG64()
    d = np.random.SeedSequence()
    return a, b, c, d
