"""Bad (as a typed-API module): public functions missing annotations."""


def lookup(key, default=None):
    return default


class Engine:
    def predict(self, queries, k=10) -> list:
        return []

    def stats(self):
        return {}
