"""Bad: metrics call sites with no proof the registry exists."""


def record(metrics=None):
    metrics.counter("requests_total", "requests").inc()


class Worker:
    def __init__(self, metrics=None):
        self.metrics = metrics

    def tick(self):
        self.metrics.gauge("depth", "queue depth").set(1.0)
        self.metrics.histogram("seconds", "latency").observe(0.1)
