"""Good typed-API module: complete public annotations; private helpers free."""
from __future__ import annotations


def lookup(key: str, default: object | None = None) -> object | None:
    return _helper(key) or default


def _helper(key):
    return None


class Engine:
    def predict(self, queries: list[str], k: int = 10) -> list[str]:
        return []

    def stats(self, **labels: object) -> dict[str, float]:
        return {}

    def _internal(self, anything):
        return anything
