"""Good: every constructor receives an explicit seed."""
import numpy as np


def make_rngs(seed: int):
    a = np.random.default_rng(0)
    b = np.random.default_rng(seed)
    c = np.random.PCG64(seed)
    d = np.random.SeedSequence(entropy=seed)
    return a, b, c, d
