"""Bad: global numpy RNG — module-level API and a direct import."""
import numpy as np
from numpy.random import shuffle


def corrupt(rows):
    np.random.seed(0)
    np.random.shuffle(rows)
    shuffle(rows)
    return np.random.randint(0, 10)
