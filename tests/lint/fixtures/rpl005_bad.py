"""Bad (as a models/ or core/ module): ad-hoc wall-clock reads."""
import time
from time import perf_counter


def score(block):
    started = time.time()
    _ = perf_counter()
    return block, time.monotonic() - started
