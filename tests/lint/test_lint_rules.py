"""Fixture-driven rule tests: each rule fires on its bad snippet and
stays silent on the good one, under a path that puts the rule in scope."""

from __future__ import annotations

import pytest

from lint_helpers import load_fixture, run_rule

#: rule code → (path the fixture pretends to live at, findings in the bad one)
RULE_FIXTURES = {
    "RPL001": ("src/repro/data/negatives.py", 5),
    "RPL002": ("src/repro/train/trainer.py", 4),
    "RPL003": ("src/repro/obs/exporter.py", 3),
    "RPL004": ("src/repro/parallel/blocks.py", 1),
    "RPL005": ("src/repro/core/kernel.py", 3),
    "RPL006": ("src/repro/serve/engine.py", 3),
}


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_rule_fires_on_bad_fixture(code):
    path, expected = RULE_FIXTURES[code]
    source = load_fixture(f"{code.lower()}_bad.py")
    findings = run_rule(code, source, path)
    assert [f.code for f in findings] == [code] * expected
    # Findings carry real locations and an actionable message.
    for finding in findings:
        assert finding.path == path
        assert finding.line >= 1
        assert finding.message


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_rule_silent_on_good_fixture(code):
    path, _ = RULE_FIXTURES[code]
    source = load_fixture(f"{code.lower()}_good.py")
    assert run_rule(code, source, path) == []


class TestPathScoping:
    def test_rpl002_exempts_test_code(self):
        source = load_fixture("rpl002_bad.py")
        assert run_rule("RPL002", source, "tests/core/test_rng.py") == []
        assert run_rule("RPL002", source, "src/repro/conftest.py") == []

    def test_rpl005_only_applies_to_kernel_modules(self):
        source = load_fixture("rpl005_bad.py")
        assert run_rule("RPL005", source, "src/repro/train/trainer.py") == []
        assert len(run_rule("RPL005", source, "src/repro/models/fast.py")) == 3

    def test_rpl005_obs_scope_fires_on_direct_time_reads(self):
        source = load_fixture("rpl005_obs_bad.py")
        findings = run_rule("RPL005", source, "src/repro/obs/trace.py")
        assert [f.code for f in findings] == ["RPL005"] * 2
        assert all("repro.obs.clock" in f.message for f in findings)

    def test_rpl005_obs_scope_silent_on_clock_routed_reads(self):
        source = load_fixture("rpl005_obs_good.py")
        assert run_rule("RPL005", source, "src/repro/obs/trace.py") == []

    def test_rpl005_obs_clock_module_exempt_by_filename(self):
        # clock.py is the single sanctioned time.* reader: the bad
        # fixture's reads are fine when the file *is* the clock.
        source = load_fixture("rpl005_obs_bad.py")
        assert run_rule("RPL005", source, "src/repro/obs/clock.py") == []

    def test_rpl005_obs_scope_outside_obs_silent(self):
        source = load_fixture("rpl005_obs_bad.py")
        assert run_rule("RPL005", source, "src/repro/serve/engine.py") == []

    def test_rpl005_kernel_must_not_import_sanctioned_clock(self):
        # Routing through repro.obs.clock is for obs/orchestration code;
        # a kernel importing it is the same violation with a detour.
        source = load_fixture("rpl005_obs_good.py")
        findings = run_rule("RPL005", source, "src/repro/core/kernel.py")
        assert len(findings) == 1
        assert "repro.obs.clock" in findings[0].message
        for form in (
            "import repro.obs.clock\n",
            "from repro.obs.clock import monotonic\n",
        ):
            assert run_rule("RPL005", form, "src/repro/core/kernel.py") != []
        # ...but orchestration layers may use it freely.
        assert run_rule("RPL005", source, "src/repro/train/trainer.py") == []

    def test_rpl006_only_applies_to_typed_api_packages(self):
        source = load_fixture("rpl006_bad.py")
        assert run_rule("RPL006", source, "src/repro/bench/tables.py") == []
        assert run_rule("RPL006", source, "src/repro/eval/sampled.py") != []

    def test_rpl001_applies_everywhere(self):
        source = load_fixture("rpl001_bad.py")
        assert run_rule("RPL001", source, "tests/test_anything.py") != []
        assert run_rule("RPL001", source, "benchmarks/bench_x.py") != []


class TestRuleEdgeCases:
    def test_rpl001_sees_through_aliases(self):
        source = (
            "import numpy.random as npr\n"
            "def f(rows):\n"
            "    npr.shuffle(rows)\n"
        )
        (finding,) = run_rule("RPL001", source, "src/repro/x.py")
        assert "shuffle" in finding.message

    def test_rpl001_allows_generator_annotations(self):
        source = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> np.random.Generator:\n"
            "    return np.random.default_rng(0)\n"
        )
        assert run_rule("RPL001", source, "src/repro/x.py") == []

    def test_rpl002_seed_keyword_counts_as_seeded(self):
        source = (
            "import numpy as np\n"
            "def f(s):\n"
            "    return np.random.default_rng(seed=s)\n"
        )
        assert run_rule("RPL002", source, "src/repro/x.py") == []

    def test_rpl003_ternary_guard_accepted(self):
        source = (
            "def f(metrics=None):\n"
            "    h = metrics.histogram('h', 'x') if metrics else None\n"
            "    return h\n"
        )
        assert run_rule("RPL003", source, "src/repro/x.py") == []

    def test_rpl003_optional_annotation_still_flagged(self):
        source = (
            "def f(metrics: 'MetricsRegistry | None') -> None:\n"
            "    metrics.counter('c', 'x').inc()\n"
        )
        # A string annotation mentioning None must NOT count as a guard.
        assert len(run_rule("RPL003", source, "src/repro/x.py")) == 1

    def test_rpl003_guard_on_other_variable_not_accepted(self):
        source = (
            "def f(metrics=None, other=None):\n"
            "    if other is not None:\n"
            "        metrics.counter('c', 'x').inc()\n"
        )
        assert len(run_rule("RPL003", source, "src/repro/x.py")) == 1

    def test_rpl004_module_level_owner_scope_is_module(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "shm = shared_memory.SharedMemory(create=True, size=8)\n"
            "shm.close()\n"
            "shm.unlink()\n"
        )
        assert run_rule("RPL004", source, "src/repro/x.py") == []

    def test_rpl005_import_alias(self):
        source = (
            "import time as clock\n"
            "def f():\n"
            "    return clock.perf_counter()\n"
        )
        assert len(run_rule("RPL005", source, "src/repro/core/x.py")) == 1

    def test_rpl006_lambda_and_nested_defs_exempt(self):
        source = (
            "def outer(x: int) -> int:\n"
            "    def inner(y):\n"
            "        return y\n"
            "    return inner(x)\n"
        )
        assert run_rule("RPL006", source, "src/repro/core/x.py") == []


def test_every_registered_rule_has_a_fixture_pair():
    from repro.lint import RULES

    assert {rule.code for rule in RULES} == set(RULE_FIXTURES)


def test_rules_carry_docs():
    from repro.lint import RULES

    for rule in RULES:
        assert rule.code.startswith("RPL")
        assert rule.name
        assert rule.summary
