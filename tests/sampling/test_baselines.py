"""Tests for uniform and Bernoulli sampling and the shared base class."""

import numpy as np
import pytest

from repro.models import make_model
from repro.sampling import (
    BernoulliSampler,
    UniformSampler,
    make_sampler,
)
from repro.sampling.base import NegativeSampler


@pytest.fixture
def bound(tiny_kg):
    def _bind(sampler):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        return sampler.bind(model, tiny_kg, rng=0)

    return _bind


class TestBaseContract:
    def test_unbound_sampling_rejected(self, tiny_kg):
        with pytest.raises(RuntimeError, match="must be bound"):
            UniformSampler().sample(tiny_kg.train[:4])

    def test_bind_returns_self(self, bound):
        sampler = UniformSampler()
        assert bound(sampler) is sampler

    def test_epoch_notification_recorded(self, bound):
        sampler = bound(UniformSampler())
        sampler.on_epoch_start(7)
        assert sampler.epoch == 7


class TestUniformSampler:
    def test_shape_and_relation_preserved(self, bound, tiny_kg):
        sampler = bound(UniformSampler())
        batch = tiny_kg.train[:32]
        negatives = sampler.sample(batch)
        assert negatives.shape == batch.shape
        np.testing.assert_array_equal(negatives[:, 1], batch[:, 1])

    def test_one_side_retained(self, bound, tiny_kg):
        sampler = bound(UniformSampler())
        batch = tiny_kg.train[:64]
        negatives = sampler.sample(batch)
        same_head = negatives[:, 0] == batch[:, 0]
        same_tail = negatives[:, 2] == batch[:, 2]
        assert np.all(same_head | same_tail)

    def test_head_and_tail_both_corrupted_over_many_draws(self, bound, tiny_kg):
        sampler = bound(UniformSampler())
        batch = np.tile(tiny_kg.train[:1], (400, 1))
        negatives = sampler.sample(batch)
        heads_changed = np.mean(negatives[:, 0] != batch[:, 0])
        tails_changed = np.mean(negatives[:, 2] != batch[:, 2])
        # 50/50 coin, modulo accidental identical replacements.
        assert 0.3 < heads_changed < 0.7
        assert 0.3 < tails_changed < 0.7


class TestBernoulliSampler:
    def test_head_probability_follows_relation_stats(self, bound, tiny_kg):
        sampler = bound(BernoulliSampler())
        assert sampler._head_prob is not None
        assert len(sampler._head_prob) == tiny_kg.n_relations

    def test_skews_towards_many_side(self, tiny_kg):
        """On a 1-N relation the head should be corrupted more often."""
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        sampler = BernoulliSampler().bind(model, tiny_kg, rng=0)
        probs = sampler._head_prob
        # Find the most one-to-many-ish relation in the data.
        from repro.data.relations import relation_cardinalities

        tph, hpt = relation_cardinalities(tiny_kg.train, tiny_kg.n_relations)
        most_1n = int(np.argmax(tph / hpt))
        if tph[most_1n] / hpt[most_1n] > 1.5:
            assert probs[most_1n] > 0.5

    def test_uniform_sampler_uses_fifty_fifty(self, bound):
        sampler = bound(UniformSampler())
        np.testing.assert_allclose(sampler._head_prob, 0.5)


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["Uniform", "Bernoulli", "KBGAN", "IGAN", "NSCaching", "SelfAdv"]
    )
    def test_all_names_constructible(self, name):
        assert isinstance(make_sampler(name), NegativeSampler)

    def test_case_insensitive(self):
        assert isinstance(make_sampler("nscaching"), NegativeSampler)

    def test_kwargs_forwarded(self):
        sampler = make_sampler("NSCaching", cache_size=13)
        assert sampler.cache_size == 13

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown sampler"):
            make_sampler("GANSampler")
