"""Tests for the self-adversarial sampler extension."""

import numpy as np
import pytest

from repro.models import make_model
from repro.sampling.self_adversarial import SelfAdversarialSampler


@pytest.fixture
def sampler(tiny_kg):
    model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
    return SelfAdversarialSampler(candidate_size=16, alpha=2.0).bind(
        model, tiny_kg, rng=0
    )


class TestSelfAdversarial:
    def test_sample_shape(self, sampler, tiny_kg):
        batch = tiny_kg.train[:16]
        negatives = sampler.sample(batch)
        assert negatives.shape == batch.shape

    def test_prefers_high_scoring_negatives(self, sampler, tiny_kg):
        """Chosen corruptions should score above the uniform average."""
        model = sampler.model
        batch = tiny_kg.train[:64]
        negatives = sampler.sample(batch)
        chosen = model.score_triples(negatives).mean()
        rng = np.random.default_rng(0)
        random_neg = batch.copy()
        random_neg[:, 2] = rng.integers(0, tiny_kg.n_entities, len(batch))
        random = model.score_triples(random_neg).mean()
        assert chosen > random

    def test_no_trainable_state(self, sampler, tiny_kg):
        batch = tiny_kg.train[:8]
        sampler.update(batch, sampler.sample(batch))  # no-op, must not raise
        assert not hasattr(sampler, "generator")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="candidate_size"):
            SelfAdversarialSampler(candidate_size=0)
        with pytest.raises(ValueError, match="alpha"):
            SelfAdversarialSampler(alpha=0.0)
