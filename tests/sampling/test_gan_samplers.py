"""Tests for the KBGAN and IGAN re-implementations."""

import numpy as np
import pytest

from repro.models import make_model
from repro.sampling.igan import IGANSampler
from repro.sampling.kbgan import KBGANSampler


@pytest.fixture
def kbgan(tiny_kg):
    model = make_model("TransD", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
    sampler = KBGANSampler(candidate_size=8)
    sampler.bind(model, tiny_kg, rng=0)
    return sampler


@pytest.fixture
def igan(tiny_kg):
    model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
    sampler = IGANSampler(expectation_samples=4)
    sampler.bind(model, tiny_kg, rng=0)
    return sampler


class TestKBGAN:
    def test_generator_created_on_bind(self, kbgan):
        assert kbgan.generator is not None
        assert kbgan.generator.n_parameters() > 0

    def test_sample_shape(self, kbgan, tiny_kg):
        batch = tiny_kg.train[:16]
        negatives = kbgan.sample(batch)
        assert negatives.shape == batch.shape
        np.testing.assert_array_equal(negatives[:, 1], batch[:, 1])

    def test_update_trains_generator(self, kbgan, tiny_kg):
        batch = tiny_kg.train[:16]
        negatives = kbgan.sample(batch)
        before = kbgan.generator.params["entity"].copy()
        kbgan.update(batch, negatives)
        assert not np.array_equal(before, kbgan.generator.params["entity"])

    def test_update_without_sample_is_noop(self, kbgan, tiny_kg):
        before = kbgan.generator.params["entity"].copy()
        kbgan.update(tiny_kg.train[:4], tiny_kg.train[:4])
        np.testing.assert_array_equal(before, kbgan.generator.params["entity"])

    def test_baseline_tracks_rewards(self, kbgan, tiny_kg):
        batch = tiny_kg.train[:16]
        kbgan.update(batch, kbgan.sample(batch))
        assert kbgan._baseline_initialised
        assert np.isfinite(kbgan._baseline)

    def test_warm_start_before_bind_applies_at_bind(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=1)
        sampler = KBGANSampler(candidate_size=4)
        sampler.warm_start_generator(model)
        sampler.bind(model, tiny_kg, rng=0)
        np.testing.assert_array_equal(
            sampler.generator.params["entity"], model.params["entity"]
        )

    def test_generator_prefers_high_scoring_candidates(self, tiny_kg):
        """With a trained (peaked) generator, sampling skews towards its max."""
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        sampler = KBGANSampler(candidate_size=16)
        sampler.bind(model, tiny_kg, rng=0)
        # Make one entity overwhelmingly attractive to the generator by
        # placing it exactly at h + r for the queried relation.
        gen = sampler.generator
        h, r, t = tiny_kg.train[0].tolist()
        special = (t + 1) % tiny_kg.n_entities
        gen.params["entity"][special] = gen.params["entity"][h] + gen.params["relation"][r]
        batch = np.tile([[h, r, t]], (1000, 1))
        # Tail corruption only; `special` appears in a candidate set with
        # probability ~1-(1-1/E)^16 ~ 0.18 and should usually win then,
        # versus ~1/E ~ 0.0125 under uniform choice.
        sampler._head_prob = np.zeros(tiny_kg.n_relations)
        negatives = sampler.sample(batch)
        frequency = np.mean(negatives[:, 2] == special)
        assert frequency > 0.05

    def test_invalid_candidate_size(self):
        with pytest.raises(ValueError, match="candidate_size"):
            KBGANSampler(candidate_size=0)


class TestIGAN:
    def test_sample_shape(self, igan, tiny_kg):
        batch = tiny_kg.train[:8]
        negatives = igan.sample(batch)
        assert negatives.shape == batch.shape

    def test_update_trains_generator(self, igan, tiny_kg):
        batch = tiny_kg.train[:8]
        negatives = igan.sample(batch)
        before = igan.generator.params["entity"].copy()
        igan.update(batch, negatives)
        assert not np.array_equal(before, igan.generator.params["entity"])

    def test_samples_over_full_entity_set(self, igan, tiny_kg):
        """Unlike KBGAN, any entity can be drawn (full softmax support)."""
        batch = np.tile(tiny_kg.train[:1], (500, 1))
        igan._head_prob = np.zeros(tiny_kg.n_relations)  # tail corruption
        negatives = igan.sample(batch)
        distinct = len(set(negatives[:, 2].tolist()))
        assert distinct > 20  # far beyond a size-8 candidate set

    def test_invalid_expectation_samples(self):
        with pytest.raises(ValueError, match="expectation_samples"):
            IGANSampler(expectation_samples=0)
