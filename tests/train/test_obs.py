"""Trainer observability: registry wiring, run log, phase partitioning."""

import numpy as np
import pytest

from repro.core.nscaching import NSCachingSampler
from repro.models import make_model
from repro.obs.registry import MetricsRegistry
from repro.obs.runlog import epoch_records, read_run_log
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer


def _model(tiny_kg):
    return make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)


def _trainer(tiny_kg, *, sampler=None, epochs=2, **kwargs):
    return Trainer(
        _model(tiny_kg),
        tiny_kg,
        sampler or NSCachingSampler(cache_size=4, candidate_size=4),
        TrainConfig(epochs=epochs, batch_size=64, seed=0),
        **kwargs,
    )


class TestRegistryWiring:
    def test_trainer_mirrors_epoch_aggregates(self, tiny_kg):
        registry = MetricsRegistry()
        trainer = _trainer(tiny_kg, metrics=registry)
        trainer.run()
        assert registry.value("train_epochs_total") == 2.0
        assert registry.value("train_samples_total") == 2 * len(tiny_kg.train)
        assert registry.value("train_loss") == pytest.approx(
            trainer.history.last("loss")
        )
        assert registry.value("train_samples_per_sec") > 0

    def test_phase_seconds_mirrored_as_cumulative_counters(self, tiny_kg):
        registry = MetricsRegistry()
        trainer = _trainer(tiny_kg, metrics=registry)
        trainer.run()
        partition = trainer.phase_seconds()
        for phase, seconds in partition.items():
            assert registry.value(
                "train_phase_seconds_total", labels={"phase": phase}
            ) == pytest.approx(seconds)

    def test_sampler_reports_refresh_counters(self, tiny_kg):
        registry = MetricsRegistry()
        trainer = _trainer(tiny_kg, metrics=registry)
        trainer.run()
        for mode in ("head", "tail"):
            labels = {"mode": mode}
            batches = registry.value("cache_refresh_batches_total", labels=labels)
            rows = registry.value("cache_refresh_rows_total", labels=labels)
            candidates = registry.value(
                "cache_refresh_candidates_total", labels=labels
            )
            assert batches > 0
            assert rows == 2 * len(tiny_kg.train)  # every triple, every epoch
            assert candidates == rows * (4 + 4)  # N1 + N2

    def test_churn_counter_agrees_with_history(self, tiny_kg):
        registry = MetricsRegistry()
        trainer = _trainer(tiny_kg, metrics=registry)
        trainer.run()
        total_churn = sum(
            registry.value("cache_changed_elements_total", labels={"mode": mode})
            for mode in ("head", "tail")
        )
        history_churn = sum(trainer.history["cache_changes"].values)
        assert total_churn == history_churn

    def test_profile_report_stays_empty_without_profile_flag(self, tiny_kg):
        trainer = _trainer(tiny_kg, metrics=MetricsRegistry())
        trainer.run()
        assert trainer.profile_report() == {}
        # ... but the partition is live (spans ran for the registry).
        assert sum(trainer.phase_seconds().values()) > 0

    def test_metrics_setter_clears_handles(self, tiny_kg):
        sampler = NSCachingSampler(cache_size=4, candidate_size=4)
        trainer = _trainer(tiny_kg, sampler=sampler, metrics=MetricsRegistry())
        assert sampler.metrics is trainer.metrics
        sampler.metrics = None
        assert sampler.metrics is None
        assert sampler._mh is None


class TestBitIdentical:
    def test_instrumented_run_matches_uninstrumented(self, tiny_kg):
        """Attaching a registry must not perturb the training trajectory."""
        plain = _trainer(tiny_kg)
        plain.run()
        instrumented = _trainer(tiny_kg, metrics=MetricsRegistry())
        instrumented.run()
        for name, param in plain.model.params.items():
            np.testing.assert_array_equal(
                param, instrumented.model.params[name], err_msg=name
            )
        assert plain.history["loss"].values == instrumented.history["loss"].values


class TestRunLog:
    def test_metrics_out_writes_valid_records(self, tiny_kg, tmp_path):
        path = tmp_path / "run.jsonl"
        trainer = _trainer(tiny_kg, metrics_out=str(path))
        trainer.run()
        trainer.close()
        records = read_run_log(path)  # validates every record
        assert [r["type"] for r in records] == [
            "run_meta", "epoch", "epoch", "run_end",
        ]
        meta = records[0]
        assert meta["model"] == "TransE"
        assert meta["sampler"] == "NSCaching"
        assert meta["config"]["epochs"] == 2

    def test_epoch_records_carry_cache_health(self, tiny_kg, tmp_path):
        path = tmp_path / "run.jsonl"
        trainer = _trainer(tiny_kg, metrics_out=str(path))
        trainer.run()
        trainer.close()
        epochs = epoch_records(read_run_log(path))
        for record, churn in zip(
            epochs, trainer.history["cache_changes"].values
        ):
            cache = record["cache"]
            assert cache["churn"] == churn
            # Both cache sides refresh every triple's row each epoch.
            assert cache["refreshed_rows"] == 2 * len(tiny_kg.train)
            assert 0.0 <= cache["survivor_fraction"] <= 1.0
            assert sum(record["phase_seconds"].values()) <= record[
                "epoch_seconds"
            ] * 1.05 + 1e-6

    def test_run_log_without_cache_sampler_has_no_cache_block(
        self, tiny_kg, tmp_path
    ):
        from repro.sampling import BernoulliSampler

        path = tmp_path / "run.jsonl"
        trainer = _trainer(tiny_kg, sampler=BernoulliSampler(), metrics_out=str(path))
        trainer.run()
        trainer.close()
        epochs = epoch_records(read_run_log(path))
        assert epochs and all("cache" not in r for r in epochs)

    def test_close_without_run_leaves_partial_but_valid_log(
        self, tiny_kg, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        trainer = _trainer(tiny_kg, metrics_out=str(path))
        trainer.run(1)
        trainer.close()  # run() already ended: run_end is present
        records = read_run_log(path)
        assert records[-1]["type"] == "run_end"
        assert records[-1]["epochs"] == 1


class TestParallelRefreshObservability:
    def _parallel_trainer(self, tiny_kg, path=None, **kwargs):
        sampler = NSCachingSampler(
            cache_size=4,
            candidate_size=4,
            cache_backend="sharded-array",
            cache_options={"n_shards": 2},
            refresh_workers=2,
            refresh_processes=False,  # inline: deterministic, fork-free
        )
        return _trainer(
            tiny_kg,
            sampler=sampler,
            metrics_out=str(path) if path is not None else None,
            **kwargs,
        )

    def test_partition_invariant_with_parallel_refresh(self, tiny_kg):
        """Phases stay disjoint and sum to the hot-loop wall time when the
        pooled refresh adds its dispatch+wait phase."""
        trainer = self._parallel_trainer(tiny_kg, profile=True, epochs=3)
        try:
            trainer.run()
            report = trainer.profile_report()
            assert report["parallel_refresh"] > 0
            # Inline pool execution: the nested scoring happens inside the
            # pool's own timer, so cache_update is carved down by it.
            raw = trainer.phase_timers["cache_update"].elapsed
            assert report["cache_update"] == pytest.approx(
                max(
                    0.0,
                    raw
                    - report["score_candidates"]
                    - report["parallel_refresh"],
                )
            )
            total, wall = sum(report.values()), trainer.train_seconds
            assert total <= wall
            assert total >= 0.5 * wall, (report, wall)
        finally:
            trainer.close()

    def test_run_log_carries_per_shard_timings(self, tiny_kg, tmp_path):
        path = tmp_path / "run.jsonl"
        trainer = self._parallel_trainer(tiny_kg, path=path)
        try:
            trainer.run()
        finally:
            trainer.close()
        epochs = epoch_records(read_run_log(path))
        shards = epochs[0]["refresh_shards"]
        assert set(shards) == {"head:0", "head:1", "tail:0", "tail:1"}
        for entry in shards.values():
            assert entry["tasks"] > 0
            assert entry["seconds"] > 0
            assert entry["queue_wait_seconds"] >= 0

    def test_registry_tracks_pooled_refresh(self, tiny_kg):
        registry = MetricsRegistry()
        trainer = self._parallel_trainer(tiny_kg, metrics=registry)
        try:
            trainer.run()
        finally:
            trainer.close()
        assert registry.value(
            "refresh_tasks_total", labels={"mode": "head", "shard": 0}
        ) > 0
        hist = registry.histogram("refresh_task_seconds")
        assert hist.count > 0

    def test_registry_tracks_param_syncs(self, tiny_kg):
        """Every pooled refresh publishes parameters; the sync counters
        must account for the shipped bytes/rows and the dirty fraction."""
        registry = MetricsRegistry()
        trainer = self._parallel_trainer(tiny_kg, metrics=registry)
        try:
            trainer.run()
        finally:
            trainer.close()
        assert registry.value("param_sync_bytes_total") > 0
        assert registry.value("param_sync_rows_total") > 0
        assert registry.value("param_sync_full_tables_total") > 0
        assert 0.0 < registry.value("param_sync_dirty_fraction") <= 1.0

    def test_registry_tracks_overlap_wait(self, tiny_kg):
        sampler = NSCachingSampler(
            cache_size=4,
            candidate_size=4,
            cache_backend="sharded-array",
            cache_options={"n_shards": 2},
            refresh_workers=2,
            refresh_processes=False,
            refresh_overlap=True,
        )
        registry = MetricsRegistry()
        trainer = _trainer(tiny_kg, sampler=sampler, metrics=registry)
        try:
            trainer.run()
        finally:
            trainer.close()
        # Inline overlap runs the tasks at dispatch, so the collect wait
        # is pure bookkeeping — but it must be counted, and the sync
        # counters must flow exactly as in the synchronous pooled mode.
        assert registry.value("refresh_overlap_wait_seconds_total") > 0
        assert registry.value("param_sync_bytes_total") > 0
