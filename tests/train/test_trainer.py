"""Tests for the training loop."""

import numpy as np
import pytest

from repro.core.nscaching import NSCachingSampler
from repro.models import make_model
from repro.models.losses import LogisticLoss, MarginRankingLoss
from repro.sampling import BernoulliSampler, UniformSampler
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer


def _trainer(tiny_kg, model_name="TransE", sampler=None, **config_kwargs):
    model = make_model(model_name, tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
    config = TrainConfig(**{"epochs": 2, "batch_size": 64, **config_kwargs})
    return Trainer(model, tiny_kg, sampler or BernoulliSampler(), config)


class TestConfig:
    def test_defaults_valid(self):
        TrainConfig()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"epochs": -1}, "epochs"),
            ({"batch_size": 0}, "batch_size"),
            ({"learning_rate": 0.0}, "learning_rate"),
            ({"margin": 0.0}, "margin"),
            ({"l2_weight": -1.0}, "l2_weight"),
            ({"loss": "hinge"}, "loss"),
        ],
    )
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TrainConfig(**kwargs)

    def test_with_updates_returns_copy(self):
        config = TrainConfig(epochs=5)
        updated = config.with_updates(epochs=10)
        assert config.epochs == 5 and updated.epochs == 10


class TestLossSelection:
    def test_translational_gets_margin(self, tiny_kg):
        trainer = _trainer(tiny_kg, "TransE")
        assert isinstance(trainer.loss, MarginRankingLoss)

    def test_semantic_gets_logistic(self, tiny_kg):
        trainer = _trainer(tiny_kg, "DistMult")
        assert isinstance(trainer.loss, LogisticLoss)

    def test_explicit_override(self, tiny_kg):
        trainer = _trainer(tiny_kg, "TransE", loss="logistic")
        assert isinstance(trainer.loss, LogisticLoss)


class TestTraining:
    def test_loss_decreases(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=15, learning_rate=0.05)
        history = trainer.run()
        losses = history["loss"].values
        assert losses[-1] < losses[0]

    def test_history_series_populated(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=3)
        history = trainer.run()
        for name in ("loss", "nzl", "grad_norm", "epoch_seconds"):
            assert len(history[name]) == 3

    def test_parameters_change(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=1)
        before = trainer.model.params["entity"].copy()
        trainer.run()
        assert not np.array_equal(before, trainer.model.params["entity"])

    def test_deterministic_given_seed(self, tiny_kg):
        a = _trainer(tiny_kg, epochs=2, seed=9)
        b = _trainer(tiny_kg, epochs=2, seed=9)
        a.run()
        b.run()
        np.testing.assert_array_equal(
            a.model.params["entity"], b.model.params["entity"]
        )

    def test_run_with_explicit_epochs_overrides_config(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=50)
        trainer.run(epochs=2)
        assert trainer.epochs_run == 2

    def test_resume_continues_epoch_numbering(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=2)
        trainer.run()
        trainer.run(epochs=1)
        assert trainer.epochs_run == 3
        assert trainer.history["loss"].epochs[-1] == 2

    def test_zero_epochs_is_noop(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=0)
        trainer.run()
        assert trainer.epochs_run == 0

    def test_request_stop_halts_loop(self, tiny_kg):
        class StopAfterFirst:
            def on_train_begin(self, trainer):
                pass

            def on_epoch_end(self, trainer, epoch, stats):
                trainer.request_stop()

            def on_train_end(self, trainer):
                pass

        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        trainer = Trainer(
            model, tiny_kg, UniformSampler(), TrainConfig(epochs=10),
            callbacks=[StopAfterFirst()],
        )
        trainer.run()
        assert trainer.epochs_run == 1

    def test_nscaching_cache_changes_recorded(self, tiny_kg):
        sampler = NSCachingSampler(cache_size=4, candidate_size=4)
        trainer = _trainer(tiny_kg, sampler=sampler, epochs=2)
        history = trainer.run()
        assert len(history["cache_changes"]) == 2
        assert history["cache_changes"].values[0] > 0

    def test_negative_tracking_records_repeat_ratio(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=2, track_negatives=True)
        history = trainer.run()
        assert len(history["repeat_ratio"]) == 2

    def test_l2_regularised_run(self, tiny_kg):
        trainer = _trainer(tiny_kg, "DistMult", epochs=2, l2_weight=0.01)
        history = trainer.run()
        assert np.isfinite(history.last("loss"))

    def test_train_clock_accumulates(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=2)
        trainer.run()
        assert trainer.train_seconds > 0

    def test_paused_clock_excludes_time(self, tiny_kg):
        import time

        trainer = _trainer(tiny_kg, epochs=1)
        trainer.run()
        before = trainer.train_seconds
        with trainer.paused_clock():
            time.sleep(0.02)
        assert trainer.train_seconds == pytest.approx(before, abs=5e-3)


class TestProfiling:
    def test_profile_off_by_default(self, tiny_kg):
        trainer = _trainer(tiny_kg)
        trainer.run()
        assert trainer.profile_report() == {}
        assert all(t.elapsed == 0.0 for t in trainer.phase_timers.values())

    def test_profile_records_all_phases(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        trainer = Trainer(
            model,
            tiny_kg,
            NSCachingSampler(cache_size=4, candidate_size=4),
            TrainConfig(epochs=2, batch_size=64),
            profile=True,
        )
        trainer.run()
        report = trainer.profile_report()
        assert set(report) == set(Trainer.PROFILE_PHASES)
        # parallel_refresh only runs with refresh_workers >= 2 (covered in
        # tests/parallel); every sequential-path phase must have ticked.
        assert report["parallel_refresh"] == 0.0
        assert all(
            seconds > 0
            for name, seconds in report.items()
            if name != "parallel_refresh"
        )

    def test_profile_reports_score_candidates_phase(self, tiny_kg):
        """The cache-refresh scoring surfaces as its own non-zero phase."""
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        trainer = Trainer(
            model,
            tiny_kg,
            NSCachingSampler(cache_size=4, candidate_size=4),
            TrainConfig(epochs=2, batch_size=64),
            profile=True,
        )
        trainer.run()
        report = trainer.profile_report()
        assert "score_candidates" in report
        assert report["score_candidates"] > 0

    def test_profile_phases_sum_to_wall_time(self, tiny_kg):
        """Phases are disjoint and cover the hot loop: their sum matches the
        training wall clock (loop bookkeeping is the only slack)."""
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        trainer = Trainer(
            model,
            tiny_kg,
            NSCachingSampler(cache_size=8, candidate_size=8),
            TrainConfig(epochs=3, batch_size=64),
            profile=True,
        )
        trainer.run()
        report = trainer.profile_report()
        total = sum(report.values())
        wall = trainer.train_seconds
        assert total <= wall
        assert total >= 0.5 * wall, (report, wall)

    def test_profile_score_candidates_excluded_from_cache_update(self, tiny_kg):
        """The report carves the nested scoring time out of cache_update."""
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        trainer = Trainer(
            model,
            tiny_kg,
            NSCachingSampler(cache_size=4, candidate_size=4),
            TrainConfig(epochs=2, batch_size=64),
            profile=True,
        )
        trainer.run()
        report = trainer.profile_report()
        raw_update = trainer.phase_timers["cache_update"].elapsed
        assert report["cache_update"] == pytest.approx(
            raw_update - report["score_candidates"]
        )

    def test_reused_sampler_detached_from_previous_profiler(self, tiny_kg):
        """A sampler handed to a second, non-profiled trainer must stop
        feeding the first trainer's score_candidates stopwatch."""
        sampler = NSCachingSampler(cache_size=4, candidate_size=4)
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        profiled = Trainer(
            model, tiny_kg, sampler, TrainConfig(epochs=1, batch_size=64),
            profile=True,
        )
        profiled.run()
        recorded = profiled.profile_report()["score_candidates"]
        model2 = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=1)
        Trainer(
            model2, tiny_kg, sampler, TrainConfig(epochs=1, batch_size=64)
        ).run()
        assert sampler.score_timer is None
        assert profiled.profile_report()["score_candidates"] == recorded

    def test_profile_score_candidates_zero_for_stateless_sampler(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        trainer = Trainer(
            model, tiny_kg, BernoulliSampler(),
            TrainConfig(epochs=1, batch_size=64), profile=True,
        )
        trainer.run()
        assert trainer.profile_report()["score_candidates"] == 0.0

    def test_profile_does_not_change_results(self, tiny_kg):
        plain = _trainer(tiny_kg, epochs=3).run()
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        profiled = Trainer(
            model, tiny_kg, BernoulliSampler(),
            TrainConfig(epochs=3, batch_size=64), profile=True,
        ).run()
        np.testing.assert_allclose(plain["loss"].values, profiled["loss"].values)


class TestPrecomputedRows:
    def test_trainer_precomputes_for_nscaching(self, tiny_kg):
        trainer = _trainer(
            tiny_kg, sampler=NSCachingSampler(cache_size=4, candidate_size=4)
        )
        assert trainer._train_rows is not None
        assert trainer._train_rows.head.shape == (len(tiny_kg.train),)

    def test_stateless_samplers_skip_precompute(self, tiny_kg):
        assert _trainer(tiny_kg, sampler=BernoulliSampler())._train_rows is None


class TestGradientFlow:
    def test_grad_norm_positive_during_training(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=1)
        history = trainer.run()
        assert history.last("grad_norm") > 0

    def test_nzl_between_zero_and_one(self, tiny_kg):
        trainer = _trainer(tiny_kg, epochs=2)
        history = trainer.run()
        assert 0.0 <= history.last("nzl") <= 1.0
