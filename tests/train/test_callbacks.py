"""Tests for evaluation callbacks, early stopping, cache snapshots."""

import numpy as np
import pytest

from repro.core.nscaching import NSCachingSampler
from repro.models import make_model
from repro.sampling import BernoulliSampler
from repro.train.callbacks import CacheSnapshotCallback, EarlyStopping, EvalCallback
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer


def _trainer(tiny_kg, callbacks, epochs=4, sampler=None):
    model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
    return Trainer(
        model,
        tiny_kg,
        sampler or BernoulliSampler(),
        TrainConfig(epochs=epochs, batch_size=64),
        callbacks=callbacks,
    )


class TestEvalCallback:
    def test_records_on_schedule(self, tiny_kg):
        callback = EvalCallback(split="valid", every=2)
        _trainer(tiny_kg, [callback], epochs=4).run()
        assert callback.epochs == [1, 3]
        assert len(callback.series["mrr"]) == 2

    def test_final_epoch_always_evaluated(self, tiny_kg):
        callback = EvalCallback(split="valid", every=100)
        _trainer(tiny_kg, [callback], epochs=3).run()
        assert callback.epochs == [2]

    def test_times_track_train_clock(self, tiny_kg):
        callback = EvalCallback(split="valid", every=1)
        _trainer(tiny_kg, [callback], epochs=2).run()
        assert len(callback.times) == 2
        assert callback.times[0] <= callback.times[1]

    def test_stats_injected_for_other_callbacks(self, tiny_kg):
        seen = {}

        class Spy:
            def on_train_begin(self, trainer):
                pass

            def on_epoch_end(self, trainer, epoch, stats):
                seen.update(stats)

            def on_train_end(self, trainer):
                pass

        _trainer(
            tiny_kg, [EvalCallback(split="valid", every=1), Spy()], epochs=1
        ).run()
        assert "valid_mrr" in seen

    def test_latest_returns_nan_before_any_eval(self):
        assert np.isnan(EvalCallback().latest("mrr"))

    def test_invalid_every_rejected(self):
        with pytest.raises(ValueError, match="every"):
            EvalCallback(every=0)


class TestEarlyStopping:
    def test_stops_on_stale_metric(self, tiny_kg):
        stopper = EarlyStopping(metric="loss", patience=1, minimize=True)

        class ConstantLoss:
            def on_train_begin(self, trainer):
                pass

            def on_epoch_end(self, trainer, epoch, stats):
                stats["loss"] = 1.0  # never improves

            def on_train_end(self, trainer):
                pass

        trainer = _trainer(tiny_kg, [ConstantLoss(), stopper], epochs=10)
        trainer.run()
        assert trainer.epochs_run < 10

    def test_missing_metric_ignored(self, tiny_kg):
        stopper = EarlyStopping(metric="valid_mrr", patience=1)
        trainer = _trainer(tiny_kg, [stopper], epochs=3)
        trainer.run()
        assert trainer.epochs_run == 3  # metric never present -> no stop

    def test_invalid_patience(self):
        with pytest.raises(ValueError, match="patience"):
            EarlyStopping(patience=0)


class TestCacheSnapshotCallback:
    def test_snapshots_recorded_for_touched_key(self, tiny_kg):
        h, r, _ = tiny_kg.train[0].tolist()
        callback = CacheSnapshotCallback((h, r), head_side=False)
        sampler = NSCachingSampler(cache_size=4, candidate_size=4)
        _trainer(tiny_kg, [callback], epochs=2, sampler=sampler).run()
        assert len(callback.snapshots) == 2
        for snapshot in callback.snapshots.values():
            assert snapshot.shape == (4,)

    def test_untouched_key_produces_no_snapshots(self, tiny_kg):
        callback = CacheSnapshotCallback((10**6, 10**6))
        sampler = NSCachingSampler(cache_size=4, candidate_size=4)
        _trainer(tiny_kg, [callback], epochs=1, sampler=sampler).run()
        assert callback.snapshots == {}


class TestEvalCallbackFinalEval:
    class _ConstantLoss:
        """Feeds a never-improving stat so EarlyStopping fires."""

        def on_train_begin(self, trainer):
            pass

        def on_epoch_end(self, trainer, epoch, stats):
            stats["loss"] = 1.0

        def on_train_end(self, trainer):
            pass

    def test_early_stopped_run_records_final_eval(self, tiny_kg):
        # Regression: `every`-gated evaluation plus an early stop used to
        # leave latest() stale — the `epoch + 1 == config.epochs` trigger
        # never fires when the run stops before the configured end.
        callback = EvalCallback(split="valid", every=100)
        stopper = EarlyStopping(metric="loss", patience=1, minimize=True)
        trainer = _trainer(
            tiny_kg, [self._ConstantLoss(), stopper, callback], epochs=50
        )
        trainer.run()
        assert trainer.epochs_run < 50  # the stop actually happened
        assert callback.epochs == [trainer.epochs_run - 1]
        assert not np.isnan(callback.latest("mrr"))

    def test_no_duplicate_final_eval(self, tiny_kg):
        callback = EvalCallback(split="valid", every=1)
        _trainer(tiny_kg, [callback], epochs=3).run()
        assert callback.epochs == [0, 1, 2]

    def test_scheduled_final_epoch_not_repeated(self, tiny_kg):
        callback = EvalCallback(split="valid", every=100)
        _trainer(tiny_kg, [callback], epochs=3).run()
        assert callback.epochs == [2]


class TestSampledEvalCallback:
    def test_sampled_series_recorded(self, tiny_kg):
        callback = EvalCallback(
            split="valid", every=1, num_negatives=10, hits_at=(10,)
        )
        _trainer(tiny_kg, [callback], epochs=2).run()
        assert callback.epochs == [0, 1]
        assert len(callback.series["mrr"]) == 2
        assert np.isfinite(callback.latest("mrr"))

    def test_sampled_eval_reports_counters(self, tiny_kg):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        callback = EvalCallback(split="valid", every=1, num_negatives=10)
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
        )
        Trainer(
            model,
            tiny_kg,
            BernoulliSampler(),
            TrainConfig(epochs=1, batch_size=64),
            callbacks=[callback],
            metrics=registry,
        ).run()
        assert registry.value(
            "eval_queries_total", {"protocol": "sampled"}
        ) == 2 * len(tiny_kg.valid)
