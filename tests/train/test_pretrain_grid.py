"""Tests for the pretrain protocol and grid search."""

import numpy as np
import pytest

from repro.models import make_model
from repro.train.config import TrainConfig
from repro.train.grid import expand_grid, grid_search
from repro.train.pretrain import pretrain, warm_start


class TestPretrain:
    def test_returns_state_and_mutates_model(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        before = model.params["entity"].copy()
        state = pretrain(model, tiny_kg, epochs=2, config=TrainConfig(batch_size=64))
        assert not np.array_equal(before, model.params["entity"])
        np.testing.assert_array_equal(state["entity"], model.params["entity"])

    def test_warm_start_restores_state(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        state = pretrain(model, tiny_kg, epochs=1, config=TrainConfig(batch_size=64))
        fresh = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=5)
        warm_start(fresh, state)
        np.testing.assert_array_equal(fresh.params["entity"], state["entity"])

    def test_negative_epochs_rejected(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        with pytest.raises(ValueError, match="epochs"):
            pretrain(model, tiny_kg, epochs=-1)


class TestExpandGrid:
    def test_empty_grid_single_point(self):
        assert expand_grid({}) == [{}]

    def test_cartesian_product(self):
        points = expand_grid({"a": [1, 2], "b": ["x"]})
        assert len(points) == 2
        assert {"a": 1, "b": "x"} in points

    def test_deterministic_order(self):
        assert expand_grid({"b": [1], "a": [2]}) == expand_grid({"a": [2], "b": [1]})


class TestGridSearch:
    def test_finds_best_learning_rate(self, tiny_kg):
        def factory(dim, seed):
            return make_model(
                "TransE", tiny_kg.n_entities, tiny_kg.n_relations, dim or 8, seed
            )

        best, results = grid_search(
            factory,
            tiny_kg,
            {"learning_rate": [0.001, 0.05]},
            base_config=TrainConfig(epochs=3, batch_size=64),
        )
        assert len(results) == 2
        assert best.metric == max(r.metric for r in results)
        assert "learning_rate" in best.point

    def test_dim_routed_to_factory(self, tiny_kg):
        seen_dims = []

        def factory(dim, seed):
            seen_dims.append(dim)
            return make_model(
                "TransE", tiny_kg.n_entities, tiny_kg.n_relations, dim or 8, seed
            )

        grid_search(
            factory,
            tiny_kg,
            {"dim": [4, 8]},
            base_config=TrainConfig(epochs=1, batch_size=64),
        )
        assert seen_dims == [4, 8]
