"""Trainer tracing: bit-identity contract, span coverage, worker merge."""

import numpy as np

from repro.core.nscaching import NSCachingSampler
from repro.models import make_model
from repro.obs.trace import Tracer, chrome_trace, read_trace, validate_chrome_trace
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer


def _model(tiny_kg):
    return make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)


def _trainer(tiny_kg, *, sampler=None, epochs=2, **kwargs):
    return Trainer(
        _model(tiny_kg),
        tiny_kg,
        sampler or NSCachingSampler(cache_size=4, candidate_size=4),
        TrainConfig(epochs=epochs, batch_size=64, seed=0),
        **kwargs,
    )


def _parallel_sampler():
    return NSCachingSampler(
        cache_size=4,
        candidate_size=4,
        cache_backend="sharded-array",
        cache_options={"n_shards": 2},
        refresh_workers=2,
        refresh_processes=False,  # inline: deterministic, fork-free
    )


def _params(trainer):
    return {k: v.copy() for k, v in trainer.model.params.items()}


class TestBitIdentity:
    """Tracing disabled executes the exact seed path; enabled changes
    nothing about the numbers — only observes them."""

    def test_traced_run_bit_identical_to_untraced(self, tiny_kg, tmp_path):
        baseline = _trainer(tiny_kg)
        baseline.run()
        expected = _params(baseline)
        baseline.close()

        traced = _trainer(tiny_kg, trace_out=str(tmp_path / "trace.jsonl"))
        traced.run()
        for key, value in _params(traced).items():
            np.testing.assert_array_equal(value, expected[key])
        traced.close()

    def test_traced_parallel_run_bit_identical(self, tiny_kg, tmp_path):
        baseline = _trainer(tiny_kg, sampler=_parallel_sampler())
        try:
            baseline.run()
            expected = _params(baseline)
        finally:
            baseline.close()

        traced = _trainer(
            tiny_kg,
            sampler=_parallel_sampler(),
            trace_out=str(tmp_path / "trace.jsonl"),
        )
        try:
            traced.run()
            for key, value in _params(traced).items():
                np.testing.assert_array_equal(value, expected[key])
        finally:
            traced.close()

    def test_no_tracer_by_default(self, tiny_kg):
        trainer = _trainer(tiny_kg)
        assert trainer.tracer is None
        assert trainer.sampler.tracer is None
        trainer.close()


class TestSequentialTrace:
    def test_phase_and_epoch_spans_recorded(self, tiny_kg, tmp_path):
        path = tmp_path / "trace.jsonl"
        trainer = _trainer(tiny_kg, trace_out=str(path))
        trainer.run()
        trainer.close()
        records = read_trace(path)
        names = {(r["cat"], r["name"]) for r in records}
        for expected in (
            ("train", "epoch"),
            ("train", "sample"),
            ("train", "score"),
            ("train", "gradients"),
            ("train", "optimizer"),
            ("train", "cache_update"),
            ("refresh", "refresh_side"),
        ):
            assert expected in names, f"missing span {expected}"
        epochs = [r for r in records if r["name"] == "epoch"]
        assert [r["args"]["epoch"] for r in epochs] == [0, 1]

    def test_trainer_attaches_tracer_to_sampler(self, tiny_kg):
        tracer = Tracer()
        trainer = _trainer(tiny_kg, tracer=tracer)
        assert trainer.sampler.tracer is tracer
        trainer.close()

    def test_tracing_composes_with_profile_timers(self, tiny_kg):
        trainer = _trainer(tiny_kg, tracer=Tracer(), profile=True)
        trainer.run()
        # Spans and timers measure the same phases independently.
        assert trainer.profile_report()["gradients"] > 0
        assert any(
            r["name"] == "gradients" for r in trainer.tracer.records()
        )
        trainer.close()

    def test_close_flushes_trace_of_aborted_run(self, tiny_kg, tmp_path):
        path = tmp_path / "trace.jsonl"
        trainer = _trainer(tiny_kg, trace_out=str(path))
        trainer.run(1)  # "abort" after one epoch: close() must still write
        trainer.close()
        assert any(r["name"] == "epoch" for r in read_trace(path))

    def test_spans_validate_as_chrome_trace(self, tiny_kg, tmp_path):
        path = tmp_path / "trace.jsonl"
        trainer = _trainer(tiny_kg, trace_out=str(path))
        trainer.run()
        trainer.close()
        validate_chrome_trace(chrome_trace(read_trace(path)))


class TestParallelTrace:
    """The cross-process merge, on the deterministic inline pool."""

    def test_worker_spans_ship_back_through_results(self, tiny_kg, tmp_path):
        path = tmp_path / "trace.jsonl"
        trainer = _trainer(
            tiny_kg, sampler=_parallel_sampler(), trace_out=str(path)
        )
        try:
            trainer.run()
        finally:
            trainer.close()
        records = read_trace(path)
        shard_tasks = [
            r for r in records
            if r["cat"] == "refresh_worker" and r["name"] == "shard_task"
        ]
        assert shard_tasks, "no worker shard_task spans shipped back"
        for record in shard_tasks:
            assert record["args"]["mode"] in ("head", "tail")
            assert record["args"]["rows"] >= 0
            assert "shard" in record["args"]
        # The pool's dispatch span marks where the trainer handed off.
        assert any(
            r["cat"] == "refresh" and r["name"] in ("dispatch", "refresh")
            for r in records
        )

    def test_queue_wait_spans_recorded_when_stamped(self, tiny_kg, tmp_path):
        path = tmp_path / "trace.jsonl"
        trainer = _trainer(
            tiny_kg, sampler=_parallel_sampler(), trace_out=str(path)
        )
        try:
            trainer.run()
        finally:
            trainer.close()
        waits = [r for r in read_trace(path) if r["name"] == "queue_wait"]
        assert waits, "no queue_wait spans"
        assert all(r["cat"] == "refresh_worker" for r in waits)
        assert all(r["dur"] >= 0 for r in waits)

    def test_merged_timeline_exports_to_chrome(self, tiny_kg, tmp_path):
        path = tmp_path / "trace.jsonl"
        trainer = _trainer(
            tiny_kg, sampler=_parallel_sampler(), trace_out=str(path)
        )
        try:
            trainer.run()
        finally:
            trainer.close()
        exported = chrome_trace(read_trace(path))
        validate_chrome_trace(exported)
        cats = {event["cat"] for event in exported["traceEvents"]}
        assert {"train", "refresh_worker"} <= cats


class TestSamplerTracing:
    def test_sequential_refresh_span_args(self, tiny_kg):
        tracer = Tracer()
        trainer = _trainer(tiny_kg, tracer=tracer)
        trainer.run(1)
        sides = [
            r for r in tracer.records() if r["name"] == "refresh_side"
        ]
        assert sides
        modes = {r["args"]["mode"] for r in sides}
        assert modes == {"head", "tail"}
        trainer.close()

    def test_pool_inherits_trace_flag(self, tiny_kg):
        tracer = Tracer()
        trainer = _trainer(
            tiny_kg, sampler=_parallel_sampler(), tracer=tracer
        )
        try:
            trainer.run(1)
            assert trainer.sampler._pool is not None
            assert trainer.sampler._pool.trace is True
        finally:
            trainer.close()

    def test_untraced_pool_ships_no_spans(self, tiny_kg):
        trainer = _trainer(tiny_kg, sampler=_parallel_sampler())
        try:
            trainer.run(1)
            assert trainer.sampler._pool.trace is False
        finally:
            trainer.close()


class TestForkedWorkerTrace:
    """One real multi-process run: spans arrive from foreign pids."""

    def test_forked_workers_ship_spans_with_own_pid(self, tiny_kg, tmp_path):
        import os

        path = tmp_path / "trace.jsonl"
        sampler = NSCachingSampler(
            cache_size=4,
            candidate_size=4,
            cache_backend="sharded-array",
            cache_options={"n_shards": 2},
            refresh_workers=2,
            refresh_processes=True,
        )
        trainer = _trainer(tiny_kg, sampler=sampler, trace_out=str(path))
        try:
            trainer.run(1)
        finally:
            trainer.close()
        records = read_trace(path)
        worker_pids = {
            r["pid"] for r in records if r["cat"] == "refresh_worker"
        }
        assert worker_pids, "no worker spans shipped back"
        assert os.getpid() not in worker_pids
