"""Tests for logger naming and null-handler behaviour."""

import logging

from repro.utils.logging import get_logger


class TestGetLogger:
    def test_root_logger_name(self):
        assert get_logger().name == "repro"

    def test_child_logger_is_namespaced(self):
        assert get_logger("train").name == "repro.train"

    def test_already_namespaced_passthrough(self):
        assert get_logger("repro.eval").name == "repro.eval"

    def test_null_handler_attached_once(self):
        get_logger()
        get_logger("data")
        root = logging.getLogger("repro")
        null_handlers = [
            h for h in root.handlers if isinstance(h, logging.NullHandler)
        ]
        assert len(null_handlers) == 1
