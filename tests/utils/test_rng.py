"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, 10)
        b = ensure_rng(7).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="rng must be"):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_children_are_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_deterministic_from_seed(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(42, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(42, 3)]
        assert first == second
