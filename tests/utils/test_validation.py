"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_positive,
    check_probability,
    check_shape,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="my message"):
            require(False, "my message")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)

    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_non_strict_accepts_zero(self):
        check_positive("x", 0, strict=False)

    def test_non_strict_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_positive("x", -1, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError, match=r"p must be in \[0, 1\]"):
            check_probability("p", value)


class TestCheckShape:
    def test_exact_match(self):
        check_shape("a", np.zeros((2, 3)), (2, 3))

    def test_wildcard(self):
        check_shape("a", np.zeros((5, 3)), (None, 3))

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="must have 2 dimensions"):
            check_shape("a", np.zeros(4), (2, 2))

    def test_wrong_axis_size(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("a", np.zeros((2, 4)), (2, 3))
