"""Tests for the resumable stopwatch."""

import time

import pytest

from repro.utils.timer import Timer


class TestTimer:
    def test_initially_stopped_at_zero(self):
        timer = Timer()
        assert not timer.running
        assert timer.elapsed == 0.0

    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert not timer.running

    def test_resume_adds_time(self):
        timer = Timer()
        with timer:
            time.sleep(0.005)
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed > first

    def test_elapsed_while_running(self):
        timer = Timer().start()
        time.sleep(0.005)
        mid = timer.elapsed
        assert timer.running
        assert mid > 0
        timer.stop()
        assert timer.elapsed >= mid

    def test_double_start_rejected(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError, match="already running"):
            timer.start()
        timer.stop()

    def test_stop_when_stopped_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running

    def test_repr_mentions_state(self):
        assert "stopped" in repr(Timer())


class TestSamplingReaders:
    """The obs layer reads shared timers mid-run; reads must be safe."""

    def test_mid_run_reads_are_monotonic(self):
        timer = Timer().start()
        reads = []
        for _ in range(5):
            time.sleep(0.001)
            reads.append(timer.elapsed)
        timer.stop()
        reads.append(timer.elapsed)
        assert reads == sorted(reads)

    def test_reads_do_not_perturb_accumulation(self):
        timer = Timer().start()
        for _ in range(100):
            timer.elapsed  # sampling reader
        time.sleep(0.002)
        total = timer.stop()
        assert total == timer.elapsed
        # A fresh run after heavy reading still only adds its own time.
        with timer:
            time.sleep(0.002)
        assert timer.elapsed - total < 1.0

    def test_intervals_counts_completed_cycles(self):
        timer = Timer()
        assert timer.intervals == 0
        for expected in (1, 2, 3):
            with timer:
                pass
            assert timer.intervals == expected

    def test_running_interval_not_counted_until_stop(self):
        timer = Timer().start()
        assert timer.intervals == 0
        timer.stop()
        assert timer.intervals == 1

    def test_reset_zeroes_intervals(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.intervals == 0
