"""Tests for the resumable stopwatch."""

import time

import pytest

from repro.utils.timer import Timer


class TestTimer:
    def test_initially_stopped_at_zero(self):
        timer = Timer()
        assert not timer.running
        assert timer.elapsed == 0.0

    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert not timer.running

    def test_resume_adds_time(self):
        timer = Timer()
        with timer:
            time.sleep(0.005)
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed > first

    def test_elapsed_while_running(self):
        timer = Timer().start()
        time.sleep(0.005)
        mid = timer.elapsed
        assert timer.running
        assert mid > 0
        timer.stop()
        assert timer.elapsed >= mid

    def test_double_start_rejected(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError, match="already running"):
            timer.start()
        timer.stop()

    def test_stop_when_stopped_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running

    def test_repr_mentions_state(self):
        assert "stopped" in repr(Timer())
