"""Training-level parity for the sharded backend and the parallel refresh.

Three contracts, end to end through the Trainer:

* ``sharded-array`` with **any** ``n_shards`` and ``refresh_workers=1``
  is bit-identical to the plain ``array`` backend (and the bucketed inner
  scheme to ``bucketed-array``) — losses, CE series and final parameters;
* with ``refresh_workers >= 2`` training is deterministic: repeated
  seeded runs, different worker counts, and the in-process fallback all
  land on identical parameters and CE series;
* the parallel run reports its phases and shard stats through the
  trainer's profiling surface.

The CI ``parallel-parity`` job runs this module with
``REPRO_REFRESH_WORKERS=2`` (the default here) so the multiprocess path
is exercised with real forked workers; a second matrix entry adds
``REPRO_REFRESH_OVERLAP=1``, which re-runs every parallel arm through
the overlapped dispatch/collect pipeline with dirty-row parameter sync
— by the overlap contract (pre-step snapshots + per-shard streams) all
determinism assertions must hold unchanged.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core.nscaching import NSCachingSampler
from repro.models import make_model
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

#: Worker count for the multiprocess arms (CI pins this to 2).
WORKERS = int(os.environ.get("REPRO_REFRESH_WORKERS", "2"))

#: With REPRO_REFRESH_OVERLAP=1 every parallel arm (workers >= 2) runs
#: the overlapped dispatch/collect pipeline — same assertions, because
#: overlap is bit-identical to the synchronous pooled path.
OVERLAP = os.environ.get("REPRO_REFRESH_OVERLAP", "0") == "1"

FORK_AVAILABLE = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="fork start method unavailable"
)


def _train(tiny_kg, backend, *, options=None, workers=1, processes=True,
           epochs=3, profile=False, overlap=None, dirty_sync=True,
           period=1):
    if overlap is None:
        overlap = OVERLAP and workers >= 2
    model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 16, rng=0)
    sampler = NSCachingSampler(
        cache_size=8,
        candidate_size=8,
        cache_backend=backend,
        cache_options=options,
        refresh_workers=workers,
        refresh_processes=processes,
        refresh_overlap=overlap,
        dirty_sync=dirty_sync,
        refresh_period=period,
    )
    trainer = Trainer(
        model,
        tiny_kg,
        sampler,
        TrainConfig(epochs=epochs, batch_size=64, learning_rate=0.05, seed=0),
        profile=profile,
    )
    history = trainer.run()
    return model, history, trainer


def _outcome(model, history):
    return (
        model.params["entity"].copy(),
        history["loss"].values.copy(),
        history["cache_changes"].values.copy(),
    )


def _assert_same_outcome(a, b):
    for got, expected in zip(a, b):
        np.testing.assert_array_equal(got, expected)


class TestSequentialParity:
    """refresh_workers=1: the sharded backend is the array backend."""

    @pytest.mark.parametrize("n_shards", (1, 4, 7))
    def test_sharded_matches_array_backend(self, tiny_kg, n_shards):
        model_a, history_a, trainer_a = _train(tiny_kg, "array")
        model_s, history_s, trainer_s = _train(
            tiny_kg, "sharded-array", options={"n_shards": n_shards}
        )
        try:
            _assert_same_outcome(
                _outcome(model_a, history_a), _outcome(model_s, history_s)
            )
        finally:
            trainer_a.close()
            trainer_s.close()

    def test_sharded_bucketed_matches_bucketed_array(self, tiny_kg):
        model_b, history_b, trainer_b = _train(
            tiny_kg, "bucketed-array", options={"n_buckets": 16}
        )
        model_s, history_s, trainer_s = _train(
            tiny_kg,
            "sharded-array",
            options={"n_shards": 3, "inner": "bucketed-array", "n_buckets": 16},
        )
        try:
            _assert_same_outcome(
                _outcome(model_b, history_b), _outcome(model_s, history_s)
            )
        finally:
            trainer_b.close()
            trainer_s.close()


class TestParallelDeterminism:
    """refresh_workers>=2: per-shard streams make runs reproducible."""

    @needs_fork
    def test_repeated_runs_identical(self, tiny_kg):
        runs = []
        for _ in range(2):
            model, history, trainer = _train(
                tiny_kg, "sharded-array",
                options={"n_shards": 4}, workers=WORKERS,
            )
            runs.append(_outcome(model, history))
            trainer.close()
        _assert_same_outcome(*runs)

    @needs_fork
    def test_worker_count_does_not_change_results(self, tiny_kg):
        outcomes = []
        for workers in (WORKERS, WORKERS + 1):
            model, history, trainer = _train(
                tiny_kg, "sharded-array",
                options={"n_shards": 4}, workers=workers,
            )
            outcomes.append(_outcome(model, history))
            trainer.close()
        _assert_same_outcome(*outcomes)

    @needs_fork
    def test_processes_match_inline_fallback(self, tiny_kg):
        outcomes = []
        for processes in (True, False):
            model, history, trainer = _train(
                tiny_kg, "sharded-array",
                options={"n_shards": 4}, workers=WORKERS, processes=processes,
            )
            outcomes.append(_outcome(model, history))
            trainer.close()
        _assert_same_outcome(*outcomes)

    def test_inline_parallel_differs_from_sequential_but_trains(self, tiny_kg):
        """Parallel mode is a deterministic *sibling* trajectory, not a
        bit-identical twin of sequential training — but it still trains
        (finite losses, CE within the per-epoch bound)."""
        _, history_seq, trainer_seq = _train(
            tiny_kg, "sharded-array", options={"n_shards": 4}
        )
        _, history_par, trainer_par = _train(
            tiny_kg, "sharded-array",
            options={"n_shards": 4}, workers=2, processes=False,
        )
        try:
            assert np.isfinite(np.asarray(history_par["loss"].values)).all()
            assert (np.asarray(history_par["cache_changes"].values) > 0).all()
            assert not np.array_equal(
                history_seq["cache_changes"].values,
                history_par["cache_changes"].values,
            )
        finally:
            trainer_seq.close()
            trainer_par.close()


class TestParallelSurface:
    @needs_fork
    def test_profile_and_cache_report_cover_parallel_refresh(self, tiny_kg):
        model, history, trainer = _train(
            tiny_kg, "sharded-array",
            options={"n_shards": 4}, workers=WORKERS, profile=True,
        )
        try:
            report = trainer.profile_report()
            assert report["parallel_refresh"] > 0
            # The sequential refresh's scoring phase never ran.
            assert report["score_candidates"] == 0.0
            stats = trainer.cache_report()
            assert stats["head_shards"] == 4
            assert stats["refresh_workers"] == WORKERS
            assert stats["refresh_mode"] == "processes"
            live = [int(n) for n in stats["head_shard_live_rows"].split("/")]
            assert len(live) == 4
            assert sum(live) > 0
        finally:
            trainer.close()

    def test_workers_require_sharded_backend(self):
        with pytest.raises(ValueError, match="sharded-array"):
            NSCachingSampler(refresh_workers=2, cache_backend="array")
        with pytest.raises(ValueError, match="refresh_workers"):
            NSCachingSampler(refresh_workers=0)

    def test_cache_report_safe_after_close(self, tiny_kg):
        """Post-close introspection degrades gracefully: the shard stats
        disappear from the report instead of crashing."""
        for options in (
            {"n_shards": 3},
            {"n_shards": 3, "inner": "bucketed-array", "n_buckets": 16},
        ):
            model, history, trainer = _train(
                tiny_kg, "sharded-array", options=options, epochs=1
            )
            assert "head_shard_live_rows" in trainer.cache_report()
            trainer.close()
            stats = trainer.cache_report()
            assert stats["backend"] == "sharded-array"
            assert "head_shard_live_rows" not in stats

    def test_workers_reject_unfused_refresh(self):
        """The pool always runs the fused kernel: fused=False must be
        rejected up front rather than silently ignored."""
        with pytest.raises(ValueError, match="fused"):
            NSCachingSampler(
                refresh_workers=2, cache_backend="sharded-array", fused=False
            )

    @needs_fork
    def test_lazy_epochs_with_parallel_refresh(self, tiny_kg):
        """Lazy skipping composes with the pool (counter stays aligned)."""
        runs = []
        for _ in range(2):
            model = make_model(
                "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
            )
            sampler = NSCachingSampler(
                cache_size=4, candidate_size=4, lazy_epochs=1,
                cache_backend="sharded-array",
                cache_options={"n_shards": 3}, refresh_workers=WORKERS,
            )
            trainer = Trainer(
                model, tiny_kg, sampler,
                TrainConfig(epochs=4, batch_size=64, learning_rate=0.05, seed=0),
            )
            history = trainer.run()
            runs.append(
                (model.params["entity"].copy(),
                 history["cache_changes"].values.copy())
            )
            trainer.close()
        _assert_same_outcome(*runs)
        # Odd epochs are lazily skipped: their CE must be zero.
        assert runs[0][1][1] == 0 and runs[0][1][3] == 0


class TestOverlapParity:
    """Overlap + dirty sync: bit-identical to the synchronous pooled path.

    Algorithm 3 only needs pre-step parameters, so dispatching a batch's
    refresh before the gradient/optimizer phases (against the pool's
    double-buffered snapshot) and collecting at the next batch must land
    on exactly the parameters/losses/CE of PR 5's synchronous path —
    whatever the worker count, sync mode, or execution backend.
    """

    def test_overlap_matches_synchronous_inline(self, tiny_kg):
        model_s, history_s, trainer_s = _train(
            tiny_kg, "sharded-array", options={"n_shards": 4},
            workers=2, processes=False, overlap=False,
        )
        model_o, history_o, trainer_o = _train(
            tiny_kg, "sharded-array", options={"n_shards": 4},
            workers=2, processes=False, overlap=True,
        )
        try:
            _assert_same_outcome(
                _outcome(model_s, history_s), _outcome(model_o, history_o)
            )
        finally:
            trainer_s.close()
            trainer_o.close()

    @needs_fork
    def test_overlap_matches_synchronous_processes(self, tiny_kg):
        model_s, history_s, trainer_s = _train(
            tiny_kg, "sharded-array", options={"n_shards": 4},
            workers=WORKERS, overlap=False,
        )
        model_o, history_o, trainer_o = _train(
            tiny_kg, "sharded-array", options={"n_shards": 4},
            workers=WORKERS, overlap=True,
        )
        try:
            _assert_same_outcome(
                _outcome(model_s, history_s), _outcome(model_o, history_o)
            )
        finally:
            trainer_s.close()
            trainer_o.close()

    @needs_fork
    def test_overlap_independent_of_worker_count(self, tiny_kg):
        outcomes = []
        for workers in (WORKERS, WORKERS + 1):
            model, history, trainer = _train(
                tiny_kg, "sharded-array", options={"n_shards": 4},
                workers=workers, overlap=True,
            )
            outcomes.append(_outcome(model, history))
            trainer.close()
        _assert_same_outcome(*outcomes)

    def test_dirty_sync_matches_full_sync(self, tiny_kg):
        outcomes = []
        for dirty_sync in (True, False):
            model, history, trainer = _train(
                tiny_kg, "sharded-array", options={"n_shards": 4},
                workers=2, processes=False, overlap=True,
                dirty_sync=dirty_sync,
            )
            outcomes.append(_outcome(model, history))
            trainer.close()
        _assert_same_outcome(*outcomes)

    def test_overlap_profile_reports_its_phase(self, tiny_kg):
        model, history, trainer = _train(
            tiny_kg, "sharded-array", options={"n_shards": 4},
            workers=2, processes=False, overlap=True, profile=True,
        )
        try:
            report = trainer.profile_report()
            assert "refresh_overlap" in report
            assert report["parallel_refresh"] > 0
            stats = trainer.cache_report()
            assert stats["refresh_overlap"] is True
            assert stats["dirty_sync"] is True
            assert stats["last_sync_bytes"] > 0
            # On this tiny KG one batch touches most of the entity table,
            # so the tracker rightly collapses to a full copy — the stat
            # just has to be a sane fraction (bench X9 shows the delta
            # win at scale, where batches touch a sliver of the table).
            assert 0.0 < stats["last_sync_dirty_fraction"] <= 1.0
        finally:
            trainer.close()


class TestRefreshPeriod:
    """refresh_period=k: the within-epoch lazy schedule (arXiv 2010.14227)."""

    def test_period_runs_are_reproducible(self, tiny_kg):
        runs = []
        for _ in range(2):
            model, history, trainer = _train(
                tiny_kg, "sharded-array", options={"n_shards": 4},
                workers=2, processes=False, period=3,
            )
            runs.append(_outcome(model, history))
            trainer.close()
        _assert_same_outcome(*runs)

    def test_period_skips_refreshes(self, tiny_kg):
        """k=3 refreshes a third of the batches: CE must drop, and the
        trajectory must differ from the every-batch schedule."""
        _, history_every, trainer_every = _train(
            tiny_kg, "sharded-array", options={"n_shards": 4},
            workers=2, processes=False,
        )
        _, history_lazy, trainer_lazy = _train(
            tiny_kg, "sharded-array", options={"n_shards": 4},
            workers=2, processes=False, period=3,
        )
        try:
            every = np.asarray(history_every["cache_changes"].values)
            lazy = np.asarray(history_lazy["cache_changes"].values)
            assert lazy.sum() < every.sum()
            assert (lazy > 0).all()  # still refreshing, just less often
        finally:
            trainer_every.close()
            trainer_lazy.close()

    def test_period_composes_with_overlap(self, tiny_kg):
        runs = []
        for _ in range(2):
            model, history, trainer = _train(
                tiny_kg, "sharded-array", options={"n_shards": 4},
                workers=2, processes=False, period=2, overlap=True,
            )
            runs.append(_outcome(model, history))
            trainer.close()
        _assert_same_outcome(*runs)

    def test_sequential_period_reproducible_and_lazier(self, tiny_kg):
        """The knob is not pool-only: the sequential refresh honours it."""
        runs = []
        for _ in range(2):
            model, history, trainer = _train(tiny_kg, "array", period=2)
            runs.append(_outcome(model, history))
            trainer.close()
        _assert_same_outcome(*runs)
        _, history_every, trainer_every = _train(tiny_kg, "array")
        try:
            assert np.asarray(runs[0][2]).sum() < np.asarray(
                history_every["cache_changes"].values
            ).sum()
        finally:
            trainer_every.close()

    def test_rejects_bad_period_and_overlap_without_workers(self):
        with pytest.raises(ValueError, match="refresh_period"):
            NSCachingSampler(refresh_period=0)
        with pytest.raises(ValueError, match="refresh_workers >= 2"):
            NSCachingSampler(refresh_overlap=True)
