"""Dict ↔ array cache-backend and fused ↔ reference refresh parity.

The array engine and the fused score-and-select refresh are performance
refactors, not behaviour changes: under the same seed both cache backends
— and both refresh orchestrations — must produce identical cache entries,
CE counts, memory accounting and training trajectories.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.array_cache import ArrayNegativeCache
from repro.core.bucketed import BucketedArrayCache
from repro.core.cache import NegativeCache
from repro.core.hashed import HashedNegativeCache
from repro.core.nscaching import NSCachingSampler
from repro.data.keyindex import BucketIndex, KeyIndex
from repro.data.synthetic import SyntheticKGConfig, generate_kg
from repro.models import MODEL_REGISTRY, make_model
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

N_KEYS = 6
N_ENTITIES = 30
ENTRY = 4


def _pair() -> tuple[NegativeCache, ArrayNegativeCache]:
    index = KeyIndex(
        np.arange(N_KEYS, dtype=np.int64),
        np.arange(N_KEYS, dtype=np.int64),
        N_KEYS,
    )
    dict_cache = NegativeCache(ENTRY, N_ENTITIES, np.random.default_rng(99))
    array_cache = ArrayNegativeCache(ENTRY, N_ENTITIES, np.random.default_rng(99))
    dict_cache.attach_index(index)
    array_cache.attach_index(index)
    return dict_cache, array_cache


# One operation = (op, rows): gather the rows, or scatter fresh ids there.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["gather", "scatter"]),
        st.lists(st.integers(0, N_KEYS - 1), min_size=1, max_size=8),
    ),
    min_size=1,
    max_size=12,
)


class TestOperationSequenceParity:
    @given(ops=_ops, data_seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_same_entries_ce_and_memory(self, ops, data_seed):
        dict_cache, array_cache = _pair()
        data_rng = np.random.default_rng(data_seed)
        for op, row_list in ops:
            rows = np.array(row_list, dtype=np.int64)
            if op == "gather":
                np.testing.assert_array_equal(
                    dict_cache.gather(rows), array_cache.gather(rows)
                )
            else:
                ids = data_rng.integers(0, N_ENTITIES, size=(len(rows), ENTRY))
                changed_dict = dict_cache.scatter(rows, ids)
                changed_array = array_cache.scatter(rows, ids)
                assert changed_dict == changed_array
        assert dict_cache.changed_elements == array_cache.changed_elements
        assert dict_cache.initialised_entries == array_cache.initialised_entries
        assert dict_cache.n_entries == array_cache.n_entries
        assert dict_cache.memory_bytes() == array_cache.memory_bytes()
        for row in range(N_KEYS):
            key = (row, row)
            if key in dict_cache:
                assert key in array_cache
                np.testing.assert_array_equal(
                    dict_cache.get(key), array_cache.get(key)
                )


N_BUCKETS = 3  # < N_KEYS so the parity ops exercise collisions


def _hashed_pair() -> tuple[HashedNegativeCache, BucketedArrayCache]:
    index = KeyIndex(
        np.arange(N_KEYS, dtype=np.int64),
        np.arange(N_KEYS, dtype=np.int64),
        N_KEYS,
    )
    dict_hashed = HashedNegativeCache(
        ENTRY, N_ENTITIES, np.random.default_rng(99), n_buckets=N_BUCKETS
    )
    bucketed = BucketedArrayCache(
        ENTRY, N_ENTITIES, np.random.default_rng(99), n_buckets=N_BUCKETS
    )
    dict_hashed.attach_index(index)
    bucketed.attach_index(index)
    return dict_hashed, bucketed


class TestHashedBucketedParity:
    """The memory-bounded pair: dict buckets ↔ bucketed array rows.

    Same hash, same bucket shares, same CE accounting across colliding
    writes, same RNG stream — bit-identical under a fixed seed.
    """

    @given(ops=_ops, data_seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_same_entries_ce_and_memory(self, ops, data_seed):
        dict_hashed, bucketed = _hashed_pair()
        data_rng = np.random.default_rng(data_seed)
        for op, row_list in ops:
            rows = np.array(row_list, dtype=np.int64)
            if op == "gather":
                np.testing.assert_array_equal(
                    dict_hashed.gather(rows), bucketed.gather(rows)
                )
            else:
                ids = data_rng.integers(0, N_ENTITIES, size=(len(rows), ENTRY))
                assert dict_hashed.scatter(rows, ids) == bucketed.scatter(rows, ids)
        assert dict_hashed.changed_elements == bucketed.changed_elements
        assert dict_hashed.initialised_entries == bucketed.initialised_entries
        assert dict_hashed.n_entries == bucketed.n_entries
        assert dict_hashed.memory_bytes() == bucketed.memory_bytes()
        assert set(dict_hashed.keys()) == set(bucketed.keys())
        for row in range(N_KEYS):
            key = (row, row)
            assert (key in dict_hashed) == (key in bucketed)
            if key in dict_hashed:
                np.testing.assert_array_equal(
                    dict_hashed.get(key), bucketed.get(key)
                )

    def test_two_keys_one_bucket_share_and_ce(self):
        """The collision case, deterministically: two distinct keys landing
        in one bucket read each other's writes, and a batch writing both
        counts CE like two sequential puts."""
        dict_hashed, bucketed = _hashed_pair()
        index = bucketed._index
        buckets = BucketIndex(index, N_BUCKETS)
        rows_by_bucket = {}
        for row in range(N_KEYS):
            rows_by_bucket.setdefault(
                int(buckets.bucket_rows(np.array([row]))[0]), []
            ).append(row)
        colliding = next(rows for rows in rows_by_bucket.values() if len(rows) >= 2)
        first, second = colliding[:2]

        ids = np.arange(ENTRY)[None, :]
        for cache in (dict_hashed, bucketed):
            cache.scatter(np.array([first]), ids)
        key_second = index.key_of(second)
        np.testing.assert_array_equal(dict_hashed.get(key_second), ids[0])
        np.testing.assert_array_equal(bucketed.get(key_second), ids[0])

        # One batch writing both colliding keys: CE of the second write is
        # counted against the first write, and the last write wins.
        batch = np.stack([ids[0] + 100, ids[0] + 200])
        changed = [
            cache.scatter(np.array([first, second]), batch)
            for cache in (dict_hashed, bucketed)
        ]
        assert changed[0] == changed[1] == 2 * ENTRY
        np.testing.assert_array_equal(
            dict_hashed.get(index.key_of(first)), bucketed.get(index.key_of(first))
        )
        np.testing.assert_array_equal(bucketed.get(index.key_of(first)), batch[1])

    @pytest.mark.parametrize("n_buckets", (1, 7))
    def test_same_seed_same_training_trajectory(self, tiny_kg, n_buckets):
        """End to end: both memory-bounded backends land on identical
        parameters, losses and CE series under one seed."""
        results = []
        for backend in ("hashed", "bucketed-array"):
            model = make_model(
                "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 16, rng=0
            )
            sampler = NSCachingSampler(
                cache_size=8,
                candidate_size=8,
                cache_backend=backend,
                cache_options={"n_buckets": n_buckets},
            )
            trainer = Trainer(
                model,
                tiny_kg,
                sampler,
                TrainConfig(epochs=4, batch_size=64, learning_rate=0.05, seed=0),
            )
            history = trainer.run()
            results.append((history, model))
        (hashed_history, hashed_model), (bucketed_history, bucketed_model) = results
        np.testing.assert_array_equal(
            hashed_history["loss"].values, bucketed_history["loss"].values
        )
        np.testing.assert_array_equal(
            hashed_history["cache_changes"].values,
            bucketed_history["cache_changes"].values,
        )
        np.testing.assert_array_equal(
            hashed_model.params["entity"], bucketed_model.params["entity"]
        )


class TestTrainingParity:
    def _history(self, tiny_kg, backend):
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 16, rng=0
        )
        sampler = NSCachingSampler(
            cache_size=8, candidate_size=8, cache_backend=backend
        )
        trainer = Trainer(
            model,
            tiny_kg,
            sampler,
            TrainConfig(epochs=4, batch_size=64, learning_rate=0.05, seed=0),
        )
        history = trainer.run()
        return history, trainer

    def test_same_seed_same_loss_trajectory(self, tiny_kg):
        dict_history, dict_trainer = self._history(tiny_kg, "dict")
        array_history, array_trainer = self._history(tiny_kg, "array")
        np.testing.assert_allclose(
            dict_history["loss"].values, array_history["loss"].values, atol=1e-8
        )
        np.testing.assert_allclose(
            dict_history["cache_changes"].values,
            array_history["cache_changes"].values,
            atol=0,
        )
        np.testing.assert_allclose(
            dict_trainer.model.params["entity"],
            array_trainer.model.params["entity"],
            atol=1e-12,
        )


def _parity_kg():
    """A small dedicated KG, built once (hypothesis forbids fn fixtures)."""
    config = SyntheticKGConfig(
        name="parity",
        n_entities=40,
        n_relations=4,
        latent_dim=6,
        triples_per_relation=40,
        diagonal_fraction=0.3,
        range_fraction=0.5,
    )
    return generate_kg(config, rng=5).dataset


_PARITY_KG = _parity_kg()


def _cache_state(sampler):
    """All initialised rows of both caches plus the CE counters."""
    assert sampler.head_cache is not None and sampler.tail_cache is not None
    n_head = sampler.key_index.head.n_keys
    n_tail = sampler.key_index.tail.n_keys
    return (
        sampler.head_cache.gather(np.arange(n_head, dtype=np.int64)),
        sampler.tail_cache.gather(np.arange(n_tail, dtype=np.int64)),
        sampler.head_cache.changed_elements,
        sampler.tail_cache.changed_elements,
    )


class TestFusedRefreshParity:
    """The fused refresh is bit-identical to the unfused reference path."""

    @given(
        model_name=st.sampled_from(sorted(MODEL_REGISTRY)),
        seed=st.integers(0, 2**16),
        n1=st.integers(1, 5),
        n2=st.integers(1, 5),
        update_strategy=st.sampled_from(["importance", "top", "uniform"]),
        sample_strategy=st.sampled_from(["uniform", "importance"]),
        batch_starts=st.lists(st.integers(0, 100), min_size=1, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_fused_update_bit_identical(
        self, model_name, seed, n1, n2, update_strategy, sample_strategy, batch_starts
    ):
        dataset = _PARITY_KG
        samplers = []
        for fused in (True, False):
            model = make_model(
                model_name, dataset.n_entities, dataset.n_relations, 6, rng=seed
            )
            sampler = NSCachingSampler(
                cache_size=n1,
                candidate_size=n2,
                update_strategy=update_strategy,
                sample_strategy=sample_strategy,
                fused=fused,
            )
            sampler.bind(model, dataset, rng=seed)
            samplers.append(sampler)
        fused_sampler, reference_sampler = samplers

        for start in batch_starts:
            batch = dataset.train[start : start + 32]
            fused_negatives = fused_sampler.sample(batch)
            reference_negatives = reference_sampler.sample(batch)
            np.testing.assert_array_equal(fused_negatives, reference_negatives)
            fused_sampler.update(batch, fused_negatives)
            reference_sampler.update(batch, reference_negatives)

        for got, expected in zip(
            _cache_state(fused_sampler), _cache_state(reference_sampler)
        ):
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("model_name", ("DistMult", "TransD"))
    def test_training_trajectory_bit_identical(self, tiny_kg, model_name):
        """End-to-end: fused and reference runs land on identical parameters."""
        params = []
        for fused in (True, False):
            model = make_model(
                model_name, tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0
            )
            sampler = NSCachingSampler(cache_size=6, candidate_size=6, fused=fused)
            Trainer(
                model,
                tiny_kg,
                sampler,
                TrainConfig(epochs=3, batch_size=64, learning_rate=0.05, seed=0),
            ).run()
            params.append(model.state_dict())
        for name in params[0]:
            np.testing.assert_array_equal(params[0][name], params[1][name])
