"""Dict ↔ array cache-backend parity.

The array engine is a performance refactor, not a behaviour change: under
the same seed both backends must produce identical cache entries, CE
counts, memory accounting — and identical training trajectories.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.array_cache import ArrayNegativeCache
from repro.core.cache import NegativeCache
from repro.core.nscaching import NSCachingSampler
from repro.data.keyindex import KeyIndex
from repro.models import make_model
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

N_KEYS = 6
N_ENTITIES = 30
ENTRY = 4


def _pair() -> tuple[NegativeCache, ArrayNegativeCache]:
    index = KeyIndex(
        np.arange(N_KEYS, dtype=np.int64),
        np.arange(N_KEYS, dtype=np.int64),
        N_KEYS,
    )
    dict_cache = NegativeCache(ENTRY, N_ENTITIES, np.random.default_rng(99))
    array_cache = ArrayNegativeCache(ENTRY, N_ENTITIES, np.random.default_rng(99))
    dict_cache.attach_index(index)
    array_cache.attach_index(index)
    return dict_cache, array_cache


# One operation = (op, rows): gather the rows, or scatter fresh ids there.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["gather", "scatter"]),
        st.lists(st.integers(0, N_KEYS - 1), min_size=1, max_size=8),
    ),
    min_size=1,
    max_size=12,
)


class TestOperationSequenceParity:
    @given(ops=_ops, data_seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_same_entries_ce_and_memory(self, ops, data_seed):
        dict_cache, array_cache = _pair()
        data_rng = np.random.default_rng(data_seed)
        for op, row_list in ops:
            rows = np.array(row_list, dtype=np.int64)
            if op == "gather":
                np.testing.assert_array_equal(
                    dict_cache.gather(rows), array_cache.gather(rows)
                )
            else:
                ids = data_rng.integers(0, N_ENTITIES, size=(len(rows), ENTRY))
                changed_dict = dict_cache.scatter(rows, ids)
                changed_array = array_cache.scatter(rows, ids)
                assert changed_dict == changed_array
        assert dict_cache.changed_elements == array_cache.changed_elements
        assert dict_cache.initialised_entries == array_cache.initialised_entries
        assert dict_cache.n_entries == array_cache.n_entries
        assert dict_cache.memory_bytes() == array_cache.memory_bytes()
        for row in range(N_KEYS):
            key = (row, row)
            if key in dict_cache:
                assert key in array_cache
                np.testing.assert_array_equal(
                    dict_cache.get(key), array_cache.get(key)
                )


class TestTrainingParity:
    def _history(self, tiny_kg, backend):
        model = make_model(
            "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 16, rng=0
        )
        sampler = NSCachingSampler(
            cache_size=8, candidate_size=8, cache_backend=backend
        )
        trainer = Trainer(
            model,
            tiny_kg,
            sampler,
            TrainConfig(epochs=4, batch_size=64, learning_rate=0.05, seed=0),
        )
        history = trainer.run()
        return history, trainer

    def test_same_seed_same_loss_trajectory(self, tiny_kg):
        dict_history, dict_trainer = self._history(tiny_kg, "dict")
        array_history, array_trainer = self._history(tiny_kg, "array")
        np.testing.assert_allclose(
            dict_history["loss"].values, array_history["loss"].values, atol=1e-8
        )
        np.testing.assert_allclose(
            dict_history["cache_changes"].values,
            array_history["cache_changes"].values,
            atol=0,
        )
        np.testing.assert_allclose(
            dict_trainer.model.params["entity"],
            array_trainer.model.params["entity"],
            atol=1e-12,
        )
