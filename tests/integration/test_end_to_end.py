"""Integration tests: the paper's qualitative claims at miniature scale.

These are the reproduction's heart: each test checks a *shape* from the
paper (DESIGN.md §5) end to end — training, sampling, caching, evaluation —
on datasets small enough for CI.
"""

import numpy as np
import pytest

from repro import (
    BernoulliSampler,
    NSCachingSampler,
    TrainConfig,
    Trainer,
    evaluate,
    make_model,
    make_sampler,
)
from repro.eval.ccdf import negative_distances, skewness
from repro.models import PAPER_MODELS


def _train(tiny_kg, model_name, sampler, epochs=12, seed=0, **cfg):
    model = make_model(
        model_name, tiny_kg.n_entities, tiny_kg.n_relations, 16, rng=seed
    )
    defaults = {"learning_rate": 0.05, "batch_size": 64, "seed": seed}
    defaults.update(cfg)
    trainer = Trainer(model, tiny_kg, sampler, TrainConfig(epochs=epochs, **defaults))
    history = trainer.run()
    return model, history


class TestLearning:
    def test_training_beats_untrained_baseline(self, tiny_kg):
        untrained = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 16, rng=0)
        base = evaluate(untrained, tiny_kg, "test")
        model, _ = _train(tiny_kg, "TransE", BernoulliSampler(), epochs=20)
        trained = evaluate(model, tiny_kg, "test")
        assert trained["mrr"] > base["mrr"] * 1.5

    @pytest.mark.parametrize("model_name", PAPER_MODELS)
    def test_all_paper_models_train_with_nscaching(self, tiny_kg, model_name):
        sampler = NSCachingSampler(cache_size=5, candidate_size=5)
        model, history = _train(tiny_kg, model_name, sampler, epochs=3)
        assert np.isfinite(history.last("loss"))
        metrics = evaluate(model, tiny_kg, "test")
        assert 0.0 <= metrics["mrr"] <= 1.0

    @pytest.mark.parametrize(
        "sampler_name", ["Uniform", "Bernoulli", "KBGAN", "IGAN", "NSCaching", "SelfAdv"]
    )
    def test_all_samplers_complete_training(self, tiny_kg, sampler_name):
        sampler = make_sampler(sampler_name)
        model, history = _train(tiny_kg, "TransE", sampler, epochs=2)
        assert np.isfinite(history.last("loss"))


class TestPaperShapes:
    def test_nscaching_sustains_higher_nzl_than_bernoulli(self, tiny_kg):
        """Figure 7(b): Bernoulli's non-zero-loss ratio collapses, NSCaching's doesn't."""
        _, bern_history = _train(tiny_kg, "TransE", BernoulliSampler(), epochs=15)
        _, cache_history = _train(
            tiny_kg, "TransE", NSCachingSampler(cache_size=8, candidate_size=8),
            epochs=15,
        )
        assert cache_history.last("nzl") > bern_history.last("nzl")

    def test_nscaching_sustains_larger_gradients(self, tiny_kg):
        """Figure 10: NSCaching's late-training gradient norms exceed Bernoulli's."""
        _, bern_history = _train(tiny_kg, "TransE", BernoulliSampler(), epochs=15)
        _, cache_history = _train(
            tiny_kg, "TransE", NSCachingSampler(cache_size=8, candidate_size=8),
            epochs=15,
        )
        assert cache_history.last("grad_norm") > bern_history.last("grad_norm")

    def test_negative_score_distribution_right_tail_is_thin(self, tiny_kg):
        """Figure 1 / §III-A: few negatives have large scores after training."""
        model, _ = _train(tiny_kg, "TransE", BernoulliSampler(), epochs=15)
        distances = negative_distances(model, tiny_kg, tiny_kg.test[0], side="tail")
        # CCDF at distance 0 (negatives scoring above the positive) is small.
        share_above_positive = np.mean(distances >= 0)
        assert share_above_positive < 0.5
        # And the distribution is not left-skewed (long right tail or none).
        assert skewness(distances) > -1.0

    def test_cached_negatives_score_above_uniform_average(self, tiny_kg):
        """The cache holds hard negatives (the §III-B design goal)."""
        sampler = NSCachingSampler(cache_size=8, candidate_size=8)
        model, _ = _train(tiny_kg, "TransE", sampler, epochs=10)
        batch = tiny_kg.train[:32]
        cached_negatives = sampler.sample(batch)
        cached_scores = model.score_triples(cached_negatives).mean()
        rng = np.random.default_rng(0)
        uniform_negatives = batch.copy()
        uniform_negatives[:, 2] = rng.integers(0, tiny_kg.n_entities, len(batch))
        uniform_scores = model.score_triples(uniform_negatives).mean()
        assert cached_scores > uniform_scores

    def test_repeat_ratio_ordering(self, tiny_kg):
        """Figure 7(a): Bernoulli explores most; top sampling repeats most."""
        def run(sampler):
            model = make_model(
                "TransE", tiny_kg.n_entities, tiny_kg.n_relations, 16, rng=0
            )
            trainer = Trainer(
                model, tiny_kg, sampler,
                TrainConfig(epochs=8, batch_size=64, learning_rate=0.05,
                            track_negatives=True),
            )
            return trainer.run().last("repeat_ratio")

        rr_bernoulli = run(BernoulliSampler())
        rr_uniform_cache = run(NSCachingSampler(cache_size=8, candidate_size=8))
        rr_top_cache = run(
            NSCachingSampler(cache_size=8, candidate_size=8, sample_strategy="top")
        )
        assert rr_bernoulli < rr_uniform_cache < rr_top_cache

    def test_inverse_leakage_boosts_metrics(self, tiny_kg, leaky_kg):
        """WN18-vs-WN18RR: inverse duplicates make link prediction easier."""
        def mrr_on(dataset):
            model, _ = _train(dataset, "TransE", BernoulliSampler(), epochs=20)
            return evaluate(model, dataset, "test")["mrr"]

        assert mrr_on(leaky_kg) > mrr_on(tiny_kg)


class TestReproducibility:
    def test_full_pipeline_deterministic(self, tiny_kg):
        def run():
            sampler = NSCachingSampler(cache_size=5, candidate_size=5)
            model, _ = _train(tiny_kg, "TransE", sampler, epochs=3, seed=11)
            return evaluate(model, tiny_kg, "test")["mrr"]

        assert run() == run()
