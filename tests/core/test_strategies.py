"""Tests for the sample-from-cache and update-cache strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import (
    SampleStrategy,
    SurvivorSelection,
    UpdateStrategy,
    duplicate_mask,
    sample_from_cache,
    select_cache_survivors,
    selection_changed_elements,
)


class TestDuplicateMask:
    def test_no_duplicates(self):
        mask = duplicate_mask(np.array([[1, 2, 3]]))
        assert not mask.any()

    def test_marks_later_occurrences(self):
        mask = duplicate_mask(np.array([[5, 1, 5, 5]]))
        assert mask.sum() == 2
        assert not mask[0, 0] or not mask[0, 2]  # exactly one 5 kept

    def test_rows_independent(self):
        mask = duplicate_mask(np.array([[1, 1], [1, 2]]))
        assert mask[0].sum() == 1
        assert mask[1].sum() == 0

    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=12)
    )
    @settings(max_examples=40, deadline=None)
    def test_property_kept_entries_are_unique_set(self, row):
        ids = np.asarray([row])
        mask = duplicate_mask(ids)
        kept = ids[0][~mask[0]]
        assert sorted(kept.tolist()) == sorted(set(row))


class TestSampleFromCache:
    def test_uniform_returns_cache_members(self, rng):
        ids = np.array([[10, 11, 12], [20, 21, 22]])
        out = sample_from_cache(ids, None, SampleStrategy.UNIFORM, rng)
        assert out[0] in ids[0] and out[1] in ids[1]

    def test_top_returns_argmax(self, rng):
        ids = np.array([[10, 11, 12]])
        scores = np.array([[0.1, 5.0, 0.2]])
        assert sample_from_cache(ids, scores, SampleStrategy.TOP, rng)[0] == 11

    def test_importance_prefers_high_scores(self, rng):
        ids = np.tile(np.array([[10, 11]]), (2000, 1))
        scores = np.tile(np.array([[0.0, 5.0]]), (2000, 1))
        out = sample_from_cache(ids, scores, SampleStrategy.IMPORTANCE, rng)
        assert np.mean(out == 11) > 0.9

    def test_uniform_covers_all_members(self, rng):
        ids = np.tile(np.array([[1, 2, 3]]), (600, 1))
        out = sample_from_cache(ids, None, SampleStrategy.UNIFORM, rng)
        assert set(out.tolist()) == {1, 2, 3}

    def test_scores_required_for_top(self, rng):
        with pytest.raises(ValueError, match="requires scores"):
            sample_from_cache(np.array([[1, 2]]), None, SampleStrategy.TOP, rng)

    def test_string_strategy_accepted(self, rng):
        ids = np.array([[1, 2, 3]])
        out = sample_from_cache(ids, None, "uniform", rng)
        assert out[0] in (1, 2, 3)


class TestSelectCacheSurvivors:
    def test_top_keeps_largest(self, rng):
        ids = np.array([[1, 2, 3, 4]])
        scores = np.array([[0.0, 3.0, 1.0, 2.0]])
        kept, kept_scores = select_cache_survivors(
            ids, scores, 2, UpdateStrategy.TOP, rng
        )
        assert set(kept[0].tolist()) == {2, 4}
        assert set(kept_scores[0].tolist()) == {3.0, 2.0}

    def test_importance_without_replacement(self, rng):
        ids = np.tile(np.arange(6), (200, 1))
        scores = np.zeros((200, 6))
        kept, _ = select_cache_survivors(
            ids, scores, 4, UpdateStrategy.IMPORTANCE, rng
        )
        for row in kept:
            assert len(set(row.tolist())) == 4  # no repeats within a row

    def test_importance_prefers_high_scores(self, rng):
        ids = np.tile(np.array([[0, 1, 2, 3]]), (2000, 1))
        scores = np.tile(np.array([[10.0, 10.0, -10.0, -10.0]]), (2000, 1))
        kept, _ = select_cache_survivors(
            ids, scores, 2, UpdateStrategy.IMPORTANCE, rng
        )
        frequency_high = np.mean([(0 in row or 1 in row) for row in kept.tolist()])
        assert frequency_high > 0.99

    def test_duplicates_suppressed(self, rng):
        ids = np.array([[7, 7, 7, 1, 2]])
        scores = np.array([[9.0, 9.0, 9.0, 1.0, 0.0]])
        kept, _ = select_cache_survivors(ids, scores, 2, UpdateStrategy.TOP, rng)
        assert sorted(kept[0].tolist()) == [1, 7]

    def test_uniform_ignores_scores(self, rng):
        ids = np.tile(np.arange(10), (500, 1))
        scores = np.tile(np.linspace(-5, 5, 10), (500, 1))
        kept, _ = select_cache_survivors(
            ids, scores, 3, UpdateStrategy.UNIFORM, rng
        )
        counts = np.bincount(kept.ravel(), minlength=10)
        # Every candidate selected sometimes; low-score ones too.
        assert counts.min() > 0

    @pytest.mark.parametrize("strategy", list(UpdateStrategy))
    def test_return_scores_false_skips_gather_only(self, strategy):
        """Dropping the score gather changes neither the ids nor the RNG
        stream — it only returns ``None`` in the scores slot."""
        data_rng = np.random.default_rng(3)
        ids = data_rng.integers(0, 40, size=(5, 8))
        scores = data_rng.normal(size=(5, 8))
        with_scores = select_cache_survivors(
            ids, scores, 3, strategy, np.random.default_rng(7)
        )
        without = select_cache_survivors(
            ids, scores, 3, strategy, np.random.default_rng(7), return_scores=False
        )
        np.testing.assert_array_equal(with_scores[0], without[0])
        assert with_scores[1].shape == (5, 3)
        assert without[1] is None

    def test_keep_more_than_available_rejected(self, rng):
        with pytest.raises(ValueError, match="cannot keep"):
            select_cache_survivors(
                np.array([[1, 2]]), np.zeros((1, 2)), 3, UpdateStrategy.TOP, rng
            )

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="disagree"):
            select_cache_survivors(
                np.array([[1, 2]]), np.zeros((1, 3)), 1, UpdateStrategy.TOP, rng
            )

    @given(
        n_keep=st.integers(1, 4),
        seed=st.integers(0, 100),
        strategy=st.sampled_from(list(UpdateStrategy)),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_survivors_come_from_candidates(self, n_keep, seed, strategy):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 30, size=(3, 6))
        scores = rng.normal(size=(3, 6))
        kept, kept_scores = select_cache_survivors(ids, scores, n_keep, strategy, rng)
        assert kept.shape == (3, n_keep)
        for i in range(3):
            candidates = set(ids[i].tolist())
            assert set(kept[i].tolist()) <= candidates


class TestSurvivorSelection:
    def test_selection_carries_columns_and_ids_agree(self, rng):
        ids = np.array([[10, 20, 30, 40]])
        scores = np.array([[0.0, 3.0, 2.0, 1.0]])
        selection = select_cache_survivors(
            ids, scores, 2, UpdateStrategy.TOP, rng, return_selection=True
        )
        assert isinstance(selection, SurvivorSelection)
        np.testing.assert_array_equal(
            selection.ids, ids[0][selection.columns]
        )
        assert not selection.filled.any()

    def test_filled_flags_duplicate_fill_rows(self, rng):
        # Only two distinct values but three survivors needed: a -inf
        # (duplicate) column must be selected.
        ids = np.array([[7, 7, 7, 9]])
        scores = np.zeros((1, 4))
        selection = select_cache_survivors(
            ids, scores, 3, UpdateStrategy.TOP, rng, return_selection=True
        )
        assert selection.filled[0]

    def test_rng_consumption_matches_plain_call(self):
        ids = np.arange(12).reshape(2, 6)
        scores = np.linspace(0, 1, 12).reshape(2, 6)
        plain_rng = np.random.default_rng(3)
        selection_rng = np.random.default_rng(3)
        plain_ids, _ = select_cache_survivors(
            ids, scores, 3, UpdateStrategy.IMPORTANCE, plain_rng
        )
        selection = select_cache_survivors(
            ids, scores, 3, UpdateStrategy.IMPORTANCE, selection_rng,
            return_selection=True,
        )
        np.testing.assert_array_equal(plain_ids, selection.ids)
        assert plain_rng.integers(0, 2**31) == selection_rng.integers(0, 2**31)


class TestSelectionChangedElements:
    """The sort-free CE derivation vs the sorted multiset reference."""

    @staticmethod
    def _reference_ce(union, selection, n_keep):
        from repro.core.array_cache import multiset_overlap_rows

        prev = union[:, :n_keep]
        return int(
            (n_keep - multiset_overlap_rows(selection.ids, prev)).sum()
        )

    @given(
        seed=st.integers(0, 2**16),
        n_keep=st.integers(1, 5),
        n_fresh=st.integers(1, 5),
        batch=st.integers(1, 8),
        n_values=st.integers(1, 40),
        strategy=st.sampled_from(list(UpdateStrategy)),
    )
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_sorted_reference_or_declines(
        self, seed, n_keep, n_fresh, batch, n_values, strategy
    ):
        """Whenever the column derivation answers, it answers exactly what
        the sorted multiset walk computes — including small id pools where
        duplicate-filled rows force it to decline (return None)."""
        rng = np.random.default_rng(seed)
        union = rng.integers(0, n_values, size=(batch, n_keep + n_fresh))
        scores = rng.normal(size=union.shape)
        unique_rows = np.arange(batch, dtype=np.int64)
        selection = select_cache_survivors(
            union, scores, n_keep, strategy, rng, return_selection=True
        )
        derived = selection_changed_elements(selection, unique_rows, n_keep)
        if derived is None:
            assert selection.filled.any()  # the only decline reason here
        else:
            assert derived == self._reference_ce(union, selection, n_keep)

    def test_declines_on_repeated_storage_rows(self, rng):
        union = np.array([[1, 2, 3, 4], [5, 6, 7, 8]])
        scores = np.zeros((2, 4))
        selection = select_cache_survivors(
            union, scores, 2, UpdateStrategy.TOP, rng, return_selection=True
        )
        repeated = np.array([3, 3], dtype=np.int64)
        assert selection_changed_elements(selection, repeated, 2) is None
        assert selection_changed_elements(selection, np.array([3, 4]), 2) == (
            self._reference_ce(union, selection, 2)
        )

    def test_all_survivors_from_cache_means_zero_ce(self, rng):
        union = np.array([[1, 2, 9, 9]])  # fresh side all duplicates-free
        scores = np.array([[5.0, 4.0, 0.0, 0.0]])
        selection = select_cache_survivors(
            union, scores, 2, UpdateStrategy.TOP, rng, return_selection=True
        )
        assert selection_changed_elements(selection, np.array([0]), 2) == 0

    def test_all_survivors_fresh_means_full_ce(self, rng):
        union = np.array([[1, 2, 8, 9]])
        scores = np.array([[0.0, 0.0, 5.0, 4.0]])
        selection = select_cache_survivors(
            union, scores, 2, UpdateStrategy.TOP, rng, return_selection=True
        )
        assert selection_changed_elements(selection, np.array([0]), 2) == 2
