"""Tests for RR / CE instrumentation and epoch series."""

import numpy as np
import pytest

from repro.core.stats import EpochSeries, NegativeTracker


class TestNegativeTracker:
    def test_no_repeats_gives_zero(self):
        tracker = NegativeTracker()
        tracker.record(np.array([(0, 0, 1), (0, 0, 2), (1, 0, 2)]))
        assert tracker.repeat_ratio() == 0.0

    def test_all_repeats(self):
        tracker = NegativeTracker()
        tracker.record(np.array([(0, 0, 1)] * 10))
        assert tracker.repeat_ratio() == pytest.approx(0.9)

    def test_window_slides(self):
        tracker = NegativeTracker(window_epochs=2)
        tracker.record(np.array([(0, 0, 1)]))
        tracker.end_epoch()
        tracker.record(np.array([(0, 0, 1)]))
        tracker.end_epoch()
        assert tracker.repeat_ratio() == pytest.approx(0.5)
        # Two more epochs with fresh triples push the repeats out.
        tracker.record(np.array([(5, 0, 6)]))
        tracker.end_epoch()
        tracker.record(np.array([(7, 0, 8)]))
        tracker.end_epoch()
        assert tracker.repeat_ratio() == 0.0

    def test_counts_open_epoch(self):
        tracker = NegativeTracker()
        tracker.record(np.array([(0, 0, 1)]))
        assert tracker.total_recorded() == 1

    def test_empty_ratio_zero(self):
        assert NegativeTracker().repeat_ratio() == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window_epochs"):
            NegativeTracker(window_epochs=0)


class TestEpochSeries:
    def test_append_and_arrays(self):
        series = EpochSeries("mrr")
        series.append(0, 0.1)
        series.append(5, 0.2)
        epochs, values = series.as_arrays()
        np.testing.assert_array_equal(epochs, [0, 5])
        np.testing.assert_allclose(values, [0.1, 0.2])

    def test_last(self):
        series = EpochSeries("x")
        assert np.isnan(series.last())
        series.append(0, 3.0)
        assert series.last() == 3.0

    def test_len(self):
        series = EpochSeries("x")
        assert len(series) == 0
        series.append(0, 1.0)
        assert len(series) == 1
