"""Tests for the memory-bounded bucketed array cache."""

import numpy as np
import pytest

from repro.core.bucketed import BucketedArrayCache
from repro.core.store import CacheStore, backend_options, make_cache_backend
from repro.data.keyindex import KeyIndex


def _index(n_keys: int = 8, n_second: int = 100) -> KeyIndex:
    return KeyIndex(
        np.arange(n_keys, dtype=np.int64), np.arange(n_keys, dtype=np.int64), n_second
    )


def _cache(size=5, n_entities=50, seed=0, n_keys=8, n_second=100, n_buckets=4,
           **kwargs):
    cache = BucketedArrayCache(
        size, n_entities, np.random.default_rng(seed), n_buckets=n_buckets, **kwargs
    )
    cache.attach_index(_index(n_keys, n_second))
    return cache


class TestConstruction:
    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError, match="n_buckets"):
            BucketedArrayCache(4, 100, n_buckets=0)

    def test_gather_before_attach_rejected(self):
        cache = BucketedArrayCache(5, 20, n_buckets=4)
        with pytest.raises(RuntimeError, match="attach_index"):
            cache.gather(np.array([0]))

    def test_satisfies_protocol(self):
        assert isinstance(_cache(), CacheStore)

    def test_registry_builds_backend_with_options(self):
        cache = make_cache_backend("bucketed-array", 4, 20, 0, n_buckets=3)
        assert cache.size == 4 and cache.n_buckets == 3
        assert backend_options("bucketed-array") == {"n_buckets"}

    def test_registry_rejects_option_for_plain_backends(self):
        with pytest.raises(ValueError, match="does not accept option"):
            make_cache_backend("array", 4, 20, 0, n_buckets=3)


class TestMemoryBound:
    def test_allocation_is_bucket_count_not_key_count(self):
        """The §VI bound: storage rows == n_buckets regardless of keys."""
        small = _cache(size=4, n_keys=6, n_buckets=16)
        large = _cache(size=4, n_keys=96, n_second=200, n_buckets=16)
        assert small.allocated_bytes() == large.allocated_bytes()
        # int64 ids [16, 4] + live bitmap [16].
        assert small.allocated_bytes() == 16 * 4 * 8 + 16

    def test_memory_bound_formula(self):
        cache = _cache(size=10, n_buckets=8)
        assert cache.memory_bound_bytes() == 8 * 10 * 8
        with_scores = _cache(size=10, n_buckets=8, store_scores=True)
        assert with_scores.memory_bound_bytes() == 2 * 8 * 10 * 8

    def test_entries_bounded_by_buckets(self):
        cache = _cache(n_keys=50, n_second=64, n_buckets=5)
        cache.gather(np.arange(50, dtype=np.int64))
        assert cache.n_entries <= 5


class TestCollisions:
    def test_colliding_rows_share_entry(self):
        cache = _cache(n_buckets=1)
        out = cache.gather(np.array([0, 5]))
        np.testing.assert_array_equal(out[0], out[1])
        assert cache.initialised_entries == 1

    def test_scatter_via_any_alias(self):
        cache = _cache(size=3, n_buckets=1)
        cache.scatter(np.array([0]), np.array([[1, 2, 3]]))
        np.testing.assert_array_equal(cache.gather(np.array([7]))[0], [1, 2, 3])

    def test_colliding_writes_count_ce_sequentially(self):
        """Two keys, one bucket: the second write's CE is counted against
        the first write's contents, and the last write wins."""
        cache = _cache(size=3, n_buckets=1)
        cache.scatter(np.array([0]), np.array([[1, 2, 3]]))
        cache.reset_counters()
        ids = np.array([[4, 5, 6], [4, 5, 7]])
        # write #1 vs {1,2,3}: 3 changed; write #2 vs {4,5,6}: 1 changed.
        assert cache.scatter(np.array([2, 6]), ids) == 4
        np.testing.assert_array_equal(cache.gather(np.array([0]))[0], [4, 5, 7])

    def test_introspection(self):
        cache = _cache(n_keys=12, n_buckets=1)
        assert cache.load_factor() == 12.0
        assert cache.n_colliding_keys() == 12
        assert "n_buckets=1" in repr(cache)


class TestKeyAddressed:
    def test_get_and_contains_hash_any_key(self):
        cache = _cache(n_buckets=1)
        assert (123, 456) not in cache  # nothing materialised yet
        entry = cache.get((0, 0))
        assert entry.shape == (5,)
        # Single bucket: every key, indexed or not, now hits it.
        assert (123, 456) in cache
        np.testing.assert_array_equal(cache.get((123, 456)), entry)

    def test_keys_are_bucket_keys(self):
        cache = _cache(n_buckets=1)
        cache.gather(np.array([3]))
        assert cache.keys() == [(0, 0)]


class TestScores:
    def test_scores_roundtrip_through_buckets(self):
        cache = _cache(size=3, n_buckets=2, store_scores=True)
        cache.scatter(
            np.array([0]), np.array([[1, 2, 3]]), np.array([[0.1, 0.2, 0.3]])
        )
        np.testing.assert_allclose(
            cache.gather_scores(np.array([0]))[0], [0.1, 0.2, 0.3]
        )

    def test_scores_require_flag(self):
        cache = _cache(size=3, n_buckets=2)
        with pytest.raises(RuntimeError, match="store_scores"):
            cache.gather_scores(np.array([0]))
        with pytest.raises(RuntimeError, match="store_scores"):
            cache.scores((0, 0))
