"""Tests for the NSCaching sampler (Algorithms 2 and 3)."""

import numpy as np
import pytest

from repro.core.hashed import HashedNegativeCache
from repro.core.nscaching import NSCachingSampler
from repro.core.strategies import SampleStrategy, UpdateStrategy
from repro.models import make_model


@pytest.fixture
def bound_sampler(tiny_kg):
    model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
    sampler = NSCachingSampler(cache_size=6, candidate_size=6)
    sampler.bind(model, tiny_kg, rng=0)
    return sampler


class TestConstruction:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="cache_size"):
            NSCachingSampler(cache_size=0)
        with pytest.raises(ValueError, match="cache_size"):
            NSCachingSampler(candidate_size=0)

    def test_negative_lazy_rejected(self):
        with pytest.raises(ValueError, match="lazy_epochs"):
            NSCachingSampler(lazy_epochs=-1)

    def test_sampling_before_bind_rejected(self, tiny_kg):
        sampler = NSCachingSampler()
        with pytest.raises(RuntimeError, match="must be bound"):
            sampler.sample(tiny_kg.train[:4])

    def test_repr_mentions_paper_knobs(self):
        text = repr(NSCachingSampler(cache_size=50, candidate_size=70))
        assert "N1=50" in text and "N2=70" in text


class TestSampling:
    def test_negatives_differ_on_exactly_one_side(self, bound_sampler, tiny_kg):
        batch = tiny_kg.train[:32]
        negatives = bound_sampler.sample(batch)
        same_head = negatives[:, 0] == batch[:, 0]
        same_tail = negatives[:, 2] == batch[:, 2]
        np.testing.assert_array_equal(negatives[:, 1], batch[:, 1])
        # One side always retained (the other side may coincide by chance).
        assert np.all(same_head | same_tail)

    def test_sampled_entity_comes_from_cache(self, bound_sampler, tiny_kg):
        batch = tiny_kg.train[:8]
        negatives = bound_sampler.sample(batch)
        for pos, neg in zip(batch.tolist(), negatives.tolist()):
            h, r, t = pos
            if neg[0] != h:  # head was corrupted
                cached = bound_sampler.head_cache.get((r, t))
                assert neg[0] in cached
            elif neg[2] != t:  # tail was corrupted
                cached = bound_sampler.tail_cache.get((h, r))
                assert neg[2] in cached

    def test_cache_keys_follow_algorithm2(self, bound_sampler, tiny_kg):
        batch = tiny_kg.train[:4]
        bound_sampler.sample(batch)
        for h, r, t in batch.tolist():
            assert (r, t) in bound_sampler.head_cache
            assert (h, r) in bound_sampler.tail_cache


class TestUpdate:
    def test_update_raises_cache_scores(self, bound_sampler, tiny_kg):
        """After Alg. 3 refreshes, cached corruptions score higher than random."""
        model = bound_sampler.model
        batch = tiny_kg.train[:64]
        bound_sampler.sample(batch)
        for _ in range(5):
            bound_sampler.update(batch, batch)
        h, r, t = batch[0].tolist()
        cached_tails = bound_sampler.tail_cache.get((h, r))
        cached_scores = model.score(
            np.full(len(cached_tails), h),
            np.full(len(cached_tails), r),
            cached_tails,
        )
        random_tails = np.arange(tiny_kg.n_entities)
        random_scores = model.score(
            np.full(tiny_kg.n_entities, h),
            np.full(tiny_kg.n_entities, r),
            random_tails,
        )
        assert cached_scores.mean() > random_scores.mean()

    def test_update_counts_changed_elements(self, bound_sampler, tiny_kg):
        batch = tiny_kg.train[:16]
        bound_sampler.sample(batch)
        bound_sampler.update(batch, batch)
        assert bound_sampler.changed_elements() > 0

    def test_changed_elements_reset(self, bound_sampler, tiny_kg):
        batch = tiny_kg.train[:16]
        bound_sampler.sample(batch)
        bound_sampler.update(batch, batch)
        bound_sampler.changed_elements(reset=True)
        assert bound_sampler.changed_elements() == 0

    def test_lazy_update_skips_off_epochs(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        sampler = NSCachingSampler(cache_size=4, candidate_size=4, lazy_epochs=1)
        sampler.bind(model, tiny_kg, rng=0)
        batch = tiny_kg.train[:8]
        sampler.on_epoch_start(1)  # odd epoch -> skip with n=1
        sampler.sample(batch)
        sampler.update(batch, batch)
        assert sampler.changed_elements() == 0
        sampler.on_epoch_start(2)  # even epoch -> refresh
        sampler.update(batch, batch)
        assert sampler.changed_elements() > 0

    def test_update_before_sample_is_safe(self, bound_sampler, tiny_kg):
        batch = tiny_kg.train[:4]
        bound_sampler.update(batch, batch)  # initialises entries on demand
        assert bound_sampler.head_cache.n_entries > 0


class TestUpdateModes:
    @pytest.mark.parametrize("bad", ["relation", "tails", "both", ""])
    def test_unknown_mode_rejected(self, bound_sampler, tiny_kg, bad):
        batch = tiny_kg.train[:4]
        with pytest.raises(ValueError, match="mode"):
            bound_sampler.update(batch, batch, modes=(bad,))

    def test_unknown_mode_rejected_even_on_lazy_epochs(self, tiny_kg):
        """Validation runs before the lazy skip: a typo'd mode may not hide
        until the next refresh epoch (and may never fall through to a
        silent tail refresh)."""
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        sampler = NSCachingSampler(cache_size=4, candidate_size=4, lazy_epochs=3)
        sampler.bind(model, tiny_kg, rng=0)
        sampler.on_epoch_start(1)  # this epoch would be lazily skipped
        batch = tiny_kg.train[:4]
        with pytest.raises(ValueError, match="mode"):
            sampler.update(batch, batch, modes=("relation",))
        assert sampler.changed_elements() == 0  # nothing was refreshed

    def test_single_mode_refreshes_only_that_cache(self, bound_sampler, tiny_kg):
        batch = tiny_kg.train[:8]
        bound_sampler.update(batch, batch, modes=("head",))
        assert bound_sampler.head_cache.changed_elements > 0
        assert bound_sampler.tail_cache.changed_elements == 0
        assert bound_sampler.tail_cache.n_entries == 0


class TestFusedRefresh:
    def test_fused_by_default_and_in_repr(self):
        sampler = NSCachingSampler()
        assert sampler.fused
        assert "fused=True" in repr(sampler)

    def test_reference_path_runs(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        sampler = NSCachingSampler(cache_size=4, candidate_size=4, fused=False)
        sampler.bind(model, tiny_kg, rng=0)
        batch = tiny_kg.train[:8]
        sampler.update(batch, sampler.sample(batch))
        assert sampler.changed_elements() > 0

    def test_union_buffer_reused_across_batches(self, bound_sampler, tiny_kg):
        batch = tiny_kg.train[:16]
        bound_sampler.update(batch, batch)
        buffer = bound_sampler._union
        assert buffer is not None
        assert buffer.shape == (16, 12)  # N1 + N2 = 6 + 6
        bound_sampler.update(tiny_kg.train[16:32], tiny_kg.train[16:32])
        assert bound_sampler._union is buffer  # no reallocation

    def test_union_buffer_grows_for_larger_batches(self, bound_sampler, tiny_kg):
        bound_sampler.update(tiny_kg.train[:8], tiny_kg.train[:8])
        bound_sampler.update(tiny_kg.train[:32], tiny_kg.train[:32])
        assert bound_sampler._union.shape[0] >= 32


class TestStrategyVariants:
    @pytest.mark.parametrize("strategy", list(SampleStrategy))
    def test_all_sampling_strategies_run(self, tiny_kg, strategy):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        sampler = NSCachingSampler(
            cache_size=4, candidate_size=4, sample_strategy=strategy
        )
        sampler.bind(model, tiny_kg, rng=0)
        batch = tiny_kg.train[:8]
        negatives = sampler.sample(batch)
        sampler.update(batch, negatives)
        assert negatives.shape == batch.shape

    @pytest.mark.parametrize("strategy", list(UpdateStrategy))
    def test_all_update_strategies_run(self, tiny_kg, strategy):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        sampler = NSCachingSampler(
            cache_size=4, candidate_size=4, update_strategy=strategy
        )
        sampler.bind(model, tiny_kg, rng=0)
        batch = tiny_kg.train[:8]
        negatives = sampler.sample(batch)
        sampler.update(batch, negatives)
        assert sampler.changed_elements() >= 0

    def test_score_storing_only_when_needed(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        uniform = NSCachingSampler(sample_strategy="uniform").bind(model, tiny_kg, 0)
        importance = NSCachingSampler(sample_strategy="importance").bind(
            model, tiny_kg, 0
        )
        assert not uniform.head_cache.store_scores
        assert importance.head_cache.store_scores


class TestHashedCacheIntegration:
    def test_hashed_cache_bounds_entries(self, tiny_kg):
        model = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations, 8, rng=0)
        factory = lambda size, n, rng, store_scores: HashedNegativeCache(  # noqa: E731
            size, n, rng, n_buckets=7, store_scores=store_scores
        )
        sampler = NSCachingSampler(
            cache_size=4, candidate_size=4, cache_factory=factory
        )
        sampler.bind(model, tiny_kg, rng=0)
        for start in range(0, len(tiny_kg.train), 32):
            batch = tiny_kg.train[start : start + 32]
            sampler.update(batch, sampler.sample(batch))
        assert sampler.head_cache.n_entries <= 7
        assert sampler.tail_cache.n_entries <= 7

    def test_no_parameters_added(self, bound_sampler):
        """Table I: NSCaching adds no trainable parameters."""
        assert not hasattr(bound_sampler, "generator")
