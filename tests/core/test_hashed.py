"""Tests for the memory-bounded hashed cache extension."""

import numpy as np
import pytest

from repro.core.hashed import HashedNegativeCache, stable_key_hash


class TestStableKeyHash:
    def test_deterministic(self):
        assert stable_key_hash((3, 7)) == stable_key_hash((3, 7))

    def test_order_sensitive(self):
        assert stable_key_hash((3, 7)) != stable_key_hash((7, 3))

    def test_spreads_keys(self):
        buckets = {stable_key_hash((i, j)) % 64 for i in range(20) for j in range(20)}
        assert len(buckets) > 48  # good spread over 64 buckets


class TestHashedCache:
    def test_entries_bounded_by_buckets(self, rng):
        cache = HashedNegativeCache(4, 100, rng, n_buckets=5)
        for i in range(50):
            cache.get((i, i + 1))
        assert cache.n_entries <= 5

    def test_colliding_keys_share_entry(self, rng):
        cache = HashedNegativeCache(4, 100, rng, n_buckets=1)
        a = cache.get((0, 1))
        b = cache.get((42, 7))
        np.testing.assert_array_equal(a, b)

    def test_put_via_any_alias(self, rng):
        cache = HashedNegativeCache(3, 100, rng, n_buckets=1)
        cache.put((0, 1), np.array([1, 2, 3]))
        np.testing.assert_array_equal(cache.get((99, 99)), [1, 2, 3])

    def test_memory_bound_formula(self, rng):
        cache = HashedNegativeCache(10, 100, rng, n_buckets=8)
        assert cache.memory_bound_bytes() == 8 * 10 * 8

    def test_scores_supported(self, rng):
        cache = HashedNegativeCache(2, 50, rng, n_buckets=4, store_scores=True)
        cache.put((1, 2), np.array([5, 6]), np.array([0.5, 0.6]))
        np.testing.assert_allclose(cache.scores((1, 2)), [0.5, 0.6])

    def test_invalid_buckets_rejected(self, rng):
        with pytest.raises(ValueError, match="n_buckets"):
            HashedNegativeCache(4, 100, rng, n_buckets=0)

    def test_contains_respects_hashing(self, rng):
        cache = HashedNegativeCache(4, 100, rng, n_buckets=1)
        cache.get((0, 0))
        assert (123, 456) in cache  # same single bucket


class TestRegistryReachability:
    def test_hashed_is_a_registered_backend(self, rng):
        """Regression: the SVI extension was unreachable from the backend
        registry (only array/dict were listed, and its n_buckets kwarg
        could not be passed through)."""
        from repro.core.store import cache_backend_names, make_cache_backend

        assert "hashed" in cache_backend_names()
        cache = make_cache_backend("hashed", 4, 100, rng, n_buckets=5)
        assert isinstance(cache, HashedNegativeCache)
        assert cache.n_buckets == 5

    def test_sampler_accepts_hashed_backend(self):
        from repro.core.nscaching import NSCachingSampler

        sampler = NSCachingSampler(
            cache_backend="hashed", cache_options={"n_buckets": 7}
        )
        assert sampler.cache_backend == "hashed"
        assert sampler.cache_options == {"n_buckets": 7}

    def test_bucket_introspection_matches_bucketed_array(self, rng):
        """Same hash, same buckets: the dict reference reports the same
        load factor / collision counts as the array sibling."""
        from repro.core.bucketed import BucketedArrayCache
        from repro.data.keyindex import KeyIndex

        index = KeyIndex(np.arange(12), np.arange(12), 12)
        hashed = HashedNegativeCache(4, 100, rng, n_buckets=3)
        bucketed = BucketedArrayCache(4, 100, rng, n_buckets=3)
        hashed.attach_index(index)
        bucketed.attach_index(index)
        assert hashed.load_factor() == bucketed.load_factor() == 4.0
        assert hashed.n_colliding_keys() == bucketed.n_colliding_keys()

    def test_introspection_requires_index(self, rng):
        cache = HashedNegativeCache(4, 100, rng, n_buckets=3)
        with pytest.raises(RuntimeError, match="attach_index"):
            cache.load_factor()
