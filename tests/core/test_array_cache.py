"""Tests for the preallocated array cache and its vectorised CE counter."""

import numpy as np
import pytest

from repro.core.array_cache import ArrayNegativeCache, multiset_overlap_rows
from repro.core.cache import _multiset_overlap
from repro.core.store import CacheStore, make_cache_backend
from repro.data.keyindex import KeyIndex


def _index(n_keys: int = 8, n_second: int = 100) -> KeyIndex:
    return KeyIndex(
        np.arange(n_keys, dtype=np.int64), np.arange(n_keys, dtype=np.int64), n_second
    )


def _cache(size=5, n_entities=50, seed=0, n_keys=8, **kwargs) -> ArrayNegativeCache:
    cache = ArrayNegativeCache(size, n_entities, np.random.default_rng(seed), **kwargs)
    cache.attach_index(_index(n_keys))
    return cache


class TestConstruction:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="N1"):
            ArrayNegativeCache(0, 20)
        with pytest.raises(ValueError, match="n_entities"):
            ArrayNegativeCache(5, 0)

    def test_gather_before_attach_rejected(self):
        cache = ArrayNegativeCache(5, 20)
        with pytest.raises(RuntimeError, match="attach_index"):
            cache.gather(np.array([0]))

    def test_satisfies_protocol(self):
        assert isinstance(_cache(), CacheStore)

    def test_registry_builds_both_backends(self):
        for name in ("array", "dict"):
            cache = make_cache_backend(name, 4, 20, 0)
            assert cache.size == 4
        with pytest.raises(KeyError, match="unknown cache backend"):
            make_cache_backend("sqlite", 4, 20, 0)


class TestGather:
    def test_lazy_random_initialisation(self):
        cache = _cache()
        out = cache.gather(np.array([0, 3]))
        assert out.shape == (2, 5)
        assert np.all((out >= 0) & (out < 50))
        assert cache.initialised_entries == 2
        assert cache.n_entries == 2

    def test_gather_is_stable(self):
        cache = _cache()
        first = cache.gather(np.array([1, 2]))
        np.testing.assert_array_equal(cache.gather(np.array([1, 2])), first)
        assert cache.initialised_entries == 2

    def test_gather_returns_copy(self):
        cache = _cache()
        out = cache.gather(np.array([0]))
        out[...] = -1
        assert cache.gather(np.array([0])).min() >= 0

    def test_duplicate_rows_share_entry(self):
        cache = _cache()
        out = cache.gather(np.array([4, 4]))
        np.testing.assert_array_equal(out[0], out[1])
        assert cache.initialised_entries == 1

    def test_matches_dict_rng_stream(self):
        """Lazy init consumes the generator exactly like the dict cache."""
        index = _index()
        array_cache = ArrayNegativeCache(5, 50, np.random.default_rng(7))
        array_cache.attach_index(index)
        dict_cache = make_cache_backend("dict", 5, 50, np.random.default_rng(7))
        dict_cache.attach_index(index)
        rows = np.array([3, 1, 3, 0])
        np.testing.assert_array_equal(
            array_cache.gather(rows), dict_cache.gather(rows)
        )


class TestScatter:
    def test_replaces_entry(self):
        cache = _cache(size=3)
        cache.scatter(np.array([2]), np.array([[1, 2, 3]]))
        np.testing.assert_array_equal(cache.gather(np.array([2]))[0], [1, 2, 3])

    def test_wrong_shape_rejected(self):
        cache = _cache(size=3)
        with pytest.raises(ValueError, match="shape"):
            cache.scatter(np.array([0]), np.array([[1, 2]]))

    def test_ce_counting_matches_reference(self):
        cache = _cache(size=3)
        cache.scatter(np.array([0]), np.array([[1, 2, 3]]))
        cache.reset_counters()
        assert cache.scatter(np.array([0]), np.array([[3, 2, 9]])) == 1
        assert cache.changed_elements == 1

    def test_scatter_on_fresh_row_counts_full_and_initialises(self):
        cache = _cache(size=3)
        assert cache.scatter(np.array([5]), np.array([[1, 2, 3]])) == 3
        assert cache.initialised_entries == 1

    def test_duplicate_rows_sequential_semantics(self):
        """Repeated rows in one scatter behave like sequential puts."""
        cache = _cache(size=3)
        cache.scatter(np.array([0]), np.array([[1, 2, 3]]))
        cache.reset_counters()
        ids = np.array([[4, 5, 6], [4, 5, 7]])
        # put #1 vs {1,2,3}: 3 changed; put #2 vs {4,5,6}: 1 changed.
        assert cache.scatter(np.array([0, 0]), ids) == 4
        np.testing.assert_array_equal(cache.gather(np.array([0]))[0], [4, 5, 7])

    def test_empty_scatter(self):
        cache = _cache(size=3)
        assert cache.scatter(np.empty(0, dtype=np.int64), np.empty((0, 3))) == 0


class TestScores:
    def test_scores_require_flag(self):
        cache = _cache()
        with pytest.raises(RuntimeError, match="store_scores"):
            cache.gather_scores(np.array([0]))

    def test_scores_roundtrip(self):
        cache = _cache(size=3, store_scores=True)
        np.testing.assert_array_equal(
            cache.gather_scores(np.array([0]))[0], np.zeros(3)
        )
        cache.scatter(
            np.array([0]), np.array([[1, 2, 3]]), np.array([[0.1, 0.2, 0.3]])
        )
        np.testing.assert_allclose(
            cache.gather_scores(np.array([0]))[0], [0.1, 0.2, 0.3]
        )

    def test_scatter_without_scores_rejected_when_required(self):
        cache = _cache(size=3, store_scores=True)
        with pytest.raises(ValueError, match="requires scores"):
            cache.scatter(np.array([0]), np.array([[1, 2, 3]]))


class TestKeyAddressed:
    def test_get_and_contains(self):
        cache = _cache()
        assert (0, 0) not in cache
        entry = cache.get((0, 0))
        assert entry.shape == (5,)
        assert (0, 0) in cache
        assert (9, 9) not in cache  # not in the index at all

    def test_keys_lists_initialised_rows(self):
        cache = _cache()
        cache.gather(np.array([2]))
        assert cache.keys() == [(2, 2)]


class TestAccounting:
    def test_memory_bytes_counts_initialised_entries(self):
        cache = _cache(size=4)
        assert cache.memory_bytes() == 0
        cache.gather(np.array([0]))
        one = cache.memory_bytes()
        assert one == 4 * 8
        cache.gather(np.array([1]))
        assert cache.memory_bytes() == 2 * one

    def test_allocated_bytes_counts_preallocation(self):
        cache = _cache(size=4, n_keys=8)
        assert cache.allocated_bytes() >= 8 * 4 * 8

    def test_len_and_repr(self):
        cache = _cache()
        cache.gather(np.array([0, 1]))
        assert len(cache) == 2
        assert "n_keys=8" in repr(cache)


class TestMultisetOverlapRows:
    def test_matches_scalar_reference(self, rng):
        a = rng.integers(0, 12, size=(64, 9))
        b = rng.integers(0, 12, size=(64, 9))
        expected = np.array([_multiset_overlap(x, y) for x, y in zip(a, b)])
        np.testing.assert_array_equal(multiset_overlap_rows(a, b), expected)

    def test_identical_rows_full_overlap(self, rng):
        a = rng.integers(0, 100, size=(8, 6))
        np.testing.assert_array_equal(multiset_overlap_rows(a, a), np.full(8, 6))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            multiset_overlap_rows(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_empty(self):
        out = multiset_overlap_rows(np.empty((3, 0)), np.empty((3, 0)))
        np.testing.assert_array_equal(out, np.zeros(3))


class TestScoresValidation:
    def test_scatter_wrong_shaped_scores_rejected(self):
        cache = _cache(size=3, store_scores=True)
        rows = np.array([0, 1])
        ids = np.array([[1, 2, 3], [4, 5, 6]])
        for bad in (np.ones((2, 2)), np.ones((1, 3)), np.ones(3), np.array(0.5)):
            with pytest.raises(ValueError, match="scores must have shape"):
                cache.scatter(rows, ids, bad)
        assert cache.n_entries == 0  # rejected before any write

    def test_scatter_validates_scores_even_without_storage(self):
        """A wrong-shaped block is a caller bug whether stored or not."""
        cache = _cache(size=3)
        with pytest.raises(ValueError, match="scores must have shape"):
            cache.scatter(np.array([0]), np.array([[1, 2, 3]]), np.ones(2))


class TestMultisetOverlapWideIds:
    """The packed-code path overflows int64 for extreme id ranges; the
    lexsort fallback must kick in instead of raising (regression: the CE
    count of ``scatter`` crashed on wide id ranges where dict worked)."""

    def test_fallback_at_packing_threshold(self):
        # n_rows * span * n_cols == 2 * 2**60 * 2 == 2**62: first width
        # the packed path must refuse.
        a = np.array([[0, 2**60 - 1], [5, 5]])
        b = np.array([[2**60 - 1, 3], [5, 9]])
        expected = np.array([_multiset_overlap(x, y) for x, y in zip(a, b)])
        np.testing.assert_array_equal(multiset_overlap_rows(a, b), expected)

    def test_fallback_matches_packed_path(self, rng):
        """Both paths agree on data either could handle."""
        a = rng.integers(0, 10, size=(16, 6))
        b = rng.integers(0, 10, size=(16, 6))
        narrow = multiset_overlap_rows(a, b)
        wide_a, wide_b = a.copy(), b.copy()
        # Push one row into fallback territory without changing overlaps:
        # shift a disjoint value pair far apart.
        wide_a[0], wide_b[0] = np.arange(6), np.arange(6) + 2**61
        reference = np.array(
            [_multiset_overlap(x, y) for x, y in zip(wide_a, wide_b)]
        )
        np.testing.assert_array_equal(
            multiset_overlap_rows(wide_a, wide_b), reference
        )
        np.testing.assert_array_equal(reference[1:], narrow[1:])

    def test_scatter_ce_count_survives_wide_id_ranges(self):
        """End to end: a cache over a huge entity space no longer crashes
        where the dict backend worked."""
        n_entities = 2**61
        index = _index(n_keys=4)
        array_cache = ArrayNegativeCache(3, n_entities, np.random.default_rng(0))
        dict_cache = make_cache_backend("dict", 3, n_entities, np.random.default_rng(0))
        array_cache.attach_index(index)
        dict_cache.attach_index(index)
        rows = np.array([0, 1])
        ids = np.array([[0, 1, 2**60], [2**60, 7, 0]])
        assert array_cache.scatter(rows, ids) == dict_cache.scatter(rows, ids)
        ids2 = np.array([[2**60, 1, 3], [2**60, 7, 1]])
        assert array_cache.scatter(rows, ids2) == dict_cache.scatter(rows, ids2)
        assert array_cache.changed_elements == dict_cache.changed_elements


class TestChangedHintAndExternalStorage:
    """The scatter `changed=` fast path and worker-style storage views."""

    def test_changed_hint_skips_counting_but_updates_counters(self):
        index = _index(n_keys=3)
        cache = ArrayNegativeCache(2, 20, np.random.default_rng(0))
        cache.attach_index(index)
        rows = np.array([0, 2])
        cache.gather(rows)  # materialise (the hint contract)
        before = cache.initialised_entries
        got = cache.scatter(rows, np.array([[1, 2], [3, 4]]), changed=3)
        assert got == 3
        assert cache.changed_elements == 3
        assert cache.initialised_entries == before
        np.testing.assert_array_equal(cache.gather(np.array([0]))[0], [1, 2])

    def test_changed_hint_equivalent_to_counted_scatter(self):
        """With unique live rows, hint-written state matches counted state."""
        index = _index(n_keys=4)
        caches = []
        for _ in range(2):
            cache = ArrayNegativeCache(3, 30, np.random.default_rng(7))
            cache.attach_index(index)
            cache.gather(np.arange(4))
            caches.append(cache)
        counted, hinted = caches
        rows = np.array([1, 3])
        ids = np.array([[5, 6, 7], [8, 9, 10]])
        expected = counted.scatter(rows, ids)
        hinted.scatter(rows, ids, changed=expected)
        assert counted.changed_elements == hinted.changed_elements
        np.testing.assert_array_equal(
            counted.gather(np.arange(4)), hinted.gather(np.arange(4))
        )

    def test_attach_storage_views_external_arrays(self):
        ids = np.zeros((5, 2), dtype=np.int64)
        live = np.zeros(5, dtype=bool)
        view = ArrayNegativeCache(2, 20, np.random.default_rng(0))
        view.attach_storage(None, ids, live)
        view.scatter(np.array([3]), np.array([[7, 8]]))
        np.testing.assert_array_equal(ids[3], [7, 8])  # wrote through
        assert live[3]
        with pytest.raises(RuntimeError, match="no key index"):
            view.get((0, 0))

    def test_attach_storage_validates_shapes(self):
        view = ArrayNegativeCache(2, 20, store_scores=True)
        ids = np.zeros((5, 2), dtype=np.int64)
        live = np.zeros(5, dtype=bool)
        with pytest.raises(ValueError, match="scores"):
            view.attach_storage(None, ids, live)
        with pytest.raises(ValueError, match="live"):
            view.attach_storage(None, ids, np.zeros(4, dtype=bool),
                                np.zeros((5, 2)))
        with pytest.raises(ValueError, match="ids"):
            view.attach_storage(None, np.zeros((5, 3), dtype=np.int64), live,
                                np.zeros((5, 3)))
