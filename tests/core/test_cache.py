"""Tests for the negative cache data structure."""

import numpy as np
import pytest

from repro.core.cache import NegativeCache, _multiset_overlap
from repro.data.keyindex import KeyIndex


class TestCacheBasics:
    def test_lazy_random_initialisation(self, rng):
        cache = NegativeCache(5, 20, rng)
        entry = cache.get((0, 1))
        assert entry.shape == (5,)
        assert np.all((entry >= 0) & (entry < 20))
        assert cache.initialised_entries == 1

    def test_get_is_stable(self, rng):
        cache = NegativeCache(5, 20, rng)
        first = cache.get((0, 1)).copy()
        np.testing.assert_array_equal(cache.get((0, 1)), first)
        assert cache.initialised_entries == 1

    def test_distinct_keys_independent(self, rng):
        cache = NegativeCache(8, 1000, rng)
        a = cache.get((0, 1))
        b = cache.get((1, 0))
        assert not np.array_equal(a, b)

    def test_put_replaces_entry(self, rng):
        cache = NegativeCache(3, 20, rng)
        cache.get((0, 0))
        new = np.array([1, 2, 3])
        cache.put((0, 0), new)
        np.testing.assert_array_equal(cache.get((0, 0)), new)

    def test_put_wrong_shape_rejected(self, rng):
        cache = NegativeCache(3, 20, rng)
        with pytest.raises(ValueError, match="shape"):
            cache.put((0, 0), np.array([1, 2]))

    def test_contains_and_len(self, rng):
        cache = NegativeCache(3, 20, rng)
        assert (0, 0) not in cache
        cache.get((0, 0))
        assert (0, 0) in cache
        assert len(cache) == 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="N1"):
            NegativeCache(0, 20)
        with pytest.raises(ValueError, match="n_entities"):
            NegativeCache(5, 0)


class TestEntriesAreReadOnly:
    def test_get_rejects_writes(self, rng):
        cache = NegativeCache(5, 20, rng)
        entry = cache.get((0, 1))
        with pytest.raises(ValueError, match="read-only"):
            entry[0] = 99

    def test_put_entry_rejects_writes(self, rng):
        cache = NegativeCache(3, 20, rng)
        cache.put((0, 0), np.array([1, 2, 3]))
        with pytest.raises(ValueError, match="read-only"):
            cache.get((0, 0))[:] = 0

    def test_scores_reject_writes(self, rng):
        cache = NegativeCache(3, 20, rng, store_scores=True)
        with pytest.raises(ValueError, match="read-only"):
            cache.scores((0, 0))[0] = 1.0

    def test_caller_arrays_not_frozen(self, rng):
        """put() must not freeze the caller's own array."""
        cache = NegativeCache(3, 20, rng)
        mine = np.array([1, 2, 3])
        cache.put((0, 0), mine)
        mine[0] = 7  # still writable; cache unaffected
        assert cache.get((0, 0))[0] == 1


class TestRowAdapters:
    """The dict cache speaks the row-addressed CacheStore protocol too."""

    def _with_index(self, rng, size=3, n_keys=4):
        from repro.data.keyindex import KeyIndex

        cache = NegativeCache(size, 20, rng)
        cache.attach_index(
            KeyIndex(np.arange(n_keys), np.arange(n_keys), n_keys)
        )
        return cache

    def test_gather_matches_get(self, rng):
        cache = self._with_index(rng)
        stacked = cache.gather(np.array([0, 2, 0]))
        np.testing.assert_array_equal(stacked[0], cache.get((0, 0)))
        np.testing.assert_array_equal(stacked[1], cache.get((2, 2)))
        np.testing.assert_array_equal(stacked[0], stacked[2])

    def test_scatter_matches_put(self, rng):
        cache = self._with_index(rng)
        changed = cache.scatter(
            np.array([1, 1]), np.array([[1, 2, 3], [1, 2, 9]])
        )
        # Sequential puts: 3 changed on the fresh row, then 1 more.
        assert changed == 4
        np.testing.assert_array_equal(cache.get((1, 1)), [1, 2, 9])

    def test_gather_without_index_rejected(self, rng):
        cache = NegativeCache(3, 20, rng)
        with pytest.raises(RuntimeError, match="attach_index"):
            cache.gather(np.array([0]))


class TestChangedElements:
    def test_identical_put_counts_zero(self, rng):
        cache = NegativeCache(3, 20, rng)
        entry = cache.get((0, 0)).copy()
        cache.reset_counters()
        assert cache.put((0, 0), entry) == 0
        assert cache.changed_elements == 0

    def test_disjoint_put_counts_full(self, rng):
        cache = NegativeCache(3, 100, rng)
        cache.put((0, 0), np.array([1, 2, 3]))
        cache.reset_counters()
        assert cache.put((0, 0), np.array([4, 5, 6])) == 3

    def test_partial_overlap(self, rng):
        cache = NegativeCache(3, 100, rng)
        cache.put((0, 0), np.array([1, 2, 3]))
        cache.reset_counters()
        assert cache.put((0, 0), np.array([3, 2, 9])) == 1

    def test_multiset_semantics(self, rng):
        cache = NegativeCache(3, 100, rng)
        cache.put((0, 0), np.array([5, 5, 3]))
        cache.reset_counters()
        # One 5 survives, the duplicate 5 counts as changed.
        assert cache.put((0, 0), np.array([5, 1, 2])) == 2

    def test_reset_counters(self, rng):
        cache = NegativeCache(3, 100, rng)
        cache.put((0, 0), np.array([1, 2, 3]))
        cache.reset_counters()
        assert cache.changed_elements == 0
        assert cache.initialised_entries == 0


class TestScores:
    def test_scores_require_flag(self, rng):
        cache = NegativeCache(3, 20, rng, store_scores=False)
        with pytest.raises(RuntimeError, match="store_scores"):
            cache.scores((0, 0))

    def test_scores_initialised_to_zero(self, rng):
        cache = NegativeCache(3, 20, rng, store_scores=True)
        np.testing.assert_array_equal(cache.scores((0, 0)), np.zeros(3))

    def test_put_with_scores_roundtrip(self, rng):
        cache = NegativeCache(3, 20, rng, store_scores=True)
        cache.put((0, 0), np.array([1, 2, 3]), np.array([0.1, 0.2, 0.3]))
        np.testing.assert_allclose(cache.scores((0, 0)), [0.1, 0.2, 0.3])

    def test_put_without_scores_rejected_when_required(self, rng):
        cache = NegativeCache(3, 20, rng, store_scores=True)
        with pytest.raises(ValueError, match="requires scores"):
            cache.put((0, 0), np.array([1, 2, 3]))


class TestBatchAccess:
    def test_get_many_shape(self, rng):
        cache = NegativeCache(4, 50, rng)
        stacked = cache.get_many([(0, 0), (1, 1), (0, 0)])
        assert stacked.shape == (3, 4)
        np.testing.assert_array_equal(stacked[0], stacked[2])

    def test_memory_accounting_grows(self, rng):
        cache = NegativeCache(4, 50, rng)
        assert cache.memory_bytes() == 0
        cache.get((0, 0))
        one = cache.memory_bytes()
        cache.get((1, 1))
        assert cache.memory_bytes() == 2 * one


class TestMultisetOverlap:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ([1, 2, 3], [1, 2, 3], 3),
            ([1, 2, 3], [4, 5, 6], 0),
            ([1, 1, 2], [1, 3, 4], 1),
            ([1, 1, 2], [1, 1, 9], 2),
        ],
    )
    def test_cases(self, a, b, expected):
        assert _multiset_overlap(np.array(a), np.array(b)) == expected


class TestScoresValidation:
    def test_put_wrong_shaped_scores_rejected(self, rng):
        cache = NegativeCache(3, 50, rng, store_scores=True)
        with pytest.raises(ValueError, match="scores must have shape"):
            cache.put((0, 0), np.array([1, 2, 3]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError, match="scores must have shape"):
            # A scalar would silently broadcast without validation.
            cache.put((0, 0), np.array([1, 2, 3]), np.array(0.5))

    def test_rejected_put_leaves_entry_untouched(self, rng):
        """Validation precedes mutation: no ids-without-scores state."""
        cache = NegativeCache(3, 50, rng, store_scores=True)
        cache.put((0, 0), np.array([1, 2, 3]), np.array([0.1, 0.2, 0.3]))
        before = cache.changed_elements
        with pytest.raises(ValueError, match="requires scores"):
            cache.put((0, 0), np.array([7, 8, 9]))
        np.testing.assert_array_equal(cache.get((0, 0)), [1, 2, 3])
        np.testing.assert_allclose(cache.scores((0, 0)), [0.1, 0.2, 0.3])
        assert cache.changed_elements == before

    def test_scatter_wrong_shaped_scores_rejected(self, rng):
        cache = NegativeCache(3, 50, rng, store_scores=True)
        index = KeyIndex(np.arange(4), np.arange(4), 4)
        cache.attach_index(index)
        rows = np.array([0, 1])
        ids = np.array([[1, 2, 3], [4, 5, 6]])
        with pytest.raises(ValueError, match="scores must have shape"):
            cache.scatter(rows, ids, np.ones((2, 2)))
        # Nothing was written: the batch failed as a unit, not mid-loop.
        assert cache.n_entries == 0
