"""Cross-module property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import _multiset_overlap
from repro.eval.ccdf import ccdf
from repro.eval.ranking import rank_scores
from repro.models.losses import LogisticLoss, MarginRankingLoss


class TestRankScoreProperties:
    @given(
        scores=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=20,
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_bounds_and_monotonicity(self, scores, data):
        """Ranks lie in [1, n]; raising the true score never worsens the rank."""
        arr = np.asarray([scores])
        col = data.draw(st.integers(0, len(scores) - 1))
        rank = rank_scores(arr, np.array([col]), None)[0]
        assert 1.0 <= rank <= len(scores)
        boosted = arr.copy()
        boosted[0, col] += 5.0
        better = rank_scores(boosted, np.array([col]), None)[0]
        assert better <= rank

    @given(
        scores=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=3,
            max_size=15,
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_filtering_never_hurts(self, scores, data):
        """Masking competitors can only improve (lower) the rank."""
        arr = np.asarray([scores])
        col = data.draw(st.integers(0, len(scores) - 1))
        others = [i for i in range(len(scores)) if i != col]
        mask = data.draw(st.lists(st.sampled_from(others), unique=True, max_size=5))
        raw = rank_scores(arr, np.array([col]), None)[0]
        filtered = rank_scores(arr, np.array([col]), [np.asarray(mask, dtype=np.int64)])[0]
        assert filtered <= raw

    @given(
        scores=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=20,
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_true_column_survives_any_mask(self, scores, data):
        """The documented re-admission contract (relied on by both the
        evaluators and the serving layer): the true column is never
        excluded, even when it appears in ``mask_cols`` — possibly
        alongside every other column."""
        arr = np.asarray([scores])
        col = data.draw(st.integers(0, len(scores) - 1))
        extra = data.draw(
            st.lists(
                st.integers(0, len(scores) - 1), unique=True, max_size=len(scores)
            )
        )
        mask = np.asarray(sorted(set(extra) | {col}), dtype=np.int64)
        rank = rank_scores(arr, np.array([col]), [mask])[0]
        # The true column is ranked only against unmasked competitors:
        # never worse than with no mask, and exactly 1.0 when the mask
        # covers every column (the true score competes against itself).
        assert rank <= rank_scores(arr, np.array([col]), None)[0]
        survivors = [
            s for i, s in enumerate(scores) if i == col or i not in set(extra) | {col}
        ]
        expected = (
            1.0
            + sum(s > scores[col] for s in survivors)
            + 0.5 * (sum(s == scores[col] for s in survivors) - 1)
        )
        assert rank == pytest.approx(expected)


class TestCCDFProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ccdf_is_a_survival_function(self, values):
        xs, probs = ccdf(np.asarray(values))
        assert np.all((0.0 <= probs) & (probs <= 1.0))
        assert np.all(np.diff(probs) <= 1e-12)


class TestLossProperties:
    @given(
        pos=st.floats(min_value=-20, max_value=20, allow_nan=False),
        neg=st.floats(min_value=-20, max_value=20, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_losses_nonnegative(self, pos, neg):
        for loss in (MarginRankingLoss(1.0), LogisticLoss()):
            value = loss.value(np.array([pos]), np.array([neg]))[0]
            assert value >= 0.0

    @given(
        pos=st.floats(min_value=-20, max_value=20, allow_nan=False),
        neg=st.floats(min_value=-20, max_value=20, allow_nan=False),
        delta=st.floats(min_value=0.01, max_value=5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_loss_monotone_in_scores(self, pos, neg, delta):
        """Raising the positive score (or lowering the negative) never
        increases either loss."""
        for loss in (MarginRankingLoss(1.0), LogisticLoss()):
            base = loss.value(np.array([pos]), np.array([neg]))[0]
            better_pos = loss.value(np.array([pos + delta]), np.array([neg]))[0]
            better_neg = loss.value(np.array([pos]), np.array([neg - delta]))[0]
            assert better_pos <= base + 1e-12
            assert better_neg <= base + 1e-12


class TestMultisetOverlapProperties:
    @given(
        a=st.lists(st.integers(0, 8), min_size=1, max_size=12),
        b=st.lists(st.integers(0, 8), min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_overlap_matches_counter_intersection(self, a, b):
        from collections import Counter

        expected = sum((Counter(a) & Counter(b)).values())
        got = _multiset_overlap(np.asarray(a), np.asarray(b))
        assert got == expected

    @given(a=st.lists(st.integers(0, 8), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_overlap_with_self_is_full(self, a):
        arr = np.asarray(a)
        assert _multiset_overlap(arr, arr) == len(a)
