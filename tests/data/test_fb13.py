"""Tests for the interpretable FB13-like typed KG."""

import numpy as np
import pytest

from repro.data.fb13 import PROFESSIONS, fb13_like, type_consistency


@pytest.fixture(scope="module")
def fb13():
    return fb13_like(n_persons=60, rng=0)


class TestFB13Generation:
    def test_relations_are_the_five_expected(self, fb13):
        assert fb13.dataset.vocab.relations == (
            "profession", "nationality", "gender", "works_at", "colleague_of",
        )

    def test_every_person_has_a_profession(self, fb13):
        rel = fb13.dataset.vocab.relation_id("profession")
        triples = fb13.dataset.all_triples()
        heads_with_profession = set(triples[triples[:, 1] == rel][:, 0].tolist())
        person_ids = {
            fb13.dataset.vocab.entity_id(p) for p in fb13.person_labels
        }
        assert person_ids <= heads_with_profession

    def test_profession_tails_are_professions(self, fb13):
        rel = fb13.dataset.vocab.relation_id("profession")
        triples = fb13.dataset.all_triples()
        tails = triples[triples[:, 1] == rel][:, 2]
        assert type_consistency(fb13, "profession", tails) == 1.0

    def test_profession_of_matches_triples(self, fb13):
        rel = fb13.dataset.vocab.relation_id("profession")
        triples = fb13.dataset.all_triples()
        for h, _, t in triples[triples[:, 1] == rel].tolist():
            person = fb13.dataset.vocab.entity_label(h)
            profession = fb13.dataset.vocab.entity_label(t)
            assert fb13.profession_of[person] == profession

    def test_colleagues_are_persons(self, fb13):
        rel = fb13.dataset.vocab.relation_id("colleague_of")
        triples = fb13.dataset.all_triples()
        tails = triples[triples[:, 1] == rel][:, 2]
        assert type_consistency(fb13, "colleague_of", tails) == 1.0

    def test_professions_correlate_with_institutions(self, fb13):
        """The dominant institutional profession should be over-represented."""
        counts = {}
        for profession in fb13.profession_of.values():
            counts[profession] = counts.get(profession, 0) + 1
        top = max(counts.values())
        assert top > len(fb13.person_labels) / len(PROFESSIONS) * 1.5

    def test_too_few_persons_rejected(self):
        with pytest.raises(ValueError, match="n_persons"):
            fb13_like(n_persons=2)


class TestTypeConsistency:
    def test_random_entities_score_below_one(self, fb13, rng):
        random_ids = rng.integers(0, fb13.dataset.n_entities, size=30)
        value = type_consistency(fb13, "profession", random_ids)
        assert 0.0 <= value < 1.0

    def test_empty_input_is_zero(self, fb13):
        assert type_consistency(fb13, "profession", np.empty(0, dtype=np.int64)) == 0.0
