"""Tests for triple arrays and vocabularies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.triples import (
    Vocabulary,
    as_triple_array,
    entity_degrees,
    relation_counts,
    triple_key_set,
    unique_triples,
)


class TestVocabulary:
    def test_roundtrip_encode_decode(self):
        vocab = Vocabulary(("a", "b", "c"), ("r1", "r2"))
        labelled = [("a", "r1", "b"), ("c", "r2", "a")]
        decoded = vocab.decode(vocab.encode(labelled))
        assert decoded == labelled

    def test_sizes(self):
        vocab = Vocabulary(("a", "b"), ("r",))
        assert vocab.n_entities == 2
        assert vocab.n_relations == 1

    def test_lookup_both_directions(self):
        vocab = Vocabulary(("x", "y"), ("rel",))
        assert vocab.entity_id("y") == 1
        assert vocab.entity_label(1) == "y"
        assert vocab.relation_id("rel") == 0
        assert vocab.relation_label(0) == "rel"

    def test_unknown_label_raises(self):
        vocab = Vocabulary(("x",), ("r",))
        with pytest.raises(KeyError):
            vocab.entity_id("missing")

    def test_duplicate_entities_rejected(self):
        with pytest.raises(ValueError, match="duplicate entity"):
            Vocabulary(("a", "a"), ("r",))

    def test_duplicate_relations_rejected(self):
        with pytest.raises(ValueError, match="duplicate relation"):
            Vocabulary(("a", "b"), ("r", "r"))

    def test_from_triples_covers_all_labels(self):
        vocab = Vocabulary.from_triples([("b", "r2", "a"), ("a", "r1", "c")])
        assert vocab.entities == ("a", "b", "c")
        assert vocab.relations == ("r1", "r2")

    def test_from_triples_deterministic_order(self):
        t1 = [("b", "r", "a"), ("c", "s", "a")]
        t2 = list(reversed(t1))
        assert Vocabulary.from_triples(t1) == Vocabulary.from_triples(t2)

    def test_anonymous_labels_are_sortable_and_unique(self):
        vocab = Vocabulary.anonymous(12, 3)
        assert len(set(vocab.entities)) == 12
        assert vocab.entities == tuple(sorted(vocab.entities))


class TestAsTripleArray:
    def test_list_of_tuples(self):
        array = as_triple_array([(0, 1, 2), (3, 4, 5)])
        assert array.shape == (2, 3)
        assert array.dtype == np.int64

    def test_empty_input_gives_0x3(self):
        assert as_triple_array([]).shape == (0, 3)

    def test_single_triple_promoted(self):
        assert as_triple_array((1, 2, 3)).shape == (1, 3)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match=r"\[n, 3\]"):
            as_triple_array([[1, 2], [3, 4]])


class TestUniqueAndKeySet:
    def test_unique_removes_duplicates(self):
        triples = [(0, 0, 1), (0, 0, 1), (1, 0, 2)]
        assert len(unique_triples(triples)) == 2

    def test_key_set_membership(self):
        keys = triple_key_set([(0, 1, 2), (3, 4, 5)])
        assert (0, 1, 2) in keys
        assert (5, 4, 3) not in keys

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 2), st.integers(0, 5)
            ),
            max_size=50,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_unique_matches_set_semantics(self, triples):
        assert len(unique_triples(triples)) == len(set(triples))


class TestDegreeCounts:
    def test_entity_degrees(self):
        triples = [(0, 0, 1), (0, 1, 2), (2, 0, 0)]
        degrees = entity_degrees(triples, 4)
        # entity 0: head twice, tail once -> 3
        np.testing.assert_array_equal(degrees, [3, 1, 2, 0])

    def test_relation_counts(self):
        triples = [(0, 0, 1), (0, 1, 2), (2, 0, 0)]
        np.testing.assert_array_equal(relation_counts(triples, 3), [2, 1, 0])

    def test_degree_sum_is_twice_triple_count(self):
        triples = [(0, 0, 1), (1, 0, 2), (2, 1, 3)]
        assert entity_degrees(triples, 5).sum() == 2 * len(triples)
