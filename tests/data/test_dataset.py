"""Tests for the KGDataset bundle and its filter indexes."""

import numpy as np
import pytest

from repro.data.dataset import KGDataset
from repro.data.triples import Vocabulary


def _toy_dataset() -> KGDataset:
    vocab = Vocabulary.anonymous(6, 2)
    train = np.array([(0, 0, 1), (0, 0, 2), (1, 1, 3), (2, 0, 1)])
    valid = np.array([(0, 0, 3)])
    test = np.array([(1, 1, 4)])
    return KGDataset("toy", vocab, train, valid, test)


class TestKGDatasetBasics:
    def test_sizes(self):
        ds = _toy_dataset()
        assert ds.n_entities == 6
        assert ds.n_relations == 2
        assert ds.n_train == 4

    def test_all_triples_concatenates_splits(self):
        ds = _toy_dataset()
        assert len(ds.all_triples()) == 6

    def test_summary_keys(self):
        summary = _toy_dataset().summary()
        assert summary == {
            "entities": 6, "relations": 2, "train": 4, "valid": 1, "test": 1,
        }

    def test_out_of_range_entity_rejected(self):
        vocab = Vocabulary.anonymous(3, 1)
        with pytest.raises(ValueError, match="unknown entity"):
            KGDataset("bad", vocab, np.array([(0, 0, 5)]), np.empty((0, 3)), np.empty((0, 3)))

    def test_out_of_range_relation_rejected(self):
        vocab = Vocabulary.anonymous(3, 1)
        with pytest.raises(ValueError, match="unknown relation"):
            KGDataset("bad", vocab, np.array([(0, 4, 1)]), np.empty((0, 3)), np.empty((0, 3)))

    def test_negative_id_rejected(self):
        vocab = Vocabulary.anonymous(3, 1)
        with pytest.raises(ValueError, match="negative"):
            KGDataset("bad", vocab, np.array([(-1, 0, 1)]), np.empty((0, 3)), np.empty((0, 3)))


class TestFilters:
    def test_known_spans_all_splits(self):
        ds = _toy_dataset()
        assert ds.is_known(0, 0, 1)  # train
        assert ds.is_known(0, 0, 3)  # valid
        assert ds.is_known(1, 1, 4)  # test
        assert not ds.is_known(5, 0, 0)

    def test_true_tails_sorted_unique(self):
        ds = _toy_dataset()
        np.testing.assert_array_equal(ds.true_tails(0, 0), [1, 2, 3])

    def test_true_heads(self):
        ds = _toy_dataset()
        np.testing.assert_array_equal(ds.true_heads(0, 1), [0, 2])

    def test_missing_pair_gives_empty(self):
        ds = _toy_dataset()
        assert len(ds.true_tails(5, 1)) == 0
        assert len(ds.true_heads(0, 5)) == 0

    def test_filter_consistency_with_membership(self, tiny_kg):
        for h, r, t in tiny_kg.all_triples()[:50].tolist():
            assert t in tiny_kg.true_tails(h, r)
            assert h in tiny_kg.true_heads(r, t)


class TestFromTriples:
    def test_split_fractions_roughly_respected(self, rng):
        vocab = Vocabulary.anonymous(50, 3)
        triples = np.stack(
            [
                rng.integers(0, 50, 400),
                rng.integers(0, 3, 400),
                rng.integers(0, 50, 400),
            ],
            axis=1,
        )
        ds = KGDataset.from_triples(
            "split", triples, vocab, valid_fraction=0.1, test_fraction=0.1, rng=0
        )
        n = len(ds.all_triples())
        assert len(ds.valid) <= 0.15 * n
        assert len(ds.test) <= 0.15 * n
        assert len(ds.train) >= 0.7 * n

    def test_coverage_every_train_relation_present(self, tiny_kg):
        train_relations = set(tiny_kg.train[:, 1].tolist())
        all_relations = set(tiny_kg.all_triples()[:, 1].tolist())
        assert train_relations == all_relations

    def test_coverage_heldout_entities_seen_in_train(self, tiny_kg):
        train_entities = set(tiny_kg.train[:, 0].tolist()) | set(
            tiny_kg.train[:, 2].tolist()
        )
        for split in (tiny_kg.valid, tiny_kg.test):
            for h, _, t in split.tolist():
                assert h in train_entities
                assert t in train_entities

    def test_invalid_fractions_rejected(self):
        vocab = Vocabulary.anonymous(4, 1)
        with pytest.raises(ValueError, match="sum to < 1"):
            KGDataset.from_triples(
                "bad", np.array([(0, 0, 1)]), vocab,
                valid_fraction=0.6, test_fraction=0.6,
            )


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, tiny_kg):
        tiny_kg.save(tmp_path / "kg")
        loaded = KGDataset.load("tiny", tmp_path / "kg")
        # TSV files only mention entities that occur in triples, so the
        # reloaded vocabulary may be smaller; the triples must round-trip.
        assert loaded.n_entities <= tiny_kg.n_entities
        for split in ("train", "valid", "test"):
            original = set(map(tuple, tiny_kg.vocab.decode(getattr(tiny_kg, split))))
            restored = set(map(tuple, loaded.vocab.decode(getattr(loaded, split))))
            assert original == restored
