"""Tests for TSV triple IO."""

import pytest

from repro.data.io import (
    load_label_triples,
    load_triples_tsv,
    save_label_triples,
    save_triples_tsv,
)
from repro.data.triples import Vocabulary


class TestLabelTriples:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "triples.txt"
        triples = [("a", "r1", "b"), ("b", "r2", "c")]
        assert save_label_triples(path, triples) == 2
        assert load_label_triples(path) == triples

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "triples.txt"
        path.write_text("a\tr\tb\n\n\nc\tr\td\n")
        assert len(load_label_triples(path)) == 2

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a\tr\tb\na\tb\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            load_label_triples(path)


class TestEncodedTriples:
    def test_roundtrip_through_vocab(self, tmp_path):
        vocab = Vocabulary(("a", "b", "c"), ("r1", "r2"))
        triples = vocab.encode([("a", "r1", "b"), ("c", "r2", "a")])
        path = tmp_path / "enc.txt"
        assert save_triples_tsv(path, triples, vocab) == 2
        loaded = load_triples_tsv(path, vocab)
        assert (loaded == triples).all()
