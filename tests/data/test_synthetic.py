"""Tests for the synthetic KG generator and its planted structure."""

import numpy as np
import pytest

from repro.data.synthetic import (
    RelationTransform,
    SyntheticKGConfig,
    generate_kg,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticKGConfig()

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError, match="category_mix"):
            SyntheticKGConfig(category_mix=(0.5, 0.5, 0.5, 0.5))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="inverse_fraction"):
            SyntheticKGConfig(inverse_fraction=1.5)

    def test_nonpositive_entities_rejected(self):
        with pytest.raises(ValueError, match="n_entities"):
            SyntheticKGConfig(n_entities=0)


class TestRelationTransform:
    def test_translation_apply_invert_roundtrip(self, rng):
        v = rng.normal(size=6)
        tr = RelationTransform("translation", v)
        z = rng.normal(size=(4, 6))
        np.testing.assert_allclose(tr.invert(tr.apply(z)), z)

    def test_diagonal_is_involution(self, rng):
        s = rng.choice([-1.0, 1.0], size=6)
        tr = RelationTransform("diagonal", s)
        z = rng.normal(size=(4, 6))
        np.testing.assert_allclose(tr.apply(tr.apply(z)), z)

    def test_inverse_transform_undoes_forward(self, rng):
        v = rng.normal(size=6)
        tr = RelationTransform("translation", v)
        z = rng.normal(size=(4, 6))
        np.testing.assert_allclose(tr.inverse().apply(tr.apply(z)), z)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown transform"):
            RelationTransform("rotation", np.zeros(3))


class TestGeneration:
    def test_determinism(self):
        config = SyntheticKGConfig(n_entities=60, n_relations=4, triples_per_relation=40)
        a = generate_kg(config, rng=3).dataset
        b = generate_kg(config, rng=3).dataset
        np.testing.assert_array_equal(a.train, b.train)
        np.testing.assert_array_equal(a.test, b.test)

    def test_different_seeds_differ(self):
        config = SyntheticKGConfig(n_entities=60, n_relations=4, triples_per_relation=40)
        a = generate_kg(config, rng=3).dataset
        b = generate_kg(config, rng=4).dataset
        assert not np.array_equal(a.train, b.train)

    def test_every_relation_observed(self, tiny_kg):
        observed = set(tiny_kg.all_triples()[:, 1].tolist())
        assert observed == set(range(tiny_kg.n_relations))

    def test_no_duplicate_triples(self, tiny_kg):
        triples = tiny_kg.all_triples()
        assert len(np.unique(triples, axis=0)) == len(triples)

    def test_no_self_loop_majority(self, tiny_kg):
        # The generator excludes self-loops at source; splits can't add any.
        triples = tiny_kg.all_triples()
        assert np.mean(triples[:, 0] == triples[:, 2]) < 0.01

    def test_latents_unit_norm(self):
        kg = generate_kg(SyntheticKGConfig(n_entities=50, n_relations=3), rng=0)
        norms = np.linalg.norm(kg.truth.entity_latents, axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_truth_covers_all_relations(self):
        config = SyntheticKGConfig(
            n_entities=80, n_relations=6, inverse_fraction=0.5
        )
        kg = generate_kg(config, rng=0)
        n_total = kg.dataset.n_relations
        assert len(kg.truth.relation_transforms) == n_total
        assert len(kg.truth.relation_categories) == n_total
        assert len(kg.truth.relation_ranges) == n_total

    def test_diagonal_fraction_produces_diagonal_transforms(self):
        config = SyntheticKGConfig(
            n_entities=80, n_relations=10, diagonal_fraction=0.5
        )
        kg = generate_kg(config, rng=0)
        kinds = [t.kind for t in kg.truth.relation_transforms]
        assert kinds.count("diagonal") == 5


class TestInverseDuplicates:
    def test_inverse_relations_created(self):
        config = SyntheticKGConfig(
            n_entities=80, n_relations=6, inverse_fraction=0.5, triples_per_relation=50
        )
        kg = generate_kg(config, rng=0)
        assert kg.dataset.n_relations == 9  # 6 base + 3 inverses
        assert len(kg.truth.inverse_of) == 3

    def test_inverse_triples_are_reversed_base_triples(self):
        config = SyntheticKGConfig(
            n_entities=80, n_relations=4, inverse_fraction=0.5, triples_per_relation=50
        )
        kg = generate_kg(config, rng=0)
        triples = kg.dataset.all_triples()
        key_set = set(map(tuple, triples.tolist()))
        for r_inv, base in kg.truth.inverse_of.items():
            inv_triples = triples[triples[:, 1] == r_inv]
            assert len(inv_triples) > 0
            for h, _, t in inv_triples.tolist():
                assert (t, base, h) in key_set

    def test_zero_fraction_gives_no_inverses(self, tiny_kg):
        # tiny_kg is generated with inverse_fraction=0.
        assert tiny_kg.n_relations == 6


class TestPlantedStructure:
    def test_category_mix_visible_in_data(self):
        """A generator asked for only 1-N relations must show tph >> hpt.

        Nearest-neighbour tail selection clusters tails across heads, so the
        raw hpt exceeds 1 (as in real KGs); the planted directionality must
        still dominate.
        """
        from repro.data.relations import relation_cardinalities

        config = SyntheticKGConfig(
            n_entities=150,
            n_relations=5,
            triples_per_relation=100,
            category_mix=(0.0, 1.0, 0.0, 0.0),
            range_fraction=0.8,
        )
        kg = generate_kg(config, rng=0)
        tph, hpt = relation_cardinalities(
            kg.dataset.all_triples(), kg.dataset.n_relations
        )
        assert np.all(tph > 1.5 * hpt)

    def test_mirrored_mix_flips_cardinality_skew(self):
        """N-1-only generation must show the opposite skew of 1-N-only."""
        from repro.data.relations import relation_cardinalities

        config = SyntheticKGConfig(
            n_entities=150,
            n_relations=5,
            triples_per_relation=100,
            category_mix=(0.0, 0.0, 1.0, 0.0),
            range_fraction=0.8,
        )
        kg = generate_kg(config, rng=0)
        tph, hpt = relation_cardinalities(
            kg.dataset.all_triples(), kg.dataset.n_relations
        )
        assert np.all(hpt > 1.5 * tph)

    def test_tails_lie_in_relation_range_for_forward_relations(self):
        """For 1-1/1-N relations the generator draws tails from the range."""
        config = SyntheticKGConfig(
            n_entities=100,
            n_relations=4,
            range_fraction=0.3,
            category_mix=(0.5, 0.5, 0.0, 0.0),
        )
        kg = generate_kg(config, rng=0)
        triples = kg.dataset.all_triples()
        for r in range(4):
            tails = set(triples[triples[:, 1] == r][:, 2].tolist())
            rel_range = set(kg.truth.relation_ranges[r].tolist())
            assert tails <= rel_range

    def test_heads_lie_in_relation_range_for_backward_relations(self):
        """For N-1 relations the generator draws heads from the range."""
        config = SyntheticKGConfig(
            n_entities=100,
            n_relations=4,
            range_fraction=0.3,
            category_mix=(0.0, 0.0, 1.0, 0.0),
        )
        kg = generate_kg(config, rng=0)
        triples = kg.dataset.all_triples()
        for r in range(4):
            heads = set(triples[triples[:, 1] == r][:, 0].tolist())
            rel_range = set(kg.truth.relation_ranges[r].tolist())
            assert heads <= rel_range

    def test_degree_distribution_is_skewed(self):
        config = SyntheticKGConfig(
            n_entities=200, n_relations=8, popularity_exponent=1.0
        )
        kg = generate_kg(config, rng=0)
        degrees = np.sort(kg.dataset.degrees())[::-1]
        top_share = degrees[:20].sum() / max(degrees.sum(), 1)
        assert top_share > 0.2  # top-10% of entities carry >20% of degree
