"""Tests for the dense cache-key indexes."""

import numpy as np
import pytest

from repro.data.keyindex import BucketIndex, KeyIndex, TripleKeyIndex, stable_key_hash


class TestKeyIndex:
    def test_distinct_pairs_get_distinct_rows(self):
        index = KeyIndex(np.array([1, 1, 2, 2, 1]), np.array([3, 4, 3, 3, 3]), 10)
        assert index.n_keys == 3  # (1,3), (1,4), (2,3)
        rows = index.rows(np.array([1, 1, 2]), np.array([3, 4, 3]))
        assert len(set(rows.tolist())) == 3

    def test_rows_roundtrip_key_of(self):
        index = KeyIndex(np.array([0, 5, 9]), np.array([2, 0, 6]), 7)
        for key in [(0, 2), (5, 0), (9, 6)]:
            assert index.key_of(index.row_of(key)) == key

    def test_unknown_pair_raises_keyerror(self):
        index = KeyIndex(np.array([1]), np.array([1]), 4)
        with pytest.raises(KeyError, match=r"\(2, 3\)"):
            index.rows(np.array([1, 2]), np.array([1, 3]))

    def test_contains(self):
        index = KeyIndex(np.array([1, 2]), np.array([0, 3]), 5)
        assert index.contains((1, 0))
        assert index.contains((2, 3))
        assert not index.contains((1, 3))
        assert not index.contains((0, 0))

    def test_keys_in_row_order(self):
        index = KeyIndex(np.array([2, 0, 1]), np.array([1, 2, 0]), 4)
        pairs = index.keys()
        for row, (a, b) in enumerate(pairs):
            assert index.row_of((int(a), int(b))) == row

    def test_empty_batch(self):
        index = KeyIndex(np.array([1]), np.array([1]), 4)
        assert index.rows(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)).shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_second"):
            KeyIndex(np.array([0]), np.array([0]), 0)
        with pytest.raises(ValueError, match="out of range"):
            KeyIndex(np.array([0]), np.array([5]), 3)
        with pytest.raises(ValueError, match="equal-length"):
            KeyIndex(np.array([0, 1]), np.array([0]), 3)


class TestTripleKeyIndex:
    def test_sides_use_paper_keys(self, tiny_kg):
        index = TripleKeyIndex.from_triples(
            tiny_kg.train, tiny_kg.n_entities, tiny_kg.n_relations
        )
        batch = tiny_kg.train[:16]
        head_rows = index.head_rows(batch)
        tail_rows = index.tail_rows(batch)
        for i, (h, r, t) in enumerate(batch.tolist()):
            assert index.head.key_of(int(head_rows[i])) == (r, t)
            assert index.tail.key_of(int(tail_rows[i])) == (h, r)

    def test_covers_whole_split(self, tiny_kg):
        index = TripleKeyIndex.from_triples(
            tiny_kg.train, tiny_kg.n_entities, tiny_kg.n_relations
        )
        head_rows = index.head_rows(tiny_kg.train)
        assert head_rows.shape == (len(tiny_kg.train),)
        # Rows are dense: every index below n_keys, every key reachable.
        assert set(head_rows.tolist()) == set(range(index.head.n_keys))

    def test_shared_keys_share_rows(self, tiny_kg):
        index = TripleKeyIndex.from_triples(
            tiny_kg.train, tiny_kg.n_entities, tiny_kg.n_relations
        )
        triples = tiny_kg.train
        rows = index.tail_rows(triples)
        pair_to_row: dict[tuple[int, int], int] = {}
        for (h, r, _t), row in zip(triples.tolist(), rows.tolist()):
            assert pair_to_row.setdefault((h, r), row) == row


class TestStableKeyHash:
    def test_matches_scalar_reference(self):
        from repro.core.hashed import stable_key_hash as scalar_hash

        rng = np.random.default_rng(3)
        first = rng.integers(0, 10**12, size=500)
        second = rng.integers(0, 10**12, size=500)
        expected = np.array(
            [scalar_hash((a, b)) for a, b in zip(first, second)], dtype=np.uint64
        )
        np.testing.assert_array_equal(stable_key_hash(first, second), expected)

    def test_deterministic_and_order_sensitive(self):
        a = np.array([3, 7])
        b = np.array([7, 3])
        first = stable_key_hash(a, b)
        np.testing.assert_array_equal(stable_key_hash(a, b), first)
        assert first[0] != first[1]

    def test_returns_uint64(self):
        out = stable_key_hash(np.array([1]), np.array([2]))
        assert out.dtype == np.uint64 and out.shape == (1,)

    def test_spreads_keys(self):
        grid = np.arange(20)
        first, second = np.meshgrid(grid, grid)
        buckets = stable_key_hash(first.ravel(), second.ravel()) % np.uint64(64)
        assert len(np.unique(buckets)) > 48


class TestBucketIndex:
    def _index(self, n_keys=10):
        return KeyIndex(
            np.arange(n_keys, dtype=np.int64),
            np.arange(n_keys, dtype=np.int64),
            n_keys,
        )

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError, match="n_buckets"):
            BucketIndex(self._index(), 0)

    def test_bucket_rows_in_range_and_stable(self):
        buckets = BucketIndex(self._index(), 4)
        rows = np.arange(10, dtype=np.int64)
        out = buckets.bucket_rows(rows)
        assert out.shape == (10,)
        assert np.all((out >= 0) & (out < 4))
        np.testing.assert_array_equal(buckets.bucket_rows(rows), out)

    def test_matches_dict_hashed_bucketing(self):
        """Same hash, same buckets as HashedNegativeCache's scalar path."""
        from repro.core.hashed import stable_key_hash as scalar_hash

        index = self._index(25)
        buckets = BucketIndex(index, 7)
        for row, (a, b) in enumerate(index.keys()):
            assert buckets.bucket_rows(np.array([row]))[0] == (
                scalar_hash((int(a), int(b))) % 7
            )

    def test_bucket_of_serves_unindexed_keys(self):
        buckets = BucketIndex(self._index(), 5)
        assert 0 <= buckets.bucket_of((999, 888)) < 5

    def test_occupancy_partitions_keys(self):
        buckets = BucketIndex(self._index(12), 4)
        occupancy = buckets.occupancy()
        assert occupancy.shape == (4,)
        assert occupancy.sum() == 12

    def test_load_factor_and_colliding_keys(self):
        buckets = BucketIndex(self._index(12), 1)
        assert buckets.load_factor() == 12.0
        assert buckets.n_colliding_keys() == 12  # all share the one bucket

    def test_no_collisions_with_many_buckets(self):
        buckets = BucketIndex(self._index(3), 2**20)
        assert buckets.n_colliding_keys() == 0
        assert "colliding=0" in repr(buckets)
