"""Tests for the named benchmark analogues."""

import pytest

from repro.data.benchmarks import (
    BENCHMARKS,
    fb15k237_like,
    fb15k_like,
    load_benchmark,
    wn18_like,
    wn18rr_like,
)


class TestRegistry:
    def test_four_paper_datasets(self):
        assert set(BENCHMARKS) == {"WN18", "WN18RR", "FB15K", "FB15K237"}

    def test_load_by_name_case_insensitive(self):
        ds = load_benchmark("wn18rr", scale=0.1)
        assert ds.name == "wn18rr_like"

    def test_load_accepts_dashes(self):
        ds = load_benchmark("fb15k-237", scale=0.1)
        assert ds.name == "fb15k237_like"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("YAGO")


class TestCharacteristics:
    def test_wn18_has_more_relations_than_wn18rr(self):
        # Inverse duplicates inflate the relation count, as in the paper.
        wn18 = wn18_like(scale=0.1)
        wn18rr = wn18rr_like(scale=0.1)
        assert wn18.n_relations > wn18rr.n_relations

    def test_fb_family_has_many_relations(self):
        fb = fb15k_like(scale=0.1)
        wn = wn18_like(scale=0.1)
        assert fb.n_relations > 2 * wn.n_relations

    def test_fb15k_denser_than_fb15k237(self):
        fb15k = fb15k_like(scale=0.2)
        fb237 = fb15k237_like(scale=0.2)
        assert len(fb15k.train) > len(fb237.train)

    def test_scale_shrinks_dataset(self):
        small = wn18rr_like(scale=0.1)
        large = wn18rr_like(scale=0.3)
        assert large.n_entities > small.n_entities
        assert len(large.train) > len(small.train)

    def test_seed_reproducibility(self):
        a = wn18rr_like(seed=5, scale=0.1)
        b = wn18rr_like(seed=5, scale=0.1)
        assert (a.train == b.train).all()
