"""Tests for relation cardinality statistics and Bernoulli probabilities."""

import numpy as np
import pytest

from repro.data.relations import (
    RelationCategory,
    RelationStats,
    bernoulli_head_probabilities,
    categorize_relations,
    relation_cardinalities,
)


def _one_to_many() -> np.ndarray:
    """Relation 0: each head maps to 3 tails (tph=3, hpt=1)."""
    rows = []
    for h in range(4):
        for t in range(3):
            rows.append((h, 0, 10 + 3 * h + t))
    return np.asarray(rows)


class TestRelationStats:
    def test_tph_hpt_one_to_many(self):
        tph, hpt = relation_cardinalities(_one_to_many(), 1)
        assert tph[0] == pytest.approx(3.0)
        assert hpt[0] == pytest.approx(1.0)

    def test_many_to_one_is_transpose(self):
        triples = _one_to_many()[:, [2, 1, 0]]  # swap head/tail
        tph, hpt = relation_cardinalities(triples, 1)
        assert tph[0] == pytest.approx(1.0)
        assert hpt[0] == pytest.approx(3.0)

    def test_unobserved_relation_neutral(self):
        tph, hpt = relation_cardinalities(_one_to_many(), 3)
        assert tph[2] == 1.0 and hpt[2] == 1.0

    def test_bernoulli_prefers_head_for_one_to_many(self):
        # tph=3, hpt=1 -> p(head) = 3/4: replacing the nearly unique head
        # rarely creates a false negative.
        probs = bernoulli_head_probabilities(_one_to_many(), 1)
        assert probs[0] == pytest.approx(0.75)

    def test_bernoulli_probabilities_in_unit_interval(self, tiny_kg):
        probs = bernoulli_head_probabilities(tiny_kg.train, tiny_kg.n_relations)
        assert np.all(probs > 0) and np.all(probs < 1)


class TestCategorize:
    def test_one_to_many_category(self):
        assert categorize_relations(_one_to_many(), 1) == [
            RelationCategory.ONE_TO_MANY
        ]

    def test_one_to_one_category(self):
        triples = np.asarray([(i, 0, 10 + i) for i in range(5)])
        assert categorize_relations(triples, 1) == [RelationCategory.ONE_TO_ONE]

    def test_many_to_many_category(self):
        rows = [(h, 0, 10 + t) for h in range(4) for t in range(4)]
        assert categorize_relations(np.asarray(rows), 1) == [
            RelationCategory.MANY_TO_MANY
        ]

    def test_threshold_controls_boundary(self):
        triples = _one_to_many()  # tph = 3
        high = RelationStats(triples, 1).categories(threshold=4.0)
        assert high == [RelationCategory.ONE_TO_ONE]

    def test_category_values_are_paper_strings(self):
        assert RelationCategory.ONE_TO_MANY.value == "1-N"
        assert RelationCategory.MANY_TO_ONE.value == "N-1"
