"""Tests for corruption utilities and classification negatives."""

import numpy as np
import pytest

from repro.data.negatives import (
    classification_split,
    corrupt_uniform,
    false_negative_rate,
)
from repro.data.triples import HEAD, TAIL


class TestCorruptUniform:
    def test_exactly_one_side_changed(self, rng):
        triples = np.array([(0, 0, 1)] * 200)
        corrupted = corrupt_uniform(triples, 50, rng)
        head_changed = corrupted[:, HEAD] != 0
        tail_changed = corrupted[:, TAIL] != 1
        # A replacement can coincide with the original id, so "changed or
        # replaced-with-same" is not observable; but never both sides.
        assert not np.any(head_changed & tail_changed)

    def test_relation_never_changed(self, rng):
        triples = np.array([(0, 2, 1)] * 100)
        corrupted = corrupt_uniform(triples, 50, rng)
        assert (corrupted[:, 1] == 2).all()

    def test_head_probability_one_corrupts_heads_only(self, rng):
        triples = np.array([(0, 0, 1)] * 100)
        corrupted = corrupt_uniform(triples, 50, rng, head_probability=1.0)
        assert (corrupted[:, TAIL] == 1).all()

    def test_head_probability_zero_corrupts_tails_only(self, rng):
        triples = np.array([(0, 0, 1)] * 100)
        corrupted = corrupt_uniform(triples, 50, rng, head_probability=0.0)
        assert (corrupted[:, HEAD] == 0).all()

    def test_per_triple_probabilities(self, rng):
        triples = np.array([(0, 0, 1), (2, 1, 3)] * 50)
        probs = np.tile([1.0, 0.0], 50)
        corrupted = corrupt_uniform(triples, 50, rng, head_probability=probs)
        assert (corrupted[::2, TAIL] == 1).all()  # head-corrupted rows
        assert (corrupted[1::2, HEAD] == 2).all()  # tail-corrupted rows

    def test_empty_input(self, rng):
        out = corrupt_uniform(np.empty((0, 3), dtype=np.int64), 10, rng)
        assert out.shape == (0, 3)


class TestClassificationSplit:
    def test_labels_balanced_positives_first(self, tiny_kg, rng):
        triples, labels = classification_split(tiny_kg, "test", rng)
        n = len(tiny_kg.test)
        assert len(triples) == 2 * n
        assert (labels[:n] == 1).all()
        assert (labels[n:] == -1).all()

    def test_negatives_are_not_known_triples(self, tiny_kg, rng):
        triples, labels = classification_split(tiny_kg, "test", rng)
        negatives = triples[labels == -1]
        assert false_negative_rate(negatives, tiny_kg) == 0.0

    def test_positives_are_the_split(self, tiny_kg, rng):
        triples, labels = classification_split(tiny_kg, "valid", rng)
        np.testing.assert_array_equal(triples[labels == 1], tiny_kg.valid)

    def test_bad_split_rejected(self, tiny_kg, rng):
        with pytest.raises(ValueError, match="valid.*test"):
            classification_split(tiny_kg, "train", rng)


class TestFalseNegativeRate:
    def test_known_triples_rate_one(self, tiny_kg):
        assert false_negative_rate(tiny_kg.train[:20], tiny_kg) == 1.0

    def test_empty_candidates_rate_zero(self, tiny_kg):
        assert false_negative_rate(np.empty((0, 3), dtype=np.int64), tiny_kg) == 0.0

    def test_uniform_corruptions_rarely_true(self, tiny_kg, rng):
        corrupted = corrupt_uniform(tiny_kg.train, tiny_kg.n_entities, rng)
        assert false_negative_rate(corrupted, tiny_kg) < 0.3
