"""Tests for EmbeddingSnapshot and the snapshot export format."""

import numpy as np
import pytest

from repro.models import make_model
from repro.models.persistence import export_snapshot, load_snapshot, save_model
from repro.serve.snapshot import EmbeddingSnapshot


@pytest.fixture
def model():
    return make_model("TransD", 20, 5, 6, rng=7)


class TestExportSnapshot:
    def test_directory_layout(self, tmp_path, model):
        directory = export_snapshot(model, tmp_path / "snap")
        assert (directory / "meta.json").is_file()
        for name in model.params:
            assert (directory / f"{name}.npy").is_file()

    def test_load_snapshot_mmap_arrays(self, tmp_path, model):
        directory = export_snapshot(model, tmp_path / "snap")
        meta, arrays = load_snapshot(directory, mmap=True)
        assert meta["model"] == "TransD"
        for name, array in model.params.items():
            assert isinstance(arrays[name], np.memmap)
            np.testing.assert_array_equal(arrays[name], array)

    def test_load_snapshot_in_heap(self, tmp_path, model):
        directory = export_snapshot(model, tmp_path / "snap")
        _, arrays = load_snapshot(directory, mmap=False)
        assert all(not isinstance(a, np.memmap) for a in arrays.values())

    def test_non_snapshot_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a repro snapshot"):
            load_snapshot(tmp_path)


class TestEmbeddingSnapshot:
    def test_load_from_npz(self, tmp_path, model):
        path = save_model(model, tmp_path / "m.npz")
        snapshot = EmbeddingSnapshot.load(path)
        assert not snapshot.mmapped
        assert snapshot.model_name == "TransD"
        assert snapshot.n_entities == 20 and snapshot.dim == 6
        for array in snapshot.arrays.values():
            assert array.flags["C_CONTIGUOUS"]

    def test_load_from_directory_is_mmapped(self, tmp_path, model):
        snapshot = EmbeddingSnapshot.load(export_snapshot(model, tmp_path / "s"))
        assert snapshot.mmapped
        assert all(isinstance(a, np.memmap) for a in snapshot.arrays.values())

    def test_both_formats_score_identically(self, tmp_path, model, rng):
        npz = EmbeddingSnapshot.load(save_model(model, tmp_path / "m.npz"))
        mmapped = EmbeddingSnapshot.load(export_snapshot(model, tmp_path / "s"))
        h = rng.integers(0, 20, 12)
        r = rng.integers(0, 5, 12)
        t = rng.integers(0, 20, 12)
        expected = model.score(h, r, t)
        np.testing.assert_array_equal(npz.model().score(h, r, t), expected)
        np.testing.assert_array_equal(mmapped.model().score(h, r, t), expected)

    def test_model_is_cached(self, tmp_path, model):
        snapshot = EmbeddingSnapshot.load(save_model(model, tmp_path / "m.npz"))
        assert snapshot.model() is snapshot.model()

    def test_from_model_copies_tables(self, model):
        snapshot = EmbeddingSnapshot.from_model(model)
        model.params["entity"][:] = 0.0
        assert np.any(snapshot.arrays["entity"] != 0.0)

    def test_describe_is_json_safe(self, model):
        import json

        description = EmbeddingSnapshot.from_model(model).describe()
        assert json.loads(json.dumps(description)) == description
        assert description["bytes"] > 0

    def test_junk_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro model checkpoint"):
            EmbeddingSnapshot.load(path)
