"""Tests for the batched filtered top-k scorer."""

import numpy as np
import pytest

from repro.data.triples import HEAD, REL, TAIL
from repro.eval.filters import head_filter_masks, tail_filter_masks
from repro.eval.ranking import rank_scores
from repro.serve.topk import TopKScorer


class TestTopTails:
    def test_matches_full_sort_unfiltered(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        triples = tiny_kg.test[:6]
        results = scorer.top_tails(triples[:, HEAD], triples[:, REL], 5, filtered=False)
        scores = small_transe.score_all_tails(triples[:, HEAD], triples[:, REL])
        for i, result in enumerate(results):
            expected = np.argsort(-scores[i], kind="stable")[:5]
            np.testing.assert_array_equal(result.entities, expected)
            np.testing.assert_array_equal(result.scores, scores[i][expected])

    def test_filtered_excludes_known_tails(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        triples = tiny_kg.test[:8]
        results = scorer.top_tails(triples[:, HEAD], triples[:, REL], 10)
        masks = tail_filter_masks(tiny_kg, triples[:, HEAD], triples[:, REL])
        for result, mask in zip(results, masks):
            assert not set(result.entities.tolist()) & set(mask.tolist())

    def test_keep_readmits_the_true_tail(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        triples = tiny_kg.test[:8]
        results = scorer.top_tails(
            triples[:, HEAD], triples[:, REL], tiny_kg.n_entities,
            keep=triples[:, TAIL],
        )
        for triple, result in zip(triples, results):
            assert int(triple[TAIL]) in result.entities

    def test_scores_descend(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        triples = tiny_kg.test[:4]
        for result in scorer.top_tails(triples[:, HEAD], triples[:, REL], 7):
            assert np.all(np.diff(result.scores) <= 0)

    def test_k_larger_than_entities_truncates(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        (result,) = scorer.top_tails(
            tiny_kg.test[:1, HEAD], tiny_kg.test[:1, REL],
            tiny_kg.n_entities * 10, filtered=False,
        )
        assert len(result.entities) == tiny_kg.n_entities


class TestEvalParity:
    """The acceptance property: served ranks == eval-protocol ranks."""

    def test_tail_positions_match_rank_scores(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        triples = tiny_kg.test[:16]
        h, r, t = triples[:, HEAD], triples[:, REL], triples[:, TAIL]
        results = scorer.top_tails(h, r, tiny_kg.n_entities, keep=t)
        ranks = rank_scores(
            small_transe.score_all_tails(h, r), t, tail_filter_masks(tiny_kg, h, r)
        )
        for i, result in enumerate(results):
            position = int(np.flatnonzero(result.entities == t[i])[0]) + 1
            assert position == ranks[i]

    def test_head_positions_match_rank_scores(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        triples = tiny_kg.test[:16]
        h, r, t = triples[:, HEAD], triples[:, REL], triples[:, TAIL]
        results = scorer.top_heads(r, t, tiny_kg.n_entities, keep=h)
        ranks = rank_scores(
            small_transe.score_all_heads(r, t), h, head_filter_masks(tiny_kg, r, t)
        )
        for i, result in enumerate(results):
            position = int(np.flatnonzero(result.entities == h[i])[0]) + 1
            assert position == ranks[i]


class TestValidation:
    def test_filtered_without_dataset_rejected(self, small_transe):
        scorer = TopKScorer(small_transe)
        with pytest.raises(ValueError, match="dataset"):
            scorer.top_tails(np.array([0]), np.array([0]), 3)

    def test_unfiltered_without_dataset_works(self, small_transe):
        scorer = TopKScorer(small_transe)
        (result,) = scorer.top_tails(np.array([0]), np.array([0]), 3, filtered=False)
        assert len(result.entities) == 3

    def test_out_of_range_ids_rejected(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        with pytest.raises(ValueError, match="out of range"):
            scorer.top_tails(np.array([tiny_kg.n_entities]), np.array([0]), 3)
        with pytest.raises(ValueError, match="out of range"):
            scorer.top_heads(np.array([tiny_kg.n_relations]), np.array([0]), 3)

    def test_bad_k_rejected(self, tiny_kg, small_transe):
        scorer = TopKScorer(small_transe, tiny_kg)
        with pytest.raises(ValueError, match="k must be > 0"):
            scorer.top_tails(np.array([0]), np.array([0]), 0)

    def test_bad_chunk_rejected(self, small_transe):
        with pytest.raises(ValueError, match="chunk"):
            TopKScorer(small_transe, chunk=0)

    def test_to_json_is_serialisable(self, tiny_kg, small_transe):
        import json

        scorer = TopKScorer(small_transe, tiny_kg)
        (result,) = scorer.top_tails(np.array([0]), np.array([0]), 3)
        payload = result.to_json()
        assert json.loads(json.dumps(payload)) == payload
