"""Tests for the LRU query cache."""

import threading

import pytest

from repro.serve.cache import QueryCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = QueryCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_put_overwrites(self):
        cache = QueryCache(capacity=4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_contains_and_len(self):
        cache = QueryCache(capacity=4)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            QueryCache(capacity=0)


class TestEviction:
    def test_lru_order(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_capacity_never_exceeded(self):
        cache = QueryCache(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.evictions == 7


class TestStats:
    def test_hit_rate(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("x")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_before_any_lookup(self):
        assert QueryCache(capacity=2).hit_rate == 0.0

    def test_stats_dict(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1
        assert stats["capacity"] == 2

    def test_clear_keeps_counters_reset_zeroes_them(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1
        cache.reset_counters()
        assert cache.hits == cache.misses == cache.evictions == 0


class TestThreadSafety:
    def test_concurrent_mixed_workload(self):
        cache = QueryCache(capacity=64)
        errors = []

        def worker(worker_id):
            try:
                for i in range(500):
                    key = (worker_id, i % 100)
                    if cache.get(key) is None:
                        cache.put(key, i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.hits + cache.misses == 8 * 500
