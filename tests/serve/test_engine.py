"""Tests for the prediction engine (parse / batch / cache orchestration)."""

import numpy as np
import pytest

from repro.data.triples import HEAD, REL, TAIL
from repro.models.persistence import save_model
from repro.serve.engine import PredictionEngine
from repro.serve.snapshot import EmbeddingSnapshot


@pytest.fixture
def engine(tiny_kg, small_transe):
    return PredictionEngine(
        EmbeddingSnapshot.from_model(small_transe), tiny_kg, top_k=5
    )


class TestPredict:
    def test_tail_query_shape(self, engine, tiny_kg):
        h, r = int(tiny_kg.test[0, HEAD]), int(tiny_kg.test[0, REL])
        answer = engine.predict_one(head=h, relation=r)
        assert answer["direction"] == "tail"
        assert answer["head"] == h and answer["relation"] == r
        assert len(answer["entities"]) <= 5
        assert len(answer["labels"]) == len(answer["entities"])
        assert not answer["cached"]

    def test_head_query(self, engine, tiny_kg):
        t, r = int(tiny_kg.test[0, TAIL]), int(tiny_kg.test[0, REL])
        answer = engine.predict_one(tail=t, relation=r)
        assert answer["direction"] == "head"
        assert answer["tail"] == t

    def test_batch_preserves_order_and_mixes_directions(self, engine, tiny_kg):
        triples = tiny_kg.test[:4]
        queries = [
            {"head": int(triples[0, HEAD]), "relation": int(triples[0, REL])},
            {"tail": int(triples[1, TAIL]), "relation": int(triples[1, REL])},
            {"head": int(triples[2, HEAD]), "relation": int(triples[2, REL]), "k": 3},
            {"tail": int(triples[3, TAIL]), "relation": int(triples[3, REL])},
        ]
        answers = engine.predict(queries)
        assert [a["direction"] for a in answers] == ["tail", "head", "tail", "head"]
        assert answers[0]["head"] == queries[0]["head"]
        assert len(answers[2]["entities"]) <= 3

    def test_batch_matches_one_at_a_time(self, tiny_kg, small_transe):
        snapshot = EmbeddingSnapshot.from_model(small_transe)
        batched = PredictionEngine(snapshot, tiny_kg, top_k=5, cache_capacity=0)
        single = PredictionEngine(snapshot, tiny_kg, top_k=5, cache_capacity=0)
        triples = tiny_kg.test[:12]
        queries = [
            {"head": int(h), "relation": int(r)}
            for h, r in zip(triples[:, HEAD], triples[:, REL])
        ]
        batch_answers = batched.predict(queries)
        for query, batch_answer in zip(queries, batch_answers):
            assert single.predict_one(**query) == batch_answer
        assert batched.scoring_batches == 1
        assert single.scoring_batches == len(queries)

    def test_string_labels_resolve(self, engine, tiny_kg):
        h, r, t = tiny_kg.test[0]
        vocab = tiny_kg.vocab
        by_label = engine.predict_one(
            head=vocab.entity_label(int(h)), relation=vocab.relation_label(int(r))
        )
        by_id = engine.predict_one(head=int(h), relation=int(r))
        assert by_label["entities"] == by_id["entities"]

    def test_filtered_defaults_on_with_dataset(self, engine, tiny_kg):
        h, r = int(tiny_kg.test[0, HEAD]), int(tiny_kg.test[0, REL])
        answer = engine.predict_one(head=h, relation=r, k=tiny_kg.n_entities)
        known = set(tiny_kg.true_tails(h, r).tolist())
        assert not known & set(answer["entities"])
        assert answer["filtered"]


class TestCacheIntegration:
    def test_repeat_query_hits_cache(self, engine, tiny_kg):
        h, r = int(tiny_kg.test[0, HEAD]), int(tiny_kg.test[0, REL])
        first = engine.predict_one(head=h, relation=r)
        second = engine.predict_one(head=h, relation=r)
        assert not first["cached"] and second["cached"]
        assert first["entities"] == second["entities"]
        assert engine.scoring_batches == 1

    def test_different_k_is_a_different_cache_entry(self, engine, tiny_kg):
        h, r = int(tiny_kg.test[0, HEAD]), int(tiny_kg.test[0, REL])
        engine.predict_one(head=h, relation=r, k=3)
        answer = engine.predict_one(head=h, relation=r, k=4)
        assert not answer["cached"]

    def test_cache_disabled(self, tiny_kg, small_transe):
        engine = PredictionEngine(
            EmbeddingSnapshot.from_model(small_transe), tiny_kg, cache_capacity=0
        )
        h, r = int(tiny_kg.test[0, HEAD]), int(tiny_kg.test[0, REL])
        engine.predict_one(head=h, relation=r)
        assert not engine.predict_one(head=h, relation=r)["cached"]
        assert engine.cache is None


class TestValidation:
    @pytest.mark.parametrize(
        "query, match",
        [
            ({"relation": 0}, "exactly one of"),
            ({"head": 0, "tail": 1, "relation": 0}, "exactly one of"),
            ({"head": 0}, "needs a 'relation'"),
            ({"head": 0, "relation": 0, "extra": 1}, "unknown query fields"),
            ({"head": 10**6, "relation": 0}, "out of range"),
            ({"head": 0, "relation": 10**6}, "out of range"),
            ({"head": 0, "relation": 0, "k": 0}, "k must be > 0"),
            ({"head": 0, "relation": 0, "k": None}, "k must be an integer"),
            ({"head": 0, "relation": 0, "k": [5]}, "k must be an integer"),
            ({"head": 0, "relation": 0, "k": True}, "k must be an integer"),
            ({"head": 0, "relation": 0, "k": 10**9}, "k must be <="),
            ({"head": 0, "relation": 0, "filtered": "false"}, "must be a boolean"),
            ({"head": 1.5, "relation": 0}, "int id or string label"),
            ({"head": "no-such-entity", "relation": 0}, "unknown entity label"),
        ],
    )
    def test_malformed_queries_rejected(self, engine, query, match):
        with pytest.raises(ValueError, match=match):
            engine.predict([query])

    def test_entity_count_mismatch_rejected(self, tiny_kg):
        from repro.models import make_model

        other = make_model("TransE", tiny_kg.n_entities + 1, tiny_kg.n_relations, 4)
        with pytest.raises(ValueError, match="must match"):
            PredictionEngine(EmbeddingSnapshot.from_model(other), tiny_kg)

    def test_relation_count_mismatch_rejected(self, tiny_kg):
        from repro.models import make_model

        other = make_model("TransE", tiny_kg.n_entities, tiny_kg.n_relations + 1, 4)
        with pytest.raises(ValueError, match="must match"):
            PredictionEngine(EmbeddingSnapshot.from_model(other), tiny_kg)

    def test_filtered_without_dataset_rejected(self, small_transe):
        engine = PredictionEngine(EmbeddingSnapshot.from_model(small_transe))
        with pytest.raises(ValueError, match="dataset"):
            engine.predict_one(head=0, relation=0, filtered=True)
        # ...but unfiltered queries work, defaulting filtered off.
        answer = engine.predict_one(head=0, relation=0)
        assert not answer["filtered"] and "labels" not in answer


class TestStatsAndConstruction:
    def test_stats_shape(self, engine, tiny_kg):
        engine.predict_one(head=int(tiny_kg.test[0, HEAD]), relation=0)
        stats = engine.stats()
        assert stats["queries_served"] == 1
        assert stats["dataset"] == tiny_kg.name
        assert stats["snapshot"]["model"] == "TransE"
        assert stats["cache"]["entries"] == 1
        assert stats["uptime_seconds"] >= 0

    def test_from_checkpoint(self, tmp_path, tiny_kg, small_transe):
        path = save_model(small_transe, tmp_path / "m.npz")
        engine = PredictionEngine.from_checkpoint(path, tiny_kg, top_k=3)
        h, r = int(tiny_kg.test[0, HEAD]), int(tiny_kg.test[0, REL])
        direct = PredictionEngine(
            EmbeddingSnapshot.from_model(small_transe), tiny_kg, top_k=3
        )
        assert engine.predict_one(head=h, relation=r)["entities"] == \
            direct.predict_one(head=h, relation=r)["entities"]

    def test_bad_top_k_rejected(self, small_transe):
        with pytest.raises(ValueError, match="top_k"):
            PredictionEngine(EmbeddingSnapshot.from_model(small_transe), top_k=0)

    def test_max_k_below_top_k_rejected(self, small_transe):
        with pytest.raises(ValueError, match="max_k"):
            PredictionEngine(
                EmbeddingSnapshot.from_model(small_transe), top_k=10, max_k=5
            )

    def test_max_k_enforced_per_query(self, tiny_kg, small_transe):
        engine = PredictionEngine(
            EmbeddingSnapshot.from_model(small_transe), tiny_kg, top_k=3, max_k=5
        )
        assert len(engine.predict_one(head=0, relation=0, k=5)["entities"]) <= 5
        with pytest.raises(ValueError, match="k must be <= 5"):
            engine.predict_one(head=0, relation=0, k=6)
