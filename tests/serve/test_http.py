"""Tests for the JSON HTTP endpoint (real sockets, stdlib client)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.data.triples import HEAD, REL
from repro.serve.engine import PredictionEngine
from repro.serve.http import make_server
from repro.serve.snapshot import EmbeddingSnapshot


@pytest.fixture
def server(tiny_kg, small_transe):
    engine = PredictionEngine(
        EmbeddingSnapshot.from_model(small_transe), tiny_kg, top_k=5
    )
    httpd = make_server(engine, "127.0.0.1", 0)  # port 0: pick a free port
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=5) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestRoutes:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["snapshot"]["model"] == "TransE"

    def test_stats_reflects_traffic(self, server, tiny_kg):
        query = {"head": int(tiny_kg.test[0, HEAD]),
                 "relation": int(tiny_kg.test[0, REL])}
        _post(server, "/predict", query)
        status, body = _get(server, "/stats")
        assert status == 200
        assert body["queries_served"] == 1
        assert body["cache"]["entries"] == 1

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, "/nope", {})
        assert err.value.code == 404


class TestObservabilityRoutes:
    def _get_raw(self, server, path):
        with urllib.request.urlopen(_url(server, path), timeout=5) as response:
            return (
                response.status,
                response.headers["Content-Type"],
                response.read().decode("utf-8"),
            )

    def test_healthz_reports_liveness_fields(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["uptime_seconds"] >= 0
        assert body["queries_served"] == 0
        assert body["cache_evictions"] == 0
        assert body["cache_entries"] == 0

    def test_stats_cache_block_is_always_a_dict(self, tiny_kg, small_transe):
        engine = PredictionEngine(
            EmbeddingSnapshot.from_model(small_transe),
            tiny_kg,
            cache_capacity=0,  # cache disabled
        )
        cache = engine.stats()["cache"]
        assert cache == {
            "capacity": 0, "entries": 0, "hits": 0,
            "misses": 0, "evictions": 0, "hit_rate": 0.0,
        }

    def test_stats_and_healthz_agree_on_evictions(self, server, tiny_kg):
        for h, r in zip(tiny_kg.test[:4, HEAD], tiny_kg.test[:4, REL]):
            _post(server, "/predict", {"head": int(h), "relation": int(r)})
        _, stats = _get(server, "/stats")
        _, health = _get(server, "/healthz")
        assert health["cache_evictions"] == stats["cache"]["evictions"]
        assert health["cache_entries"] == stats["cache"]["entries"]
        assert health["queries_served"] == stats["queries_served"]

    def test_metrics_prometheus_text(self, server, tiny_kg):
        query = {"head": int(tiny_kg.test[0, HEAD]),
                 "relation": int(tiny_kg.test[0, REL])}
        _post(server, "/predict", query)
        status, content_type, text = self._get_raw(server, "/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE serve_queries_total counter" in text
        assert "serve_queries_total 1" in text
        assert "serve_predict_seconds_count 1" in text
        assert "serve_uptime_seconds" in text

    def test_metrics_json_format(self, server, tiny_kg):
        query = {"head": int(tiny_kg.test[0, HEAD]),
                 "relation": int(tiny_kg.test[0, REL])}
        _post(server, "/predict", query)
        _post(server, "/predict", query)  # cache hit
        status, body = _get(server, "/metrics?format=json")
        assert status == 200
        by_name = {m["name"]: m for m in body["metrics"]}
        assert by_name["serve_queries_total"]["value"] == 2.0
        assert by_name["serve_cache_hits_total"]["value"] == 1.0
        assert by_name["serve_predict_seconds"]["count"] == 2


class TestDirectHandler:
    """Drive do_GET on a handler instance with no socket underneath."""

    @staticmethod
    def _direct_get(engine, path):
        import io
        from email.message import Message

        from repro.serve.http import make_handler

        cls = make_handler(engine)
        handler = cls.__new__(cls)
        handler.command = "GET"
        handler.path = path
        handler.request_version = "HTTP/1.1"
        handler.requestline = f"GET {path} HTTP/1.1"
        handler.client_address = ("127.0.0.1", 0)
        handler.headers = Message()
        handler.rfile = io.BytesIO()
        handler.wfile = io.BytesIO()
        handler.close_connection = False
        handler.do_GET()
        raw = handler.wfile.getvalue()
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        headers = dict(line.split(": ", 1) for line in header_lines)
        return int(status_line.split()[1]), headers, body.decode("utf-8")

    @pytest.fixture
    def engine(self, tiny_kg, small_transe):
        return PredictionEngine(
            EmbeddingSnapshot.from_model(small_transe), tiny_kg, top_k=5
        )

    def test_healthz_direct(self, engine):
        status, headers, body = self._direct_get(engine, "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["snapshot"]["model"] == "TransE"

    def test_stats_direct(self, engine):
        status, headers, body = self._direct_get(engine, "/stats")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["queries_served"] == 0
        assert isinstance(payload["cache"], dict)

    def test_metrics_direct(self, engine):
        status, headers, body = self._direct_get(engine, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE serve_queries_total counter" in body

    def test_unknown_path_404_direct(self, engine):
        status, headers, body = self._direct_get(engine, "/not-a-route")
        assert status == 404
        assert "unknown path" in json.loads(body)["error"]
        assert headers["Content-Length"] == str(len(body.encode("utf-8")))


class TestPredict:
    def test_single_query_object(self, server, tiny_kg):
        h, r = int(tiny_kg.test[0, HEAD]), int(tiny_kg.test[0, REL])
        status, body = _post(server, "/predict", {"head": h, "relation": r})
        assert status == 200
        (result,) = body["results"]
        assert result["direction"] == "tail"
        assert result["head"] == h
        assert len(result["entities"]) <= 5

    def test_batch_of_queries(self, server, tiny_kg):
        triples = tiny_kg.test[:3]
        payload = {
            "queries": [
                {"head": int(h), "relation": int(r), "k": 4}
                for h, r in zip(triples[:, HEAD], triples[:, REL])
            ]
        }
        status, body = _post(server, "/predict", payload)
        assert status == 200
        assert len(body["results"]) == 3
        assert all(len(r["entities"]) <= 4 for r in body["results"])

    def test_http_answers_match_engine(self, server, tiny_kg, small_transe):
        h, r = int(tiny_kg.test[0, HEAD]), int(tiny_kg.test[0, REL])
        _, body = _post(server, "/predict", {"head": h, "relation": r})
        local = PredictionEngine(
            EmbeddingSnapshot.from_model(small_transe), tiny_kg, top_k=5
        ).predict_one(head=h, relation=r)
        served = body["results"][0]
        assert served["entities"] == local["entities"]
        assert served["scores"] == pytest.approx(local["scores"])

    def test_second_request_is_cache_hit(self, server, tiny_kg):
        query = {"head": int(tiny_kg.test[0, HEAD]),
                 "relation": int(tiny_kg.test[0, REL])}
        _, first = _post(server, "/predict", query)
        _, second = _post(server, "/predict", query)
        assert not first["results"][0]["cached"]
        assert second["results"][0]["cached"]


class TestErrors:
    @pytest.mark.parametrize(
        "payload",
        [
            {"relation": 0},  # no head/tail
            {"head": 0, "tail": 1, "relation": 0},  # both sides
            {"queries": []},  # empty batch
            {"head": 10**9, "relation": 0},  # out of range
            {"head": 0, "relation": 0, "k": None},  # non-integer k
            [1, 2, 3],  # not an object
        ],
    )
    def test_bad_queries_get_400(self, server, payload):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, "/predict", payload)
        assert err.value.code == 400
        assert "error" in json.loads(err.value.read().decode("utf-8"))

    def test_invalid_json_gets_400(self, server):
        request = urllib.request.Request(
            _url(server, "/predict"),
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 400

    def test_keepalive_survives_unread_error_body(self, server, tiny_kg):
        # A 404/400 sent before the body is drained must not leave the
        # body bytes on a keep-alive socket to be parsed as the next
        # request line (that desyncs the connection for every later
        # request).  The server closes such connections; the client
        # reconnects transparently.
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port)
        try:
            connection.request(
                "POST", "/nope", json.dumps({"head": 0, "relation": 0}),
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 404

            query = {"head": int(tiny_kg.test[0, HEAD]),
                     "relation": int(tiny_kg.test[0, REL])}
            connection.request(
                "POST", "/predict", json.dumps(query),
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 200
            assert body["results"][0]["head"] == query["head"]
        finally:
            connection.close()

    def test_empty_body_gets_400(self, server):
        request = urllib.request.Request(
            _url(server, "/predict"), data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 400


class TestHead:
    """HEAD on every GET route: status + headers, no body (satellite for
    load balancers whose probes default to HEAD)."""

    def _head(self, server, path):
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=5)
        try:
            connection.request("HEAD", path)
            response = connection.getresponse()
            body = response.read()
            return response.status, dict(response.getheaders()), body
        finally:
            connection.close()

    @pytest.mark.parametrize("path", ["/healthz", "/stats", "/metrics"])
    def test_head_matches_get_without_body(self, server, path):
        status, headers, body = self._head(server, path)
        assert status == 200
        assert body == b""
        assert int(headers["Content-Length"]) > 0

    def test_head_metrics_content_type(self, server):
        _, headers, _ = self._head(server, "/metrics")
        assert headers["Content-Type"].startswith("text/plain")

    def test_head_unknown_path_404(self, server):
        status, headers, body = self._head(server, "/nope")
        assert status == 404
        assert body == b""
        assert int(headers["Content-Length"]) > 0

    def test_head_then_get_on_same_connection(self, server):
        # The advertised-but-unsent Content-Length must not desync a
        # keep-alive connection.
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=5)
        try:
            connection.request("HEAD", "/healthz")
            response = connection.getresponse()
            response.read()
            assert response.status == 200
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 200
            assert body["status"] == "ok"
        finally:
            connection.close()


class TestRequestMetrics:
    """http_requests_total{route,status} covers error paths too."""

    def _counters(self, server, name):
        _, body = _get(server, "/metrics?format=json")
        return {
            tuple(sorted(m["labels"].items())): m["value"]
            for m in body["metrics"]
            if m["name"] == name
        }

    def test_success_and_errors_both_counted(self, server, tiny_kg):
        query = {"head": int(tiny_kg.test[0, HEAD]),
                 "relation": int(tiny_kg.test[0, REL])}
        _post(server, "/predict", query)
        with pytest.raises(urllib.error.HTTPError):
            _post(server, "/predict", {"relation": 0})  # 400
        with pytest.raises(urllib.error.HTTPError):
            _get(server, "/nowhere")  # 404
        counters = self._counters(server, "http_requests_total")
        assert counters[(("route", "/predict"), ("status", "200"))] == 1.0
        assert counters[(("route", "/predict"), ("status", "400"))] == 1.0
        assert counters[(("route", "other"), ("status", "404"))] == 1.0

    def test_unknown_paths_collapse_to_other(self, server):
        for path in ("/a", "/b", "/c/d"):
            with pytest.raises(urllib.error.HTTPError):
                _get(server, path)
        counters = self._counters(server, "http_requests_total")
        assert counters[(("route", "other"), ("status", "404"))] == 3.0
        # No per-path labels leak through (cardinality stays bounded); a
        # scrape only counts itself on the *next* export, so 'other' may
        # be the sole series here.
        routes = {dict(key)["route"] for key in counters}
        assert routes <= {"other", "/metrics"}

    def test_latency_histogram_per_route(self, server):
        _get(server, "/healthz")
        _, body = _get(server, "/metrics?format=json")
        histograms = {
            m["labels"]["route"]: m
            for m in body["metrics"]
            if m["name"] == "http_request_seconds"
        }
        assert histograms["/healthz"]["count"] >= 1

    def test_head_requests_counted(self, server):
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=5)
        try:
            connection.request("HEAD", "/healthz")
            connection.getresponse().read()
        finally:
            connection.close()
        counters = self._counters(server, "http_requests_total")
        assert counters[(("route", "/healthz"), ("status", "200"))] == 1.0


class TestSlowRequestLog:
    def test_slow_requests_logged_and_counted(self, tiny_kg, small_transe, capsys):
        engine = PredictionEngine(
            EmbeddingSnapshot.from_model(small_transe), tiny_kg, top_k=5
        )
        httpd = make_server(
            engine, "127.0.0.1", 0, slow_request_seconds=0.0
        )  # threshold 0: every request is slow
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            _get(httpd, "/healthz")
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)
        stderr = capsys.readouterr().err
        assert "slow request: GET /healthz -> 200" in stderr
        registry = engine.sync_metrics()
        assert registry.value(
            "http_slow_requests_total", labels={"route": "/healthz"}
        ) == 1.0

    def test_fast_requests_not_logged(self, server, capsys):
        _get(server, "/healthz")  # default threshold: 1s
        assert "slow request" not in capsys.readouterr().err


class TestConcurrentKeepAlive:
    """N threads hammer keep-alive connections in parallel: every body
    arrives whole (no interleaving), Content-Length always matches, and
    the request counters add up afterwards."""

    N_THREADS = 6
    N_REQUESTS = 8

    def _worker(self, server, tiny_kg, results, index):
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            query = {
                "head": int(tiny_kg.test[index % len(tiny_kg.test), HEAD]),
                "relation": int(tiny_kg.test[index % len(tiny_kg.test), REL]),
            }
            for i in range(self.N_REQUESTS):
                if i % 2 == 0:
                    connection.request(
                        "POST", "/predict", json.dumps(query),
                        {"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    raw = response.read()
                    assert response.status == 200
                    assert len(raw) == int(response.getheader("Content-Length"))
                    body = json.loads(raw.decode("utf-8"))  # whole, not interleaved
                    assert body["results"][0]["head"] == query["head"]
                else:
                    connection.request("GET", "/metrics")
                    response = connection.getresponse()
                    raw = response.read()
                    assert response.status == 200
                    assert len(raw) == int(response.getheader("Content-Length"))
                    assert raw.decode("utf-8").rstrip().startswith("#")
            results[index] = None
        except BaseException as exc:  # noqa: BLE001 - reported by the main thread
            results[index] = exc
        finally:
            connection.close()

    def test_parallel_keepalive_requests(self, server, tiny_kg):
        results = [NotImplemented] * self.N_THREADS
        threads = [
            threading.Thread(
                target=self._worker, args=(server, tiny_kg, results, i)
            )
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        failures = [r for r in results if r is not None]
        assert failures == [], f"worker failures: {failures!r}"

        # Counters are consistent after the storm: every request landed
        # exactly once.
        _, body = _get(server, "/metrics?format=json")
        per_predict = self.N_REQUESTS // 2
        predict_count = sum(
            m["value"]
            for m in body["metrics"]
            if m["name"] == "http_requests_total"
            and m["labels"]["route"] == "/predict"
        )
        assert predict_count == self.N_THREADS * per_predict
        queries = next(
            m["value"] for m in body["metrics"]
            if m["name"] == "serve_queries_total"
        )
        assert queries == self.N_THREADS * per_predict


class TestRequestSpans:
    def test_request_span_wraps_engine_spans(self, tiny_kg, small_transe):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        engine = PredictionEngine(
            EmbeddingSnapshot.from_model(small_transe), tiny_kg, top_k=5,
            tracer=tracer,
        )
        httpd = make_server(engine, "127.0.0.1", 0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            query = {"head": int(tiny_kg.test[0, HEAD]),
                     "relation": int(tiny_kg.test[0, REL])}
            _post(httpd, "/predict", query)
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)
        records = tracer.records()
        request = next(r for r in records if r["name"] == "request")
        assert request["args"] == {
            "route": "/predict", "method": "POST", "status": 200,
        }
        inner = {r["name"] for r in records if r["name"] != "request"}
        assert {"parse", "cache", "score"} <= inner
        # The request span encloses the engine spans it triggered.
        for record in records:
            if record["name"] in ("parse", "cache", "score"):
                assert record["ts"] >= request["ts"]
                end = record["ts"] + record["dur"]
                assert end <= request["ts"] + request["dur"] + 1e-6

    def test_untraced_engine_records_nothing(self, server):
        _get(server, "/healthz")
        assert server.RequestHandlerClass is not None  # plain smoke: no tracer attr errors
