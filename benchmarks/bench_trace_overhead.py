"""Extension (X11) — span-tracing overhead on the update() hot loop.

The tracer is disabled by default and every hot-path call site is
``None``-guarded, mirroring the metrics registry's contract (bench X8):
:mod:`repro.obs.trace` must be free when off and near-free when on.
This benchmark measures full ``NSCachingSampler`` ``update()``
throughput at the paper defaults (N1 = N2 = 50, batch 1024) in three
configurations:

1. **off** — no tracer attached (the seed configuration, bit-identical
   to it by the ``tests/train/test_trainer_trace.py`` contract);
2. **on** — a :class:`~repro.obs.trace.Tracer` attached to the sampler,
   recording a ``refresh_side`` span per cache refresh;
3. **on + update span** — the same tracer plus a trainer-style span
   wrapped around every ``update()`` call (what ``--trace-out`` costs
   per phase).

The off/on passes are interleaved (off, on, off, on, ...) so thermal
drift and allocator state hit both arms equally, and the median pass is
compared.  Tracing-on must stay within ``MAX_OVERHEAD`` (3%) of
tracing-off; the off arm is the seed path itself, so no separate seed
assertion is needed.  Run under pytest (records wall time, writes
benchmarks/out/X11.txt)::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_overhead.py --benchmark-only

or as a plain script (CI smoke: tiny dataset, report-only)::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --smoke
"""

import argparse
import statistics
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import fb15k_like
from repro.obs.trace import Tracer

SEED = 0
SCALE = 0.3
DIM = 32
PAPER_N1 = PAPER_N2 = 50
PAPER_BATCH = 1024
#: Interleaved (off, on) pass pairs; the median per-arm pass is compared.
PASS_PAIRS = 5
#: Tracing-on may cost at most this fraction over tracing-off.
MAX_OVERHEAD = 0.03

OUT_PATH = Path(__file__).parent / "out" / "X11.txt"


def _make_sampler(dataset, n1, n2):
    model = build_model("TransE", dataset, dim=DIM, seed=SEED)
    sampler = NSCachingSampler(cache_size=n1, candidate_size=n2)
    sampler.bind(model, dataset, rng=SEED)
    return sampler


def _one_pass(sampler, dataset, rows, batch_size, *, tracer=None):
    """Seconds for one full pass of update() over the training set."""
    n_batches = 0
    start_time = time.perf_counter()
    for start in range(0, len(dataset.train) - batch_size + 1, batch_size):
        indices = np.arange(start, start + batch_size)
        batch = dataset.train[indices]
        if tracer is not None:
            with tracer.start_span("update", "train"):
                sampler.update(batch, batch, rows.take(indices))
        else:
            sampler.update(batch, batch, rows.take(indices))
        n_batches += 1
    return time.perf_counter() - start_time, n_batches * batch_size


def run_benchmark(scale=SCALE, batch_size=PAPER_BATCH, n1=PAPER_N1,
                  n2=PAPER_N2, pass_pairs=PASS_PAIRS):
    """Returns (rows, on/off overhead fraction, span-arm overhead fraction)."""
    dataset = fb15k_like(seed=SEED, scale=scale)
    batch_size = min(batch_size, len(dataset.train))
    tracer = Tracer()

    arms = {"off": [], "on": [], "on + update span": []}
    sampler = _make_sampler(dataset, n1, n2)
    rows = sampler.precompute_rows(dataset.train)
    try:
        # Warm-up: initialise both cache sides before any timed pass.
        first = np.arange(min(batch_size, len(dataset.train)))
        sampler.update(dataset.train[first], dataset.train[first],
                       rows.take(first))
        for _ in range(pass_pairs):
            sampler.tracer = None
            seconds, n = _one_pass(sampler, dataset, rows, batch_size)
            arms["off"].append(n / seconds)
            sampler.tracer = tracer
            seconds, n = _one_pass(sampler, dataset, rows, batch_size)
            arms["on"].append(n / seconds)
            seconds, n = _one_pass(sampler, dataset, rows, batch_size,
                                   tracer=tracer)
            arms["on + update span"].append(n / seconds)
    finally:
        sampler.close()

    off = statistics.median(arms["off"])
    table_rows, overheads = [], {}
    for name, passes in arms.items():
        throughput = statistics.median(passes)
        overheads[name] = off / throughput - 1.0
        table_rows.append(
            (name, round(throughput), f"{100 * overheads[name]:+.2f}%")
        )
    return table_rows, overheads["on"], overheads["on + update span"]


def render(table_rows) -> str:
    return format_table(
        ("instrumentation", "update() triples/s", "overhead vs off"),
        table_rows,
        title=(
            "X11: span-tracing overhead on the update() hot loop "
            f"(TransE d{DIM}, N1=N2={PAPER_N1}, batch {PAPER_BATCH}, "
            f"median of {PASS_PAIRS} interleaved passes per arm)"
        ),
    )


def test_trace_overhead(benchmark, report):
    from conftest import run_once

    table_rows, on_overhead, span_overhead = run_once(
        benchmark, lambda: run_benchmark()
    )
    report("X11", render(table_rows))
    assert on_overhead <= MAX_OVERHEAD, (
        f"tracing-on costs {100 * on_overhead:.2f}% on update() "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset, report-only (CI-friendly: tiny workloads make "
             "percent overheads pure noise)",
    )
    args = parser.parse_args()
    if args.smoke:
        table_rows, on_overhead, _ = run_benchmark(
            scale=0.1, batch_size=256, pass_pairs=2
        )
        print(render(table_rows))
        print(
            f"smoke ok: tracing-on measured at {100 * on_overhead:+.2f}% "
            "(report-only at smoke scale)"
        )
        return 0
    table_rows, on_overhead, span_overhead = run_benchmark()
    text = render(table_rows)
    print(text)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(text + "\n", encoding="utf-8")
    print(f"written to {OUT_PATH}")
    assert on_overhead <= MAX_OVERHEAD, (
        f"tracing-on costs {100 * on_overhead:.2f}% on update() "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
