"""Figures 2-3 — convergence of testing MRR / Hits@10 vs clock time (TransD).

Bernoulli vs KBGAN vs NSCaching (both from scratch) on the four dataset
analogues, with periodic filtered evaluation against the *training* clock
(evaluation time excluded, as in the paper).  Shapes: all methods converge;
NSCaching reaches the highest MRR; Bernoulli plateaus lowest.
"""


from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.data.benchmarks import BENCHMARKS
from repro.sampling import make_sampler
from repro.train.callbacks import EvalCallback
from repro.train.trainer import Trainer

from conftest import BENCH_SEED, run_once

MODEL = "TransD"
EPOCHS = 30
EVERY = 5
SCALE = 0.25
N1 = N2 = 30

SAMPLERS = {
    "Bernoulli": {},
    "KBGAN": {"candidate_size": N1},
    "NSCaching": {"cache_size": N1, "candidate_size": N2},
}


def _convergence_rows(dataset):
    rows = []
    finals = {}
    for sampler_name, kwargs in SAMPLERS.items():
        model = build_model(MODEL, dataset, dim=32, seed=BENCH_SEED)
        probe = EvalCallback(split="test", every=EVERY, hits_at=(10,))
        trainer = Trainer(
            model, dataset, make_sampler(sampler_name, **kwargs),
            make_config(MODEL, EPOCHS, seed=BENCH_SEED),
            callbacks=[probe],
        )
        trainer.run()
        for epoch, seconds, mrr, hits in zip(
            probe.epochs,
            probe.times,
            probe.series["mrr"].values,
            probe.series["hits@10"].values,
        ):
            rows.append((sampler_name, epoch, f"{seconds:.1f}", mrr, hits))
        finals[sampler_name] = probe.series["mrr"].values[-1]
    return rows, finals


def test_fig2_3_convergence_transd(benchmark, report):
    def run():
        blocks = []
        all_finals = {}
        for paper_name, loader in BENCHMARKS.items():
            dataset = loader(seed=BENCH_SEED, scale=SCALE)
            rows, finals = _convergence_rows(dataset)
            blocks.append(
                format_table(
                    ("sampler", "epoch", "train time (s)", "test MRR", "test Hits@10"),
                    rows,
                    title=f"[{MODEL} on {paper_name} analogue]",
                )
            )
            all_finals[paper_name] = finals
        return "\n\n".join(blocks), all_finals

    text, finals = run_once(benchmark, run)
    report("fig2_3_convergence_transd", text)
    wins = sum(
        1
        for per_dataset in finals.values()
        if per_dataset["NSCaching"] >= per_dataset["Bernoulli"]
    )
    assert wins >= 3, f"NSCaching converged above Bernoulli on only {wins}/4: {finals}"
