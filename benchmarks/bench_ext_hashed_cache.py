"""Extension (paper §VI future work) — memory-bounded hashed cache.

The paper flags cache memory as the obstacle at million-entity scale and
names hashing as future work.  This benchmark measures the trade-off the
paper anticipates: bucket budgets well below the number of distinct cache
keys cost some quality, while moderate budgets preserve most of
NSCaching's advantage at a fraction of the memory.
"""


from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.core.hashed import HashedNegativeCache
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import wn18_like
from repro.eval.protocol import evaluate
from repro.sampling import BernoulliSampler
from repro.train.trainer import Trainer

from conftest import BENCH_SCALE, BENCH_SEED, run_once

MODEL = "TransE"
EPOCHS = 25
N1 = N2 = 30
BUCKETS = (16, 128, 1024)


def _run(dataset, sampler):
    model = build_model(MODEL, dataset, dim=32, seed=BENCH_SEED)
    trainer = Trainer(
        model, dataset, sampler, make_config(MODEL, EPOCHS, seed=BENCH_SEED)
    )
    trainer.run()
    return evaluate(model, dataset, "test")["mrr"]


def test_ext_hashed_cache_memory_quality(benchmark, report):
    dataset = wn18_like(seed=BENCH_SEED, scale=BENCH_SCALE)

    def run():
        rows = []
        mrr = {}
        mrr["Bernoulli"] = _run(dataset, BernoulliSampler())
        rows.append(("Bernoulli (no cache)", 0.0, mrr["Bernoulli"]))

        exact = NSCachingSampler(cache_size=N1, candidate_size=N2)
        mrr["exact"] = _run(dataset, exact)
        rows.append(
            ("NSCaching exact keys", exact.cache_memory_bytes() / 1024, mrr["exact"])
        )

        for n_buckets in BUCKETS:
            factory = (
                lambda size, n, rng, store_scores, nb=n_buckets: HashedNegativeCache(
                    size, n, rng, n_buckets=nb, store_scores=store_scores
                )
            )
            sampler = NSCachingSampler(
                cache_size=N1, candidate_size=N2, cache_factory=factory
            )
            mrr[n_buckets] = _run(dataset, sampler)
            rows.append(
                (
                    f"NSCaching hashed ({n_buckets} buckets)",
                    sampler.cache_memory_bytes() / 1024,
                    mrr[n_buckets],
                )
            )
        return rows, mrr

    rows, mrr = run_once(benchmark, run)
    report(
        "ext_hashed_cache",
        format_table(
            ("variant", "cache memory (KiB)", "test MRR"),
            rows,
            title="Extension: hashed-cache memory/quality trade-off (TransE, WN18-like)",
        ),
    )
    # Shapes: the exact cache beats the no-cache baseline, hashing stays
    # within a tolerance of it (collisions blur per-key hardness — the
    # trade-off the paper's future-work section anticipates), and the
    # hashed variants respect their memory budget.
    assert mrr["exact"] >= mrr["Bernoulli"]
    assert max(mrr[b] for b in BUCKETS) >= 0.7 * mrr["exact"]
    assert all(mrr[b] >= 0.6 * mrr["exact"] for b in BUCKETS), mrr
