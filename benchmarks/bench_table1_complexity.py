"""Table I — complexity comparison of negative sampling strategies.

The paper's Table I is analytic; here every column is *measured* on the
same TransE discriminator: extra trainable parameters, per-batch sampling
cost (sample + strategy-specific update) at two entity-set sizes, and
extra memory.  Shapes to reproduce:

* NSCaching adds zero trainable parameters; KBGAN/IGAN add a generator;
* IGAN's per-batch cost is O(|E| d): it must grow with |E| markedly
  faster than KBGAN's / NSCaching's O(N d) costs;
* lazy update (n=1) divides NSCaching's refresh cost on off-epochs.
"""

import numpy as np

from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import wn18rr_like
from repro.sampling import BernoulliSampler, IGANSampler, KBGANSampler
from repro.utils.timer import Timer

from conftest import BENCH_SEED, run_once

N1 = N2 = 50
BATCHES = 6
BATCH_SIZE = 256
SMALL_SCALE, LARGE_SCALE = 0.3, 1.5


def _time_sampler(make_sampler, dataset, lazy_epoch=0):
    model = build_model("TransE", dataset, dim=32, seed=BENCH_SEED)
    sampler = make_sampler()
    sampler.bind(model, dataset, rng=BENCH_SEED)
    sampler.on_epoch_start(lazy_epoch)
    rng = np.random.default_rng(0)
    # Warm-up batch excluded from timing (lazy allocations).
    batch = dataset.train[rng.integers(0, len(dataset.train), BATCH_SIZE)]
    sampler.update(batch, sampler.sample(batch))
    timer = Timer()
    for _ in range(BATCHES):
        batch = dataset.train[rng.integers(0, len(dataset.train), BATCH_SIZE)]
        with timer:
            negatives = sampler.sample(batch)
            sampler.update(batch, negatives)
    per_batch_ms = timer.elapsed / BATCHES * 1000
    extra_params = (
        sampler.generator.n_parameters() if getattr(sampler, "generator", None) else 0
    )
    extra_memory = (
        sampler.cache_memory_bytes()
        if isinstance(sampler, NSCachingSampler)
        else extra_params * 8
    )
    return per_batch_ms, extra_params, extra_memory


def test_table1_complexity(benchmark, report):
    small = wn18rr_like(seed=BENCH_SEED, scale=SMALL_SCALE)
    large = wn18rr_like(seed=BENCH_SEED, scale=LARGE_SCALE)

    settings = [
        ("Bernoulli (baseline)", lambda: BernoulliSampler(), 0),
        ("KBGAN", lambda: KBGANSampler(candidate_size=N1), 0),
        ("IGAN", lambda: IGANSampler(expectation_samples=16), 0),
        (
            "NSCaching",
            lambda: NSCachingSampler(cache_size=N1, candidate_size=N2),
            0,
        ),
        (
            "NSCaching lazy n=1 (off-epoch)",
            lambda: NSCachingSampler(cache_size=N1, candidate_size=N2, lazy_epochs=1),
            1,
        ),
    ]

    def run():
        rows = []
        for label, factory, lazy_epoch in settings:
            ms_small, params, memory = _time_sampler(factory, small, lazy_epoch)
            ms_large, _, _ = _time_sampler(factory, large, lazy_epoch)
            growth = ms_large / max(ms_small, 1e-9)
            rows.append(
                (label, f"{ms_small:.2f}", f"{ms_large:.2f}", f"{growth:.2f}",
                 params, memory // 1024)
            )
        return rows

    rows = run_once(benchmark, run)
    report(
        "table1_complexity",
        format_table(
            (
                "strategy",
                f"ms/batch |E|={small.n_entities}",
                f"ms/batch |E|={large.n_entities}",
                "growth",
                "extra trainable params",
                "extra memory (KiB)",
            ),
            rows,
            title=(
                "Table I analogue: measured sampling complexity "
                f"(TransE d=32, m={BATCH_SIZE}, N1=N2={N1})"
            ),
        ),
    )
    by_label = {r[0]: r for r in rows}
    # NSCaching adds no trainable parameters; GAN methods do (Table I).
    assert by_label["NSCaching"][4] == 0
    assert by_label["KBGAN"][4] > 0
    assert by_label["IGAN"][4] > 0
    # IGAN's O(|E| d) generator cost grows with |E| faster than the
    # O(N1 d) methods (the Table I asymptotics).
    igan_growth = float(by_label["IGAN"][3])
    assert igan_growth > float(by_label["KBGAN"][3])
    assert igan_growth > float(by_label["NSCaching"][3])
    # Lazy update skips Alg. 3 on off-epochs -> cheaper than eager.
    assert float(by_label["NSCaching lazy n=1 (off-epoch)"][1]) < float(
        by_label["NSCaching"][1]
    )
