"""Extension — serving throughput: batched vs one-at-a-time queries.

A load generator for :mod:`repro.serve`: spin up the real HTTP endpoint,
replay a fixed query stream over a keep-alive connection — one query per
request, then batches of increasing size — and report queries/sec plus
p50/p99 per-query latency.  Engine-direct rows (no HTTP) are included so
the table separates transport overhead from scoring.

Batching amortises per-request transport, JSON parsing and numpy dispatch
across the whole batch (every query still scores all entities either
way) — the same observation that makes the paper's cache update
(Alg. 3 step 4) score all N1+N2 candidates in one vectorised call.  The
query cache is disabled throughout so the numbers measure scoring, not
cache hits.
"""

import http.client
import json
import threading
import time


from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.data.benchmarks import wn18rr_like
from repro.data.triples import HEAD, REL
from repro.serve import EmbeddingSnapshot, PredictionEngine, make_server

from conftest import BENCH_SEED, run_once

#: Deliberately small tables: the point is the fixed per-request cost that
#: batching amortises, which needs scoring math that does not drown it.
SCALE = 0.1
DIM = 16
N_QUERIES = 512
BATCH_SIZES = (16, 64, 256)
TOP_K = 10
REPEATS = 3  # best-of, to ride out scheduler noise


def _percentile(sorted_values, q):
    index = min(int(round(q / 100 * (len(sorted_values) - 1))), len(sorted_values) - 1)
    return sorted_values[index]


def _replay(send, queries, batch_size):
    """Drive ``send`` over the stream; returns (qps, p50 ms, p99 ms).

    Per-query latency in a batch is the whole request's wall time — what a
    client waiting on that batched request actually observes.  Throughput
    is best-of-``REPEATS``; latencies come from the best run.
    """
    best = None
    for _ in range(REPEATS):
        latencies = []
        start = time.perf_counter()
        for lo in range(0, len(queries), batch_size):
            batch = queries[lo : lo + batch_size]
            t0 = time.perf_counter()
            send(batch)
            latencies.extend([time.perf_counter() - t0] * len(batch))
        qps = len(queries) / (time.perf_counter() - start)
        if best is None or qps > best[0]:
            best = (qps, sorted(latencies))
    qps, latencies = best
    return qps, _percentile(latencies, 50) * 1e3, _percentile(latencies, 99) * 1e3


def test_serve_throughput_batched_vs_single(benchmark, report):
    dataset = wn18rr_like(seed=BENCH_SEED, scale=SCALE)
    model = build_model("TransE", dataset, dim=DIM, seed=BENCH_SEED)
    engine = PredictionEngine(
        EmbeddingSnapshot.from_model(model),
        dataset,
        top_k=TOP_K,
        cache_capacity=0,  # measure scoring, not cache hits
    )
    test = dataset.test
    queries = [
        {"head": int(test[i % len(test), HEAD]),
         "relation": int(test[i % len(test), REL]),
         "k": TOP_K}
        for i in range(N_QUERIES)
    ]

    server = make_server(engine, "127.0.0.1", 0)  # port 0: pick a free port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port)

    def post(batch):
        connection.request(
            "POST", "/predict", json.dumps({"queries": batch}),
            {"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        response.read()
        assert response.status == 200

    def run():
        rows = []
        qps = {}
        post(queries[:16])  # warm the connection and the scoring path
        for batch_size in (1, *BATCH_SIZES):
            label = "one-at-a-time" if batch_size == 1 else f"batch={batch_size}"
            qps[batch_size], p50, p99 = _replay(post, queries, batch_size)
            rows.append((f"http {label}", qps[batch_size], p50, p99))
        for batch_size in (1, BATCH_SIZES[-1]):
            label = "one-at-a-time" if batch_size == 1 else f"batch={batch_size}"
            engine_qps, p50, p99 = _replay(engine.predict, queries, batch_size)
            rows.append((f"engine {label}", engine_qps, p50, p99))
        return rows, qps

    try:
        rows, qps = run_once(benchmark, run)
    finally:
        connection.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    report(
        "ext_serve_throughput",
        format_table(
            ("mode", "queries/sec", "p50 latency (ms)", "p99 latency (ms)"),
            rows,
            title=(
                "Extension: serving throughput, TransE on WN18RR-like "
                f"({dataset.n_entities} entities, dim={DIM}, top-{TOP_K} "
                f"filtered, {N_QUERIES} queries)"
            ),
        ),
    )
    best = max(qps[b] for b in BATCH_SIZES)
    assert best >= 10 * qps[1], (
        f"batched throughput {best:.0f} q/s is under 10x the "
        f"one-at-a-time {qps[1]:.0f} q/s"
    )
