"""Table V — triplet classification accuracy.

TransD and ComplEx on the WN18RR / FB15K237 analogues, comparing Bernoulli
against KBGAN and NSCaching (scratch and pretrain).  Shape: NSCaching's
embeddings classify best; KBGAN-from-scratch is the weak spot for
ComplEx (the paper's instability observation).
"""

import pytest

from repro.bench.harness import build_model, make_config, run_setting
from repro.bench.tables import format_table
from repro.data.benchmarks import fb15k237_like, wn18rr_like
from repro.eval.classification import triplet_classification
from repro.train.pretrain import pretrain

from conftest import BENCH_SCALE, BENCH_SEED, run_once

EPOCHS = {"TransD": 25, "ComplEx": 35}
PRETRAIN_EPOCHS = 8
DIM = 32
N1 = N2 = 30

SETTINGS = (
    ("Bernoulli", "baseline"),
    ("KBGAN", "pretrain"),
    ("KBGAN", "scratch"),
    ("NSCaching", "pretrain"),
    ("NSCaching", "scratch"),
)


def _sampler_kwargs(name):
    if name == "KBGAN":
        return {"candidate_size": N1}
    if name == "NSCaching":
        return {"cache_size": N1, "candidate_size": N2}
    return {}


@pytest.mark.parametrize("model_name", ["TransD", "ComplEx"])
def test_table5_triplet_classification(benchmark, report, model_name):
    datasets = {
        "WN18RR": wn18rr_like(seed=BENCH_SEED, scale=BENCH_SCALE),
        "FB15K237": fb15k237_like(seed=BENCH_SEED, scale=BENCH_SCALE),
    }

    def run():
        rows = []
        accuracy = {}
        for paper_name, dataset in datasets.items():
            warm = build_model(model_name, dataset, dim=DIM, seed=BENCH_SEED)
            state = pretrain(
                warm, dataset, PRETRAIN_EPOCHS,
                make_config(model_name, PRETRAIN_EPOCHS, seed=BENCH_SEED),
            )
            for sampler_name, regime in SETTINGS:
                result = run_setting(
                    dataset,
                    model_name,
                    sampler_name,
                    regime=regime,
                    epochs=EPOCHS[model_name],
                    dim=DIM,
                    seed=BENCH_SEED,
                    sampler_kwargs=_sampler_kwargs(sampler_name),
                    pretrained_state=state if regime == "pretrain" else None,
                )
                model = result.extras["model_obj"]
                outcome = triplet_classification(model, dataset, rng=BENCH_SEED)
                label = (
                    sampler_name if regime == "baseline"
                    else f"{sampler_name}+{regime}"
                )
                rows.append((paper_name, label, 100.0 * outcome.accuracy))
                accuracy[(paper_name, label)] = outcome.accuracy
        return rows, accuracy

    rows, accuracy = run_once(benchmark, run)
    report(
        f"table5_{model_name.lower()}",
        format_table(
            ("dataset", "sampler", "accuracy (%)"),
            rows,
            title=f"Table V analogue: triplet classification ({model_name})",
            precision=2,
        ),
    )
    # Shape: best NSCaching variant beats Bernoulli on each dataset.
    for paper_name in datasets:
        ns_best = max(
            accuracy[(paper_name, "NSCaching+scratch")],
            accuracy[(paper_name, "NSCaching+pretrain")],
        )
        assert ns_best >= accuracy[(paper_name, "Bernoulli")] - 0.02
