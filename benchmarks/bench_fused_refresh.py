"""Extension (X5) — fused score-and-select cache refresh, per model family.

PR 2 vectorised the cache engine, which left model scoring of the
``N1 + N2`` candidate union as the dominant cost of
``NSCachingSampler.update()`` (Alg. 3).  This benchmark measures what the
fused ``score_candidates`` kernels buy on that refresh, per scoring
family, at the paper's defaults (N1 = N2 = 50, batch 1024):

* **reference** — the pre-fusion path: unfused orchestration
  (gather → concatenate → score → select → scatter) with the model's
  generic broadcast scoring (one ``score()`` evaluation per candidate,
  relation work repeated ``N1 + N2`` times per row);
* **kernel** — the same orchestration with the model's fused
  ``score_candidates`` kernel (query built once per row, block scored in
  one batched matmul / broadcast op);
* **fused** — the full fused path: persistent union buffer, fused kernel,
  and ``argpartition`` → ``scatter`` selection without score-gather
  copies.

The ≥2x acceptance bar is asserted for the bilinear family
(DistMult / ComplEx), where the one-matmul kernels pay most; the
translational family gains less (its generic path was already one
broadcast away from the kernel form) and is reported without a floor.

Run under pytest (records wall time, writes benchmarks/out/X5.txt)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fused_refresh.py --benchmark-only

or as a plain script (CI smoke: tiny dataset, three models, relaxed bar)::

    PYTHONPATH=src python benchmarks/bench_fused_refresh.py --smoke
"""

import argparse
import time
from types import MethodType

import numpy as np

from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import fb15k_like
from repro.models.base import KGEModel

SEED = 0
SCALE = 0.3
DIM = 32
#: Paper defaults the ≥2x bilinear assertion is pinned to.
PAPER_N1 = PAPER_N2 = 50
PAPER_BATCH = 1024
#: update() calls per timing arm (warmup excluded).
MAX_BATCHES = 4
PASSES = 2

FAMILIES = {
    "TransE": "translational",
    "TransH": "translational",
    "TransD": "translational",
    "TransR": "translational",
    "RotatE": "translational",
    "DistMult": "bilinear",
    "ComplEx": "bilinear",
    "RESCAL": "bilinear",
    "HolE": "bilinear",
    "SimplE": "bilinear",
}
#: Models the ≥2x acceptance bar applies to.
ASSERTED_MODELS = ("DistMult", "ComplEx")


def generic_scoring_copy(model):
    """A copy of ``model`` scoring through the generic base-class paths.

    Instance-bound methods shadow the subclass overrides, so the copy
    broadcasts every candidate through ``score()`` — the reference a model
    without fused kernels would pay.
    """
    reference = model.copy()
    reference.score_tails = MethodType(KGEModel.score_tails, reference)
    reference.score_heads = MethodType(KGEModel.score_heads, reference)
    reference._score_candidates_impl = MethodType(
        KGEModel._score_candidates_impl, reference
    )
    return reference


def update_ms_per_batch(model, dataset, *, fused, n1, n2, batch_size,
                        max_batches=MAX_BATCHES, passes=PASSES):
    """Milliseconds per ``NSCachingSampler.update()`` call."""
    sampler = NSCachingSampler(cache_size=n1, candidate_size=n2, fused=fused)
    sampler.bind(model, dataset, rng=SEED)
    rows = sampler.precompute_rows(dataset.train)
    starts = range(0, len(dataset.train) - batch_size + 1, batch_size)
    starts = list(starts)[:max_batches]
    first = np.arange(starts[0], starts[0] + batch_size)
    sampler.update(dataset.train[first], dataset.train[first], rows.take(first))

    n_calls = 0
    begin = time.perf_counter()
    for _ in range(passes):
        for start in starts:
            indices = np.arange(start, start + batch_size)
            batch = dataset.train[indices]
            sampler.update(batch, batch, rows.take(indices))
            n_calls += 1
    return (time.perf_counter() - begin) / n_calls * 1000.0


def run_benchmark(models=tuple(FAMILIES), scale=SCALE, batch_size=PAPER_BATCH,
                  n1=PAPER_N1, n2=PAPER_N2, passes=PASSES, dim=DIM):
    """One row per model; returns (rows, fused-over-reference ratios)."""
    dataset = fb15k_like(seed=SEED, scale=scale)
    batch_size = min(batch_size, len(dataset.train))
    rows, ratios = [], {}
    for name in models:
        model = build_model(name, dataset, dim=dim, seed=SEED)
        timings = {
            "reference": update_ms_per_batch(
                generic_scoring_copy(model), dataset, fused=False,
                n1=n1, n2=n2, batch_size=batch_size, passes=passes,
            ),
            "kernel": update_ms_per_batch(
                model.copy(), dataset, fused=False,
                n1=n1, n2=n2, batch_size=batch_size, passes=passes,
            ),
            "fused": update_ms_per_batch(
                model.copy(), dataset, fused=True,
                n1=n1, n2=n2, batch_size=batch_size, passes=passes,
            ),
        }
        ratios[name] = timings["reference"] / timings["fused"]
        rows.append(
            (name, FAMILIES[name],
             round(timings["reference"], 1), round(timings["kernel"], 1),
             round(timings["fused"], 1), round(ratios[name], 2))
        )
    return rows, ratios


def render(rows, batch_size=PAPER_BATCH) -> str:
    return format_table(
        ("model", "family", "reference (ms)", "kernel (ms)", "fused (ms)",
         "speedup"),
        rows,
        title=(
            "X5: fused score-and-select cache refresh — update() ms/batch "
            f"(FB15K-like, d{DIM}, N1=N2={PAPER_N1}, batch {batch_size}; "
            "reference = unfused + generic broadcast scoring)"
        ),
    )


def test_fused_refresh_speedup(benchmark, report):
    from conftest import run_once

    rows, ratios = run_once(benchmark, run_benchmark)
    report("X5", render(rows))
    # The one-matmul bilinear kernels must clear 2x over the generic
    # refresh at paper defaults (measured ~3-10x; the bar leaves CI slack).
    for name in ASSERTED_MODELS:
        assert ratios[name] >= 2.0, (name, ratios)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset, three models, relaxed assertion (CI-friendly)",
    )
    args = parser.parse_args()
    if args.smoke:
        rows, ratios = run_benchmark(
            models=("TransE", "DistMult", "ComplEx"),
            scale=0.1, batch_size=256, passes=1,
        )
        print(render(rows, batch_size=256))
        for name in ASSERTED_MODELS:
            assert ratios[name] >= 1.3, f"{name} speedup collapsed: {ratios[name]}x"
        print(
            "smoke ok: "
            + ", ".join(f"{n} {ratios[n]:.1f}x" for n in ASSERTED_MODELS)
            + " (threshold 1.3x)"
        )
        return 0
    rows, ratios = run_benchmark()
    print(render(rows))
    for name in ASSERTED_MODELS:
        assert ratios[name] >= 2.0, (name, ratios)
    print(
        "ok: "
        + ", ".join(f"{n} {ratios[n]:.1f}x" for n in ASSERTED_MODELS)
        + " at paper defaults (threshold 2x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
