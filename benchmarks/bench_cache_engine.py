"""Extension (X4) — negative-cache engine throughput: array vs dict.

Measures what the array-backed cache engine buys at three altitudes, at
the paper's defaults (N1 = N2 = 50, batch 1024) and around them:

1. **engine** — the cache-op mix that ``sample()`` + ``update()`` issue to
   a :class:`~repro.core.store.CacheStore` per batch: one batch
   key-resolution, a ``gather`` for sampling, then a ``gather`` and a
   CE-counted ``scatter`` for the Alg. 3 refresh.  This is the hot path
   the array engine vectorises (per-key dict lookups, the per-row ``put``
   loop and the pure-Python CE walk all disappear), and where the ≥5x
   target is asserted.
2. **sampler** — full ``NSCachingSampler.sample()+update()`` with real
   TransE scoring.  The shared, already-vectorised work (model scoring of
   all N1+N2 candidates, survivor selection) is identical in both arms —
   it is the paper's intrinsic ``O(m(N1+N2)d)`` cost (Table I) — so the
   end-to-end ratio is smaller by construction.
3. The same sampler-level comparison across batch sizes and N1/N2,
   showing the dict backend's per-key costs scale with batch size while
   the array backend's do not.

Run under pytest (records wall time, writes benchmarks/out/X4.txt)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cache_engine.py --benchmark-only

or as a plain script (CI smoke: tiny dataset, relaxed assertion)::

    PYTHONPATH=src python benchmarks/bench_cache_engine.py --smoke
"""

import argparse
import time

import numpy as np

from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.core.array_cache import ArrayNegativeCache
from repro.core.cache import NegativeCache
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import fb15k_like
from repro.data.keyindex import TripleKeyIndex

SEED = 0
SCALE = 0.3
DIM = 32
#: The paper-default setting the ≥5x engine assertion is pinned to.
PAPER_N1 = PAPER_N2 = 50
PAPER_BATCH = 1024
BATCH_SIZES = (256, 1024, 4096)
CACHE_SIZES = (10, 50)
PASSES = 3

BACKENDS = {"dict": NegativeCache, "array": ArrayNegativeCache}


def _batches(n_triples: int, batch_size: int, passes: int):
    """Full contiguous batches over the split, ``passes`` times."""
    for _ in range(passes):
        for start in range(0, n_triples - batch_size + 1, batch_size):
            yield start


def engine_throughput(backend, dataset, n1, batch_size, passes=PASSES):
    """Cache rows/sec for the per-batch op mix of sample+update.

    Per batch: resolve the batch's cache rows, ``gather`` once (Alg. 2
    step 5), then ``gather`` + CE-counted ``scatter`` (Alg. 3) — model
    scoring excluded, so the number isolates the engine under test.
    """
    index = TripleKeyIndex.from_triples(
        dataset.train, dataset.n_entities, dataset.n_relations
    )
    cache = BACKENDS[backend](n1, dataset.n_entities, np.random.default_rng(SEED))
    cache.attach_index(index.head)
    rng = np.random.default_rng(SEED + 1)
    new_ids = rng.integers(0, dataset.n_entities, size=(batch_size, n1))
    cache.gather(index.head_rows(dataset.train[:batch_size]))  # warmup/init

    n_rows = 0
    start_time = time.perf_counter()
    for start in _batches(len(dataset.train), batch_size, passes):
        batch = dataset.train[start : start + batch_size]
        rows = index.head_rows(batch)
        cache.gather(rows)
        cache.gather(rows)
        cache.scatter(rows, new_ids)
        n_rows += batch_size
    return n_rows / (time.perf_counter() - start_time)


def sampler_throughput(backend, dataset, n1, n2, batch_size, passes=PASSES):
    """Triples/sec through full ``sample()`` + ``update()`` with TransE."""
    model = build_model("TransE", dataset, dim=DIM, seed=SEED)
    sampler = NSCachingSampler(
        cache_size=n1, candidate_size=n2, cache_backend=backend
    )
    sampler.bind(model, dataset, rng=SEED)
    rows = sampler.precompute_rows(dataset.train)
    first = dataset.train[:batch_size]
    sampler.update(first, sampler.sample(first, rows.take(np.arange(batch_size))))

    n_triples = 0
    start_time = time.perf_counter()
    for start in _batches(len(dataset.train), batch_size, passes):
        indices = np.arange(start, start + batch_size)
        batch = dataset.train[indices]
        batch_rows = rows.take(indices)
        negatives = sampler.sample(batch, batch_rows)
        sampler.update(batch, negatives, batch_rows)
        n_triples += batch_size
    return n_triples / (time.perf_counter() - start_time)


def run_benchmark(scale=SCALE, batch_sizes=BATCH_SIZES, cache_sizes=CACHE_SIZES,
                  passes=PASSES):
    """All three comparison tables; returns (rows, ratios-by-level)."""
    dataset = fb15k_like(seed=SEED, scale=scale)
    max_batch = max(b for b in batch_sizes if b <= len(dataset.train))
    rows = []
    ratios = {}

    for level, fn in (
        ("engine", lambda be, n1, bs: engine_throughput(be, dataset, n1, bs, passes)),
        ("sampler", lambda be, n1, bs: sampler_throughput(be, dataset, n1, n1, bs, passes)),
    ):
        for n1 in cache_sizes:
            for batch_size in batch_sizes:
                if batch_size > len(dataset.train):
                    continue
                per_backend = {be: fn(be, n1, batch_size) for be in BACKENDS}
                ratio = per_backend["array"] / per_backend["dict"]
                rows.append(
                    (level, n1, batch_size,
                     round(per_backend["dict"]), round(per_backend["array"]),
                     round(ratio, 2))
                )
                if n1 == PAPER_N1 and batch_size == min(PAPER_BATCH, max_batch):
                    ratios[level] = ratio
    return rows, ratios


def render(rows) -> str:
    return format_table(
        ("level", "N1=N2", "batch", "dict (rows/s)", "array (rows/s)", "speedup"),
        rows,
        title=(
            "X4: negative-cache engine throughput, array vs dict "
            f"(FB15K-like, TransE d{DIM}; engine = gather+CE-scatter op mix, "
            "sampler = full sample()+update())"
        ),
    )


def test_cache_engine_throughput(benchmark, report):
    from conftest import run_once

    rows, ratios = run_once(benchmark, run_benchmark)
    report("X4", render(rows))
    # The vectorised engine must clear 5x on the hot path it replaces, at
    # paper defaults; the end-to-end sampler keeps the shared scoring cost
    # in both arms, so any gain there is real but necessarily smaller.
    assert ratios["engine"] >= 5.0, ratios
    assert ratios["sampler"] >= 1.2, ratios


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset, one setting, relaxed assertion (CI-friendly)",
    )
    args = parser.parse_args()
    if args.smoke:
        rows, ratios = run_benchmark(
            scale=0.1, batch_sizes=(256,), cache_sizes=(PAPER_N1,), passes=2
        )
        print(render(rows))
        engine_ratio = rows[0][5]
        assert engine_ratio >= 2.0, f"engine speedup collapsed: {engine_ratio}x"
        print(f"smoke ok: engine speedup {engine_ratio}x (threshold 2x)")
        return 0
    rows, ratios = run_benchmark()
    print(render(rows))
    assert ratios["engine"] >= 5.0, ratios
    print(f"ok: engine {ratios['engine']:.1f}x, sampler {ratios['sampler']:.1f}x "
          "at paper defaults")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
