"""Extension (X10) — sampled ranking evaluation on million-entity graphs.

Full filtered ranking scores every query against all ``E`` entities —
O(E) per query, which is why `repro evaluate` and per-epoch validation
die at the million-entity scale the parallel-refresh work trains at.
The sampled evaluator (:mod:`repro.eval.sampled`) ranks each query
against ``K`` filtered random negatives plus the true entity instead.
This benchmark pins both halves of that trade:

1. **X10a — agreement at growing K** (small graph, full ranking still
   feasible): sampled MRR/Hits@10 against the full filtered protocol.
   At ``K >= E - 1`` the sampled evaluator must reproduce the full
   ranks *bit-identically* (the pool-enumeration path); at smaller K
   the metrics sit above the full values and converge from above.
2. **X10b — throughput at E = 1M, K = 500** (full ranking intractable):
   wall time of the sampled evaluation over the whole test split vs the
   *extrapolated* cost of full ranking, measured on a few probe queries
   scored with ``chunk=1`` (the only chunk size whose ``[1, E, d]``
   temporaries fit sanely at this scale).  The sampled protocol must be
   >= 20x faster than the extrapolated full cost.

Run under pytest (records wall time, writes benchmarks/out/X10.txt)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sampled_eval.py --benchmark-only

or as a plain script (CI smoke: smaller graph, relaxed assertions)::

    PYTHONPATH=src python benchmarks/bench_sampled_eval.py --smoke
"""

import argparse
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bench.tables import format_table
from repro.data.dataset import KGDataset
from repro.eval.ranking import link_prediction, rank_scores
from repro.eval.sampled import sampled_link_prediction
from repro.models import make_model
from repro.utils.rng import ensure_rng

SEED = 0
DIM = 16
#: The ISSUE's headline operating point.
N_ENTITIES = 1_000_000
N_TRAIN = 500_000
N_TEST = 2_000
N_RELATIONS = 32
NUM_NEGATIVES = 500
#: Queries used to extrapolate the full-ranking cost (each one scores
#: the full [1, E] row twice — tail side and head side).
PROBE_QUERIES = 4
#: Acceptance floor for the sampled-vs-full speedup at the headline point.
MIN_SPEEDUP = 20.0

#: Small-graph operating point for the agreement arm.
AGREE_ENTITIES = 2_000
AGREE_TRAIN = 8_000
AGREE_TEST = 500

OUT_PATH = Path(__file__).parent / "out" / "X10.txt"


@dataclass(frozen=True)
class _AnonVocab:
    """Entity/relation counts without the label machinery.

    :meth:`Vocabulary.anonymous` materialises a million label strings and
    two lookup dicts; the evaluator only ever asks the vocabulary for its
    sizes, so the benchmark skips that cost.
    """

    n_entities: int
    n_relations: int


def synthetic_graph(n_entities, n_train, n_test, n_relations=N_RELATIONS,
                    seed=SEED):
    """A uniform-random KG sized for timing (not for model quality)."""
    rng = ensure_rng(seed)

    def draw(n):
        triples = np.empty((n, 3), dtype=np.int64)
        triples[:, 0] = rng.integers(0, n_entities, size=n)
        triples[:, 1] = rng.integers(0, n_relations, size=n)
        triples[:, 2] = rng.integers(0, n_entities, size=n)
        return triples

    return KGDataset(
        f"synthetic-{n_entities}",
        _AnonVocab(n_entities, n_relations),
        draw(n_train),
        np.empty((0, 3), dtype=np.int64),
        draw(n_test),
    )


# -- X10a: agreement with full ranking at growing K ----------------------------
def run_agreement_benchmark(n_entities=AGREE_ENTITIES, n_train=AGREE_TRAIN,
                            n_test=AGREE_TEST):
    """Returns (rows, exact-at-full-pool flag)."""
    dataset = synthetic_graph(n_entities, n_train, n_test)
    model = make_model(
        "TransE", dataset.n_entities, dataset.n_relations, DIM, rng=SEED
    )
    full = link_prediction(model, dataset, "test")
    rows = []
    exact = False
    for k in (10, 100, n_entities - 1):
        result = sampled_link_prediction(
            model, dataset, "test", num_negatives=k, seed=SEED
        )
        is_exact = np.array_equal(result.ranks, full.ranks)
        exact = exact or (k == n_entities - 1 and is_exact)
        rows.append((
            f"sampled K={k}",
            f"{result.mrr:.4f}",
            f"{result.hits(10):.4f}",
            "bit-identical" if is_exact else f"+{result.mrr - full.mrr:.4f}",
        ))
    rows.append(("full ranking", f"{full.mrr:.4f}", f"{full.hits(10):.4f}", "-"))
    return rows, exact


# -- X10b: throughput at the million-entity point ------------------------------
def probe_full_ranking_cost(model, dataset, probes=PROBE_QUERIES):
    """Extrapolated seconds for full ranking of the whole split.

    Scores ``probes`` queries on each side against all entities with
    ``chunk=1`` and scales the per-query cost to ``2 * len(test)``
    queries.  Filter-mask lookup cost is excluded, which only flatters
    the full protocol — the speedup floor stays honest.
    """
    triples = dataset.test[:probes]
    h, r, t = triples[:, 0], triples[:, 1], triples[:, 2]
    started = time.perf_counter()
    rank_scores(model.score_all_tails(h, r, chunk=1), t, None)
    rank_scores(model.score_all_heads(r, t, chunk=1), h, None)
    per_query = (time.perf_counter() - started) / (2 * probes)
    return per_query * 2 * len(dataset.test)


def run_scale_benchmark(n_entities=N_ENTITIES, n_train=N_TRAIN, n_test=N_TEST,
                        num_negatives=NUM_NEGATIVES, probes=PROBE_QUERIES):
    """Returns (rows, sampled-vs-extrapolated-full speedup)."""
    dataset = synthetic_graph(n_entities, n_train, n_test)
    model = make_model(
        "TransE", dataset.n_entities, dataset.n_relations, DIM, rng=SEED
    )
    n_queries = 2 * n_test

    started = time.perf_counter()
    sampled_link_prediction(
        model, dataset, "test", num_negatives=num_negatives, seed=SEED
    )
    sampled_seconds = time.perf_counter() - started

    full_seconds = probe_full_ranking_cost(model, dataset, probes=probes)
    speedup = full_seconds / sampled_seconds
    rows = [
        (
            f"sampled K={num_negatives}",
            f"{n_queries:,}",
            f"{sampled_seconds:.2f}",
            f"{n_queries / sampled_seconds:,.0f}",
            f"{speedup:.1f}x",
        ),
        (
            "full (extrapolated)",
            f"{n_queries:,}",
            f"{full_seconds:.2f}",
            f"{n_queries / full_seconds:,.1f}",
            "1.0x",
        ),
    ]
    return rows, speedup


def render(agree_rows, scale_rows, n_entities=N_ENTITIES,
           agree_entities=AGREE_ENTITIES) -> str:
    agree_table = format_table(
        ("protocol", "MRR", "Hits@10", "vs full"),
        agree_rows,
        title=(
            f"X10a: sampled vs full filtered ranking "
            f"(TransE d{DIM}, E={agree_entities:,}; K >= E-1 must be exact)"
        ),
    )
    scale_table = format_table(
        ("protocol", "queries", "seconds", "queries/s", "speedup"),
        scale_rows,
        title=(
            f"X10b: evaluation cost at E={n_entities:,} "
            f"(TransE d{DIM}; full ranking extrapolated from "
            f"{PROBE_QUERIES} probe queries per side)"
        ),
    )
    return agree_table + "\n\n" + scale_table


def test_sampled_eval(benchmark, report):
    from conftest import run_once

    def run():
        agree_rows, exact = run_agreement_benchmark()
        scale_rows, speedup = run_scale_benchmark()
        return agree_rows, exact, scale_rows, speedup

    agree_rows, exact, scale_rows, speedup = run_once(benchmark, run)
    report("X10", render(agree_rows, scale_rows))
    assert exact, "K >= E-1 did not reproduce full ranking bit-identically"
    assert speedup >= MIN_SPEEDUP, (
        f"sampled eval only {speedup:.1f}x vs extrapolated full ranking "
        f"(need >= {MIN_SPEEDUP}x)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller graph, relaxed assertions (CI-friendly)",
    )
    args = parser.parse_args()
    if args.smoke:
        agree_rows, exact = run_agreement_benchmark(
            n_entities=500, n_train=2_000, n_test=200
        )
        scale_rows, speedup = run_scale_benchmark(
            n_entities=100_000, n_train=50_000, n_test=500,
            num_negatives=200, probes=2,
        )
        print(render(agree_rows, scale_rows, n_entities=100_000,
                     agree_entities=500))
        assert exact, "K >= E-1 did not reproduce full ranking bit-identically"
        assert speedup >= 5.0, f"sampled eval only {speedup:.1f}x in smoke mode"
        print(f"smoke ok: exact at full pool, {speedup:.1f}x at E=100k")
        return 0
    agree_rows, exact = run_agreement_benchmark()
    scale_rows, speedup = run_scale_benchmark()
    text = render(agree_rows, scale_rows)
    print(text)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(text + "\n", encoding="utf-8")
    print(f"written to {OUT_PATH}")
    assert exact, "K >= E-1 did not reproduce full ranking bit-identically"
    assert speedup >= MIN_SPEEDUP, f"only {speedup:.1f}x (need >= {MIN_SPEEDUP}x)"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
