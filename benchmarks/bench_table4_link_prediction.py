"""Table IV — the paper's main result: link prediction across samplers.

For every scoring function x dataset, compare Bernoulli against
KBGAN(+-pretrain) and NSCaching(+-pretrain) on filtered MRR / MR / Hits@10.
Shape to reproduce (DESIGN.md §5): NSCaching wins MRR/Hits@10 everywhere;
NSCaching-from-scratch stays close to NSCaching-with-pretrain; KBGAN
benefits from pretrain much more.

Scaled down relative to the paper (synthetic analogues, fewer epochs);
one pytest-benchmark entry per scoring function keeps the suite's timing
table readable.
"""

import pytest

from repro.bench.harness import build_model, make_config, run_setting
from repro.bench.tables import format_table
from repro.data.benchmarks import BENCHMARKS
from repro.models import PAPER_MODELS
from repro.train.pretrain import pretrain

from conftest import BENCH_SCALE, BENCH_SEED, run_once

EPOCHS = {"TransE": 25, "TransH": 25, "TransD": 25, "DistMult": 35, "ComplEx": 35}
PRETRAIN_EPOCHS = 8
DIM = 32
N1 = N2 = 30

SETTINGS = (
    ("Bernoulli", "baseline"),
    ("KBGAN", "pretrain"),
    ("KBGAN", "scratch"),
    ("NSCaching", "pretrain"),
    ("NSCaching", "scratch"),
)


def _sampler_kwargs(sampler_name):
    if sampler_name == "KBGAN":
        return {"candidate_size": N1}
    if sampler_name == "NSCaching":
        return {"cache_size": N1, "candidate_size": N2}
    return {}


@pytest.mark.parametrize("model_name", PAPER_MODELS)
def test_table4_link_prediction(benchmark, report, model_name):
    def run():
        lines = []
        winners = []
        for paper_name, loader in BENCHMARKS.items():
            dataset = loader(seed=BENCH_SEED, scale=BENCH_SCALE)
            # One shared Bernoulli pretrain per (model, dataset), as in the paper.
            warm = build_model(model_name, dataset, dim=DIM, seed=BENCH_SEED)
            state = pretrain(
                warm, dataset, PRETRAIN_EPOCHS,
                make_config(model_name, PRETRAIN_EPOCHS, seed=BENCH_SEED),
            )
            rows = []
            for sampler_name, regime in SETTINGS:
                result = run_setting(
                    dataset,
                    model_name,
                    sampler_name,
                    regime=regime,
                    epochs=EPOCHS[model_name],
                    dim=DIM,
                    seed=BENCH_SEED,
                    sampler_kwargs=_sampler_kwargs(sampler_name),
                    pretrained_state=state if regime == "pretrain" else None,
                )
                rows.append(result.row(keys=("mrr", "mr", "hits@10")))
            lines.append(
                format_table(
                    ("sampler", "MRR", "MR", "Hits@10"),
                    rows,
                    title=f"[{model_name} on {paper_name} analogue]",
                )
            )
            best_mrr = max(r[1] for r in rows)
            nscaching_best = max(r[1] for r in rows if str(r[0]).startswith("NSCaching"))
            bernoulli_mrr = next(r[1] for r in rows if r[0] == "Bernoulli")
            winners.append((paper_name, nscaching_best, bernoulli_mrr, best_mrr))
        return "\n\n".join(lines), winners

    text, winners = run_once(benchmark, run)
    report(f"table4_{model_name.lower()}", text)
    # Shape check: NSCaching's best regime beats Bernoulli on MRR on the
    # majority of datasets AND on the cross-dataset mean (the paper's
    # full-scale claim is per-cell dominance; EXPERIMENTS.md records the
    # per-cell outcomes at this miniature scale).
    n_wins = sum(1 for _, ns, bern, _ in winners if ns > bern)
    mean_ns = sum(ns for _, ns, _, _ in winners) / len(winners)
    mean_bern = sum(bern for _, _, bern, _ in winners) / len(winners)
    assert n_wins >= 2, f"NSCaching won only {n_wins}/4 datasets: {winners}"
    assert mean_ns > mean_bern, winners
