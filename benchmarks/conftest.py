"""Shared benchmark plumbing.

Each benchmark regenerates one paper table/figure (see DESIGN.md §4):
it runs the experiment once inside ``benchmark.pedantic`` (so
pytest-benchmark records its wall time), prints the paper-shaped rows to
the real terminal (bypassing capture, so ``pytest benchmarks/
--benchmark-only | tee`` keeps them), and writes the same text under
``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

#: Global scale knob: dataset size multiplier for benchmark runs.  The
#: experiments keep their shape at this scale while the full suite stays
#: in the tens of minutes on a laptop CPU.
BENCH_SCALE = 0.3
BENCH_SEED = 0


@pytest.fixture
def report(capsys):
    """Print benchmark output past pytest's capture and persist it."""

    def _report(exp_id: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{exp_id}.txt").write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n===== {exp_id} =====")
            print(text)

    return _report


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
