"""Extension (X9) — dirty-row parameter sync + overlapped refresh pipeline.

The pooled refresh (X7) keeps workers on current embeddings with one
parameter publish per batch; at million-entity scale a *full* publish is
the dominant cost and worker counts stop paying.  This benchmark pins
the two mechanisms that remove it from the critical path:

1. **X9a — sync bytes/time at growing entity counts**: a full-copy
   publish vs the dirty-row delta publish
   (:class:`~repro.parallel.dirty.DirtyRowTracker`) with a realistic
   per-batch dirty set.  Per-sync bytes must scale with the dirty
   fraction — a sliver of the table at scale — not the table size.
2. **X9b — overlap hiding**: trainer phase seconds with the
   double-buffered dispatch/collect pipeline on vs off.  The visible
   refresh cost under overlap (dispatch + un-hidden collect wait) must
   be <= 50% of the synchronous refresh phase on multi-core hosts; a
   single-core container cannot hide work behind the step, so there the
   honest numbers are reported and the assertion is skipped (same
   gating as X7).
3. **X9c — refresh_period compounding**: ``update()`` throughput and
   per-batch sync bytes at ``refresh_period`` 1/2/4 — the lazy
   within-epoch schedule (arXiv 2010.14227) divides both by ~k on top
   of the dirty-sync win.

Run under pytest (records wall time, writes benchmarks/out/X9.txt)::

    PYTHONPATH=src python -m pytest benchmarks/bench_async_refresh.py --benchmark-only

or as a plain script (CI smoke: tiny sizes, relaxed assertions)::

    PYTHONPATH=src python benchmarks/bench_async_refresh.py --smoke
"""

import argparse
import multiprocessing as mp
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import fb15k_like
from repro.models import make_model
from repro.obs.registry import MetricsRegistry
from repro.parallel.pool import RefreshPool
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

SEED = 0
SCALE = 0.3
DIM = 32
#: Embedding width of the X9a sync-cost arm (kept lean so the 1M-entity
#: table fits shared memory comfortably: 1M x 16 x 8B = 128 MiB).
SYNC_DIM = 16
#: Entity-count grid of the sync-cost arm (the ISSUE's million-entity point).
ENTITY_GRID = (50_000, 250_000, 1_000_000)
#: Rows dirtied per sync — a 1024-triple batch touches ~4 entity slots each.
DIRTY_ROWS = 4096
SYNCS = 5
PAPER_N1 = PAPER_N2 = 50
PAPER_BATCH = 1024
PERIOD_GRID = (1, 2, 4)
#: Cores needed before the >= 50% overlap-hiding assertion is meaningful.
MIN_CPUS_FOR_ASSERT = 4

OUT_PATH = Path(__file__).parent / "out" / "X9.txt"


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# -- X9a: full-copy vs dirty-row publish cost ---------------------------------
def sync_cost(n_entities, *, dirty_sync, dim=SYNC_DIM, dirty_rows=DIRTY_ROWS,
              syncs=SYNCS):
    """(bytes/sync, ms/sync) of steady-state parameter publishes.

    A cache-less pool isolates the publish itself: the first (always
    full) sync is taken out of band, then each measured sync marks a
    batch-realistic dirty set and publishes — the delta path ships the
    marked slices, the full path re-copies every table.
    """
    model = make_model("TransE", n_entities, 16, dim, rng=SEED)
    pool = RefreshPool(
        model, {}, n_entities=n_entities, candidate_size=1,
        update_strategy="importance", seed=SEED, n_workers=1,
        use_processes=False, dirty_sync=dirty_sync,
    )
    try:
        pool.start()
        pool.sync_params()  # first publish is full by contract
        rng = np.random.default_rng(1)
        total_bytes = 0
        started = time.perf_counter()
        for _ in range(syncs):
            pool.mark_dirty(
                "entity", rng.integers(0, n_entities, size=dirty_rows)
            )
            pool.mark_dirty("relation", rng.integers(0, 16, size=64))
            total_bytes += pool.sync_params().bytes_copied
        elapsed = time.perf_counter() - started
        return total_bytes / syncs, elapsed / syncs * 1e3
    finally:
        pool.close()


def run_sync_benchmark(entity_grid=ENTITY_GRID, dim=SYNC_DIM,
                       dirty_rows=DIRTY_ROWS, syncs=SYNCS):
    """Returns (rows, worst byte ratio dirty/full across the grid)."""
    rows = []
    worst_ratio = 0.0
    for n_entities in entity_grid:
        full_bytes, full_ms = sync_cost(
            n_entities, dirty_sync=False, dim=dim,
            dirty_rows=dirty_rows, syncs=syncs,
        )
        dirty_bytes, dirty_ms = sync_cost(
            n_entities, dirty_sync=True, dim=dim,
            dirty_rows=dirty_rows, syncs=syncs,
        )
        ratio = dirty_bytes / full_bytes
        worst_ratio = max(worst_ratio, ratio)
        rows.append((
            f"{n_entities:,}",
            f"{full_bytes / 1e6:.1f}",
            f"{full_ms:.2f}",
            f"{dirty_bytes / 1e6:.3f}",
            f"{dirty_ms:.2f}",
            f"{ratio:.4f}",
        ))
    return rows, worst_ratio


# -- X9b: overlap hiding -------------------------------------------------------
def overlap_phases(dataset, *, overlap, workers=2, epochs=2,
                   batch_size=512, n1=8, n2=8):
    """Disjoint trainer phase seconds for one pooled-refresh run."""
    model = build_model("TransE", dataset, dim=DIM, seed=SEED)
    sampler = NSCachingSampler(
        cache_size=n1, candidate_size=n2, cache_backend="sharded-array",
        cache_options={"n_shards": 4}, refresh_workers=workers,
        refresh_overlap=overlap,
    )
    trainer = Trainer(
        model, dataset, sampler,
        TrainConfig(epochs=epochs, batch_size=batch_size, seed=SEED),
        profile=True,
    )
    try:
        trainer.run()
        return trainer.profile_report()
    finally:
        trainer.close()


def run_overlap_benchmark(scale=SCALE, epochs=2, batch_size=512):
    """Returns (rows, hidden fraction of the refresh wall time)."""
    dataset = fb15k_like(seed=SEED, scale=scale)
    batch_size = min(batch_size, len(dataset.train))
    sync = overlap_phases(
        dataset, overlap=False, epochs=epochs, batch_size=batch_size
    )
    over = overlap_phases(
        dataset, overlap=True, epochs=epochs, batch_size=batch_size
    )
    sync_refresh = sync["parallel_refresh"]
    visible = over["parallel_refresh"] + over["refresh_overlap"]
    hidden = 1.0 - visible / sync_refresh if sync_refresh > 0 else 0.0
    rows = [
        ("synchronous", f"{sync_refresh:.3f}", "0.000", "-"),
        ("overlapped", f"{over['parallel_refresh']:.3f}",
         f"{over['refresh_overlap']:.3f}", f"{hidden:.3f}"),
    ]
    return rows, hidden


# -- X9c: refresh_period compounding ------------------------------------------
def period_throughput(dataset, *, period, batch_size, n1=PAPER_N1,
                      n2=PAPER_N2, passes=2):
    """(update() triples/s, sync bytes per batch) at one refresh period."""
    model = build_model("TransE", dataset, dim=DIM, seed=SEED)
    sampler = NSCachingSampler(
        cache_size=n1, candidate_size=n2, cache_backend="sharded-array",
        cache_options={"n_shards": 4}, refresh_workers=2,
        refresh_processes=False, refresh_period=period,
    )
    sampler.bind(model, dataset, rng=SEED)
    registry = MetricsRegistry()
    sampler.metrics = registry
    rows = sampler.precompute_rows(dataset.train)
    try:
        first = np.arange(min(batch_size, len(dataset.train)))
        sampler.update(dataset.train[first], dataset.train[first], rows.take(first))
        sampler.on_epoch_start(0)

        n_triples = 0
        n_batches = 0
        start_time = time.perf_counter()
        for _ in range(passes):
            for start in range(0, len(dataset.train) - batch_size + 1, batch_size):
                indices = np.arange(start, start + batch_size)
                batch = dataset.train[indices]
                sampler.update(batch, batch, rows.take(indices))
                n_triples += batch_size
                n_batches += 1
        elapsed = time.perf_counter() - start_time
        sync_bytes = registry.value("param_sync_bytes_total") or 0
        return n_triples / elapsed, sync_bytes / n_batches
    finally:
        sampler.close()


def run_period_benchmark(scale=SCALE, batch_size=PAPER_BATCH,
                         period_grid=PERIOD_GRID, n1=PAPER_N1, n2=PAPER_N2,
                         passes=2):
    """Returns (rows, throughput speedup of the largest period over k=1)."""
    dataset = fb15k_like(seed=SEED, scale=scale)
    batch_size = min(batch_size, len(dataset.train))
    rows = []
    base = None
    speedup = 0.0
    for period in period_grid:
        throughput, bytes_per_batch = period_throughput(
            dataset, period=period, batch_size=batch_size,
            n1=n1, n2=n2, passes=passes,
        )
        if base is None:
            base = throughput
        speedup = throughput / base
        rows.append((
            f"k={period}", round(throughput),
            f"{bytes_per_batch / 1e6:.3f}", round(speedup, 3),
        ))
    return rows, speedup


def render(sync_rows, overlap_rows, period_rows) -> str:
    cpus = _cpu_count()
    sync_table = format_table(
        ("entities", "full MB/sync", "full ms", "dirty MB/sync",
         "dirty ms", "bytes ratio"),
        sync_rows,
        title=(
            "X9a: parameter publish cost, full copy vs dirty-row delta "
            f"(TransE d{SYNC_DIM}, {DIRTY_ROWS} rows dirtied per sync)"
        ),
    )
    overlap_table = format_table(
        ("pipeline", "dispatch+wait s", "collect wait s", "hidden fraction"),
        overlap_rows,
        title=(
            "X9b: refresh wall time visible to the hot loop, synchronous "
            f"vs overlapped (2 workers; host has {cpus} CPU(s) — hiding "
            "requires free cores)"
        ),
    )
    period_table = format_table(
        ("refresh period", "update() triples/s", "sync MB/batch", "speedup"),
        period_rows,
        title=(
            "X9c: lazy within-epoch refresh schedule — period k divides "
            "refresh and sync cost (dirty sync on, inline 2-worker pool)"
        ),
    )
    return sync_table + "\n\n" + overlap_table + "\n\n" + period_table


def test_async_refresh(benchmark, report):
    from conftest import run_once

    def run():
        sync_rows, ratio = run_sync_benchmark()
        overlap_rows, hidden = run_overlap_benchmark()
        period_rows, period_speedup = run_period_benchmark()
        return sync_rows, ratio, overlap_rows, hidden, period_rows, period_speedup

    sync_rows, ratio, overlap_rows, hidden, period_rows, period_speedup = (
        run_once(benchmark, run)
    )
    report("X9", render(sync_rows, overlap_rows, period_rows))
    # Delta publishes must ship a sliver of the table at scale.
    assert ratio <= 0.10, f"dirty sync ships {ratio:.1%} of full bytes"
    # Lazier schedules must not get slower.
    assert period_speedup >= 1.2, f"period {PERIOD_GRID[-1]} only {period_speedup:.2f}x"
    if _cpu_count() >= MIN_CPUS_FOR_ASSERT and "fork" in mp.get_all_start_methods():
        assert hidden >= 0.5, f"overlap hid only {hidden:.1%} of the refresh"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes, relaxed assertions (CI-friendly)",
    )
    args = parser.parse_args()
    if args.smoke:
        sync_rows, ratio = run_sync_benchmark(
            entity_grid=(5_000, 20_000), dim=8, dirty_rows=512, syncs=2
        )
        overlap_rows, hidden = run_overlap_benchmark(
            scale=0.1, epochs=1, batch_size=256
        )
        period_rows, period_speedup = run_period_benchmark(
            scale=0.1, batch_size=256, period_grid=(1, 2), n1=8, n2=8, passes=1
        )
        print(render(sync_rows, overlap_rows, period_rows))
        assert ratio < 1.0, f"dirty sync did not reduce bytes: {ratio:.2f}"
        assert period_speedup >= 1.0, f"period slowdown: {period_speedup:.2f}x"
        print(
            f"smoke ok: dirty sync ships {ratio:.1%} of full bytes, "
            f"period 2 at {period_speedup:.2f}x, overlap hid {hidden:.1%}"
        )
        return 0
    sync_rows, ratio = run_sync_benchmark()
    overlap_rows, hidden = run_overlap_benchmark()
    period_rows, period_speedup = run_period_benchmark()
    cpus = _cpu_count()
    multicore = cpus >= MIN_CPUS_FOR_ASSERT and "fork" in mp.get_all_start_methods()
    if multicore:
        note = f"overlap hid {hidden:.1%} of the refresh wall time (threshold 50%)."
    else:
        note = (
            f"note: host has {cpus} CPU(s); the >= 50% overlap-hiding "
            f"assertion needs >= {MIN_CPUS_FOR_ASSERT} free cores and was "
            "skipped — with every process sharing one core the overlapped "
            "pipeline cannot run the refresh concurrently with the step, "
            "so the table above is the honest single-core measurement "
            "(the dirty-sync and period rows do not depend on cores)."
        )
    text = render(sync_rows, overlap_rows, period_rows) + "\n" + note
    print(text)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(text + "\n", encoding="utf-8")
    print(f"written to {OUT_PATH}")
    assert ratio <= 0.10, f"dirty sync ships {ratio:.1%} of full bytes"
    assert period_speedup >= 1.2, f"period only {period_speedup:.2f}x"
    if multicore:
        assert hidden >= 0.5, f"overlap hid only {hidden:.1%}"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
