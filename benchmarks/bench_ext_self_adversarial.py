"""Extension — self-adversarial sampling vs NSCaching.

RotatE-style self-adversarial sampling occupies the paper's design point
(hard negatives without a GAN) but rescouts fresh uniform candidates every
batch instead of caching.  Shape to measure: both beat Bernoulli; the
cache gets hard negatives at similar quality while scoring far fewer
candidates per batch once lazy updates are enabled.
"""


from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import wn18rr_like
from repro.eval.protocol import evaluate
from repro.sampling import BernoulliSampler, SelfAdversarialSampler
from repro.train.trainer import Trainer

from conftest import BENCH_SCALE, BENCH_SEED, run_once

MODEL = "TransE"
EPOCHS = 25
N = 30


def test_ext_self_adversarial_comparison(benchmark, report):
    dataset = wn18rr_like(seed=BENCH_SEED, scale=BENCH_SCALE)

    def run():
        rows = []
        mrr = {}
        settings = [
            ("Bernoulli", BernoulliSampler()),
            ("SelfAdv (alpha=1)", SelfAdversarialSampler(candidate_size=N, alpha=1.0)),
            ("NSCaching", NSCachingSampler(cache_size=N, candidate_size=N)),
            (
                "NSCaching lazy n=1",
                NSCachingSampler(cache_size=N, candidate_size=N, lazy_epochs=1),
            ),
        ]
        for label, sampler in settings:
            model = build_model(MODEL, dataset, dim=32, seed=BENCH_SEED)
            trainer = Trainer(
                model, dataset, sampler, make_config(MODEL, EPOCHS, seed=BENCH_SEED)
            )
            trainer.run()
            metrics = evaluate(model, dataset, "test")
            mrr[label] = metrics["mrr"]
            rows.append(
                (label, metrics["mrr"], metrics["hits@10"], f"{trainer.train_seconds:.1f}")
            )
        return rows, mrr

    rows, mrr = run_once(benchmark, run)
    report(
        "ext_self_adversarial",
        format_table(
            ("sampler", "test MRR", "test Hits@10", "train time (s)"),
            rows,
            title="Extension: self-adversarial sampling vs NSCaching (TransE, WN18RR-like)",
        ),
    )
    # Both hard-negative methods should beat or match Bernoulli.
    assert mrr["NSCaching"] >= mrr["Bernoulli"]
    assert mrr["SelfAdv (alpha=1)"] >= mrr["Bernoulli"] * 0.9
