"""Figure 1 — CCDF of the negative-triple score distribution.

Train Bernoulli-TransD on the WN18 analogue, checkpointing along the way,
then print ``F_D(x) = P(D >= x)`` where ``D = f(h, r, t') - f(h, r, t)``:

* (a) for one fixed triple across training epochs — the curve must drift
  left (negatives get easier) and stay highly skewed;
* (b) for several triples at the final epoch — the skew must hold
  regardless of which positive is probed.

The margin marker of the paper corresponds to ``D >= -gamma``: the share
of negatives still carrying gradient.
"""

import numpy as np

from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.data.benchmarks import wn18_like
from repro.eval.ccdf import ccdf, negative_distances, skewness
from repro.sampling import BernoulliSampler
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

from conftest import BENCH_SCALE, BENCH_SEED, run_once

CHECKPOINTS = (0, 2, 5, 10, 20, 40)
GRID = np.array([-3.0, -2.0, -1.0, -0.5, 0.0, 0.5])
MARGIN = 2.0


def test_fig1_negative_score_ccdf(benchmark, report):
    dataset = wn18_like(seed=BENCH_SEED, scale=BENCH_SCALE)
    probe = dataset.test[0]

    def run():
        model = build_model("TransD", dataset, dim=32, seed=BENCH_SEED)
        trainer = Trainer(
            model, dataset, BernoulliSampler(),
            TrainConfig(epochs=0, batch_size=256, learning_rate=0.01,
                        margin=MARGIN, seed=BENCH_SEED),
        )
        # (a) one triple, several epochs.
        rows_a = []
        gradient_share = {}
        previous = 0
        for epoch in CHECKPOINTS:
            trainer.run(epochs=epoch - previous)
            previous = epoch
            distances = negative_distances(model, dataset, probe, side="tail")
            _, probs = ccdf(distances, xs=GRID)
            share = float(np.mean(distances >= -MARGIN))
            gradient_share[epoch] = share
            rows_a.append((epoch, *probs, share, skewness(distances)))
        # (b) several triples at the final model.
        rows_b = []
        for i in range(min(5, len(dataset.test))):
            distances = negative_distances(model, dataset, dataset.test[i], side="tail")
            _, probs = ccdf(distances, xs=GRID)
            rows_b.append((f"triple {i}", *probs, skewness(distances)))
        return rows_a, rows_b, gradient_share

    rows_a, rows_b, gradient_share = run_once(benchmark, run)
    grid_headers = tuple(f"P(D>={x:g})" for x in GRID)
    text_a = format_table(
        ("epoch", *grid_headers, "P(D>=-gamma)", "skewness"),
        rows_a,
        title="Figure 1(a) analogue: CCDF of D for one triple across epochs",
        precision=3,
    )
    text_b = format_table(
        ("probe", *grid_headers, "skewness"),
        rows_b,
        title="Figure 1(b) analogue: CCDF of D across triples (final model)",
        precision=3,
    )
    report("fig1_score_distribution", text_a + "\n\n" + text_b)

    # Shape 1: training shrinks the share of gradient-carrying negatives.
    assert gradient_share[CHECKPOINTS[-1]] < gradient_share[0]
    # Shape 2: large-score negatives are rare after training (skew).
    final_row = rows_a[-1]
    p_above_zero = final_row[1 + list(GRID).index(0.0)]
    assert p_above_zero < 0.2
