"""Figure 9 — sensitivity to the cache size N1 and candidate size N2.

Sweep N1 with N2 fixed and N2 with N1 fixed (TransD on the WN18 analogue).
Paper shapes: performance is stable except when either size is very small;
N1 = N2 is a good balance.
"""


from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import wn18_like
from repro.eval.protocol import evaluate
from repro.train.trainer import Trainer

from conftest import BENCH_SCALE, BENCH_SEED, run_once

MODEL = "TransD"
EPOCHS = 25
SIZES = (2, 10, 30)
FIXED = 30


def _final_mrr(dataset, n1, n2):
    model = build_model(MODEL, dataset, dim=32, seed=BENCH_SEED)
    sampler = NSCachingSampler(cache_size=n1, candidate_size=n2)
    Trainer(
        model, dataset, sampler, make_config(MODEL, EPOCHS, seed=BENCH_SEED)
    ).run()
    return evaluate(model, dataset, "test")["mrr"]


def test_fig9_cache_size_sensitivity(benchmark, report):
    dataset = wn18_like(seed=BENCH_SEED, scale=BENCH_SCALE)

    def run():
        rows = []
        sweep_n1 = {}
        sweep_n2 = {}
        for n1 in SIZES:
            mrr = _final_mrr(dataset, n1, FIXED)
            sweep_n1[n1] = mrr
            rows.append((f"N1={n1}, N2={FIXED}", mrr))
        for n2 in SIZES:
            mrr = _final_mrr(dataset, FIXED, n2)
            sweep_n2[n2] = mrr
            rows.append((f"N1={FIXED}, N2={n2}", mrr))
        return rows, sweep_n1, sweep_n2

    rows, sweep_n1, sweep_n2 = run_once(benchmark, run)
    report(
        "fig9_sensitivity",
        format_table(
            ("setting", "test MRR"),
            rows,
            title="Figure 9 analogue: sensitivity to N1 (top) and N2 (bottom)",
        ),
    )
    # Paper shape: the mid-range settings are stable — max/min ratio among
    # N1 >= 10 stays small, and the same for N2 >= 10.
    stable_n1 = [sweep_n1[s] for s in SIZES if s >= 10]
    stable_n2 = [sweep_n2[s] for s in SIZES if s >= 10]
    assert max(stable_n1) <= 2.0 * min(stable_n1), sweep_n1
    assert max(stable_n2) <= 2.0 * min(stable_n2), sweep_n2
