"""Table II — statistics of the four benchmark dataset analogues."""


from repro.bench.tables import format_table
from repro.data.benchmarks import BENCHMARKS

from conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_table2_dataset_statistics(benchmark, report):
    def run():
        rows = []
        for paper_name, loader in BENCHMARKS.items():
            ds = loader(seed=BENCH_SEED, scale=BENCH_SCALE)
            s = ds.summary()
            rows.append(
                (paper_name, ds.name, s["entities"], s["relations"],
                 s["train"], s["valid"], s["test"])
            )
        return rows

    rows = run_once(benchmark, run)
    report(
        "table2_datasets",
        format_table(
            ("paper dataset", "analogue", "#entity", "#relation",
             "#train", "#valid", "#test"),
            rows,
            title="Table II analogue: dataset statistics "
            f"(scale={BENCH_SCALE}, seed={BENCH_SEED})",
        ),
    )
    # The WN18 -> WN18RR relation-count drop (inverse removal) must show.
    by_name = {r[0]: r for r in rows}
    assert by_name["WN18"][3] > by_name["WN18RR"][3]
