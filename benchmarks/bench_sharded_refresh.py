"""Extension (X7) — sharded cache refresh: update() throughput vs workers.

NSCaching's per-batch refresh dominates training wall time; sharding the
cache row-space lets it run on multiple processes
(:mod:`repro.parallel`).  This benchmark measures, at the paper defaults
(N1 = N2 = 50, batch 1024):

1. **1-worker overhead floor** — the ``sharded-array`` backend through
   the sequential refresh vs the plain ``array`` backend: the cost of
   shared-memory storage + shard bookkeeping with no parallelism to pay
   for it (must stay within ~1.25x).
2. **scaling** — full ``NSCachingSampler.update()`` throughput across a
   ``n_shards x refresh_workers`` grid, including the parallel machinery
   at 1 worker (task split + per-shard streams, inline) so the
   process-offload win is separable from the orchestration cost.

The speedup assertion (>= 2x at 4 workers) only runs on machines with at
least 4 CPUs — a single-core container cannot exhibit multiprocess
speedup, so there the grid is reported with the CPU count and the
assertion is skipped.  Run under pytest (records wall time, writes
benchmarks/out/X7.txt)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_refresh.py --benchmark-only

or as a plain script (CI smoke: tiny dataset, no speedup assertion)::

    PYTHONPATH=src python benchmarks/bench_sharded_refresh.py --smoke
"""

import argparse
import multiprocessing as mp
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import fb15k_like

SEED = 0
SCALE = 0.3
DIM = 32
#: The paper-default setting the scaling grid is pinned to.
PAPER_N1 = PAPER_N2 = 50
PAPER_BATCH = 1024
PASSES = 3
#: Worker counts of the scaling arm (1 = inline parallel machinery).
WORKER_GRID = (1, 2, 4)
#: Cores needed before the >= 2x speedup assertion is meaningful.
MIN_CPUS_FOR_ASSERT = 4

OUT_PATH = Path(__file__).parent / "out" / "X7.txt"


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _batches(n_triples: int, batch_size: int, passes: int):
    for _ in range(passes):
        for start in range(0, n_triples - batch_size + 1, batch_size):
            yield start


def update_throughput(dataset, *, backend, n1, n2, batch_size, passes=PASSES,
                      workers=1, n_shards=1, use_processes=True):
    """Triples/sec through the full ``update()`` with TransE scoring."""
    model = build_model("TransE", dataset, dim=DIM, seed=SEED)
    options = {"n_shards": n_shards} if backend == "sharded-array" else None
    sampler = NSCachingSampler(
        cache_size=n1, candidate_size=n2, cache_backend=backend,
        cache_options=options, refresh_workers=workers,
        refresh_processes=use_processes,
    )
    sampler.bind(model, dataset, rng=SEED)
    rows = sampler.precompute_rows(dataset.train)
    try:
        first = np.arange(min(batch_size, len(dataset.train)))
        sampler.update(dataset.train[first], dataset.train[first], rows.take(first))

        n_triples = 0
        start_time = time.perf_counter()
        for start in _batches(len(dataset.train), batch_size, passes):
            indices = np.arange(start, start + batch_size)
            batch = dataset.train[indices]
            sampler.update(batch, batch, rows.take(indices))
            n_triples += batch_size
        return n_triples / (time.perf_counter() - start_time)
    finally:
        sampler.close()


def run_benchmark(scale=SCALE, batch_size=PAPER_BATCH, n1=PAPER_N1,
                  n2=PAPER_N2, passes=PASSES, worker_grid=WORKER_GRID):
    """Returns (floor rows, scaling rows, best speedup at max workers)."""
    dataset = fb15k_like(seed=SEED, scale=scale)
    batch_size = min(batch_size, len(dataset.train))

    baseline = update_throughput(
        dataset, backend="array", n1=n1, n2=n2,
        batch_size=batch_size, passes=passes,
    )
    sequential_sharded = update_throughput(
        dataset, backend="sharded-array", n1=n1, n2=n2,
        batch_size=batch_size, passes=passes, workers=1, n_shards=4,
    )
    floor = baseline / sequential_sharded
    floor_rows = [
        ("array (sequential)", round(baseline), 1.0),
        ("sharded-array, seq. refresh (4 shards)",
         round(sequential_sharded), round(floor, 3)),
    ]

    scaling_rows = []
    best_at_max_workers = 0.0
    for workers in worker_grid:
        n_shards = max(workers, 4)
        throughput = update_throughput(
            dataset, backend="sharded-array", n1=n1, n2=n2,
            batch_size=batch_size, passes=passes,
            workers=max(workers, 2) if workers == 1 else workers,
            n_shards=n_shards,
            use_processes=workers > 1,
        )
        label = (
            f"{n_shards} shards x 1 worker (inline pool)"
            if workers == 1
            else f"{n_shards} shards x {workers} workers"
        )
        speedup = throughput / baseline
        scaling_rows.append((label, round(throughput), round(speedup, 3)))
        if workers == max(worker_grid):
            best_at_max_workers = speedup
    return floor_rows, scaling_rows, floor, best_at_max_workers


def render(floor_rows, scaling_rows) -> str:
    cpus = _cpu_count()
    floor_table = format_table(
        ("variant", "update() triples/s", "slowdown vs array"),
        floor_rows,
        title=(
            "X7a: 1-worker overhead floor — shared-memory sharded storage "
            f"through the sequential refresh (TransE d{DIM}, "
            f"N1=N2={PAPER_N1}, batch {PAPER_BATCH})"
        ),
    )
    scaling_table = format_table(
        ("configuration", "update() triples/s", "speedup vs array"),
        scaling_rows,
        title=(
            "X7b: parallel refresh scaling over n_shards x refresh_workers "
            f"(same workload; host has {cpus} CPU(s) — speedups require "
            "free cores)"
        ),
    )
    return floor_table + "\n\n" + scaling_table


def test_sharded_refresh_scaling(benchmark, report):
    from conftest import run_once

    floor_rows, scaling_rows, floor, best = run_once(
        benchmark, lambda: run_benchmark()
    )
    report("X7", render(floor_rows, scaling_rows))
    # Shared memory + shard bookkeeping must be almost free when unused.
    assert floor <= 1.25, f"sharded storage costs {floor:.2f}x sequentially"
    if _cpu_count() >= MIN_CPUS_FOR_ASSERT and "fork" in mp.get_all_start_methods():
        assert best >= 2.0, (
            f"4 workers reached only {best:.2f}x over the array baseline"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset, relaxed assertions (CI-friendly)",
    )
    args = parser.parse_args()
    if args.smoke:
        floor_rows, scaling_rows, floor, _ = run_benchmark(
            scale=0.1, batch_size=256, passes=2, worker_grid=(1, 2)
        )
        print(render(floor_rows, scaling_rows))
        assert floor <= 2.0, f"sharded sequential floor collapsed: {floor:.2f}x"
        print(f"smoke ok: sharded sequential floor {floor:.2f}x (threshold 2x)")
        return 0
    floor_rows, scaling_rows, floor, best = run_benchmark()
    cpus = _cpu_count()
    multicore = cpus >= MIN_CPUS_FOR_ASSERT and "fork" in mp.get_all_start_methods()
    if multicore:
        note = f"{best:.2f}x at 4 workers vs the array baseline (threshold 2x)."
    else:
        note = (
            f"note: host has {cpus} CPU(s); the >= 2x multiprocess assertion "
            f"needs >= {MIN_CPUS_FOR_ASSERT} free cores and was skipped — the "
            "grid above is the honest single-core measurement (the sharded "
            "refresh itself already beats the baseline via per-shard "
            "locality; process offload adds cores on real hardware)."
        )
    text = render(floor_rows, scaling_rows) + "\n" + note
    print(text)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(text + "\n", encoding="utf-8")
    print(f"written to {OUT_PATH}")
    assert floor <= 1.25, f"sharded storage costs {floor:.2f}x sequentially"
    if multicore:
        assert best >= 2.0, f"4 workers reached only {best:.2f}x"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
