"""Figure 7 — exploration (RR) and exploitation (NZL) of sampling strategies.

Repeat ratio of sampled negatives (left plot) and non-zero-loss ratio
(right plot) per epoch for Bernoulli and the three sample-from-cache
strategies.  Paper shapes: RR ordering Bernoulli ~ 0 < uniform < IS < top;
Bernoulli's NZL collapses while the cache strategies stay high.
"""


from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import wn18_like
from repro.sampling import BernoulliSampler
from repro.train.trainer import Trainer

from conftest import BENCH_SCALE, BENCH_SEED, run_once

MODEL = "TransD"
EPOCHS = 20
N1 = N2 = 30


def _run(dataset, sampler, label):
    model = build_model(MODEL, dataset, dim=32, seed=BENCH_SEED)
    config = make_config(MODEL, EPOCHS, seed=BENCH_SEED, track_negatives=True)
    trainer = Trainer(model, dataset, sampler, config)
    history = trainer.run()
    rr = history["repeat_ratio"].values
    nzl = history["nzl"].values
    return [
        (label, epoch, rr[epoch], nzl[epoch])
        for epoch in range(0, EPOCHS, 4)
    ], rr[-1], nzl[-1]


def test_fig7_exploration_exploitation(benchmark, report):
    dataset = wn18_like(seed=BENCH_SEED, scale=BENCH_SCALE)

    def run():
        rows = []
        final_rr = {}
        final_nzl = {}
        settings = [
            ("Bernoulli", BernoulliSampler()),
            ("NSCaching uniform", NSCachingSampler(
                cache_size=N1, candidate_size=N2, sample_strategy="uniform")),
            ("NSCaching IS", NSCachingSampler(
                cache_size=N1, candidate_size=N2, sample_strategy="importance")),
            ("NSCaching top", NSCachingSampler(
                cache_size=N1, candidate_size=N2, sample_strategy="top")),
        ]
        for label, sampler in settings:
            sampled_rows, rr, nzl = _run(dataset, sampler, label)
            rows.extend(sampled_rows)
            final_rr[label] = rr
            final_nzl[label] = nzl
        return rows, final_rr, final_nzl

    rows, final_rr, final_nzl = run_once(benchmark, run)
    report(
        "fig7_exploration",
        format_table(
            ("strategy", "epoch", "repeat ratio", "non-zero-loss ratio"),
            rows,
            title="Figure 7 analogue: RR (exploration) and NZL (exploitation)",
            precision=3,
        ),
    )
    # Paper shapes.
    assert final_rr["Bernoulli"] < 0.1
    assert final_rr["Bernoulli"] <= final_rr["NSCaching uniform"]
    assert final_rr["NSCaching uniform"] <= final_rr["NSCaching top"]
    assert final_nzl["NSCaching uniform"] > final_nzl["Bernoulli"]
