"""Figures 4-5 — convergence of testing MRR / Hits@10 vs clock time (ComplEx).

Same protocol as Figures 2-3 but on the semantic matching representative.
Shapes: Bernoulli and NSCaching converge stably; NSCaching leads; KBGAN
is the unstable one on semantic matching models (it may overfit/turn
down), which is why no assertion constrains it here.
"""


from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.data.benchmarks import BENCHMARKS
from repro.sampling import make_sampler
from repro.train.callbacks import EvalCallback
from repro.train.trainer import Trainer

from conftest import BENCH_SEED, run_once

MODEL = "ComplEx"
EPOCHS = 50
EVERY = 10
SCALE = 0.4
N1 = N2 = 30

SAMPLERS = {
    "Bernoulli": {},
    "KBGAN": {"candidate_size": N1},
    "NSCaching": {"cache_size": N1, "candidate_size": N2},
}


def test_fig4_5_convergence_complex(benchmark, report):
    def run():
        blocks = []
        all_finals = {}
        for paper_name, loader in BENCHMARKS.items():
            dataset = loader(seed=BENCH_SEED, scale=SCALE)
            rows = []
            finals = {}
            for sampler_name, kwargs in SAMPLERS.items():
                model = build_model(MODEL, dataset, dim=32, seed=BENCH_SEED)
                probe = EvalCallback(split="test", every=EVERY, hits_at=(10,))
                trainer = Trainer(
                    model, dataset, make_sampler(sampler_name, **kwargs),
                    make_config(MODEL, EPOCHS, seed=BENCH_SEED),
                    callbacks=[probe],
                )
                trainer.run()
                for epoch, seconds, mrr, hits in zip(
                    probe.epochs,
                    probe.times,
                    probe.series["mrr"].values,
                    probe.series["hits@10"].values,
                ):
                    rows.append((sampler_name, epoch, f"{seconds:.1f}", mrr, hits))
                finals[sampler_name] = probe.series["mrr"].values[-1]
            blocks.append(
                format_table(
                    ("sampler", "epoch", "train time (s)", "test MRR", "test Hits@10"),
                    rows,
                    title=f"[{MODEL} on {paper_name} analogue]",
                )
            )
            all_finals[paper_name] = finals
        return "\n\n".join(blocks), all_finals

    text, finals = run_once(benchmark, run)
    report("fig4_5_convergence_complex", text)
    # Semantic matching at miniature scale is the noisiest corner of the
    # reproduction: require NSCaching to win on at least half the datasets
    # AND on the aggregate mean (the paper's large-scale claim is uniform
    # dominance; EXPERIMENTS.md records the per-dataset outcomes).
    wins = sum(
        1
        for per_dataset in finals.values()
        if per_dataset["NSCaching"] >= per_dataset["Bernoulli"]
    )
    mean_ns = sum(f["NSCaching"] for f in finals.values()) / len(finals)
    mean_bern = sum(f["Bernoulli"] for f in finals.values()) / len(finals)
    assert wins >= 2, f"NSCaching converged above Bernoulli on only {wins}/4: {finals}"
    assert mean_ns >= mean_bern, finals
