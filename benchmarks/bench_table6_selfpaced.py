"""Table VI — cache contents drift from easy to hard (self-paced learning).

The paper prints the tail cache of ``(manorama, profession, actor)`` on
FB13 across epochs: random entities early, profession-typed entities late.
The FB13 analogue reproduces this with labelled snapshots plus a
quantitative type-consistency series — the fraction of cached tail
entities whose type matches the relation's range must rise.
"""


from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.fb13 import fb13_like, type_consistency
from repro.models import make_model
from repro.train.callbacks import CacheSnapshotCallback
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

from conftest import BENCH_SEED, run_once

EPOCHS = 60
SNAPSHOT_EPOCHS = (0, 5, 15, 30, 59)


def test_table6_selfpaced_cache_drift(benchmark, report):
    fb13 = fb13_like(n_persons=120, rng=BENCH_SEED)
    dataset = fb13.dataset
    vocab = dataset.vocab

    # The probed fact: the first person's profession triple (the paper
    # uses (manorama, profession, actor)).
    rel = vocab.relation_id("profession")
    probe = next(t for t in dataset.train.tolist() if t[1] == rel)
    h, r, t = probe

    def run():
        model = make_model("TransE", dataset.n_entities, dataset.n_relations, 24, rng=BENCH_SEED)
        sampler = NSCachingSampler(cache_size=5, candidate_size=10)
        snapshot = CacheSnapshotCallback((h, r), head_side=False)
        trainer = Trainer(
            model, dataset, sampler,
            TrainConfig(epochs=EPOCHS, batch_size=128, learning_rate=0.05,
                        margin=2.0, seed=BENCH_SEED),
            callbacks=[snapshot],
        )
        trainer.run()
        rows = []
        consistency = {}
        for epoch in SNAPSHOT_EPOCHS:
            if epoch not in snapshot.snapshots:
                continue
            entities = snapshot.snapshots[epoch]
            labels = ", ".join(vocab.entity_label(int(e)) for e in entities)
            ratio = type_consistency(fb13, "profession", entities)
            consistency[epoch] = ratio
            rows.append((epoch, labels, ratio))
        return rows, consistency

    rows, consistency = run_once(benchmark, run)
    head_label = vocab.entity_label(h)
    tail_label = vocab.entity_label(t)
    report(
        "table6_selfpaced",
        format_table(
            ("epoch", "entities in tail cache", "type-consistency"),
            rows,
            title=(
                "Table VI analogue: tail cache of "
                f"({head_label}, profession, {tail_label}) across epochs"
            ),
            precision=2,
        ),
    )
    # Shape: type consistency rises from early to late training.
    epochs = sorted(consistency)
    early = consistency[epochs[0]]
    late = max(consistency[e] for e in epochs[len(epochs) // 2 :])
    assert late >= early
    assert late >= 0.4, f"late-cache type consistency too low: {consistency}"
