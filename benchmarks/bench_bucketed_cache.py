"""Extension (X6) — memory-bounded bucketed array cache trade-offs.

The paper's §VI names hashing as the answer to cache memory at
million-scale KGs.  ``BucketedArrayCache`` runs that bucket scheme on the
preallocated array engine; this benchmark measures what bounding the
memory costs and buys at the paper's defaults (N1 = N2 = 50, batch 1024):

1. **memory vs precision** — allocated bytes, load factor and the
   fraction of colliding keys across bucket budgets, against the
   unbounded array backend's ``O(n_keys * N1)`` allocation.  The
   allocation is asserted to depend only on ``n_buckets``, never on the
   number of distinct keys.
2. **update() throughput** — full ``NSCachingSampler.update()`` (fused
   refresh, TransE scoring) with the bucketed backend vs the unbounded
   array backend.  The bucket translation adds one fancy index per batch,
   so throughput must stay within ~1.2x of unbounded.

Run under pytest (records wall time, writes benchmarks/out/X6.txt)::

    PYTHONPATH=src python -m pytest benchmarks/bench_bucketed_cache.py --benchmark-only

or as a plain script (CI smoke: tiny dataset, relaxed assertion)::

    PYTHONPATH=src python benchmarks/bench_bucketed_cache.py --smoke
"""

import argparse
import time

import numpy as np

from repro.bench.harness import build_model
from repro.bench.tables import format_table
from repro.core.bucketed import BucketedArrayCache
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import fb15k_like
from repro.data.keyindex import BucketIndex, TripleKeyIndex

SEED = 0
SCALE = 0.3
DIM = 32
#: The paper-default setting the throughput assertion is pinned to.
PAPER_N1 = PAPER_N2 = 50
PAPER_BATCH = 1024
#: Bucket budgets as fractions of the number of distinct keys.
BUCKET_FRACTIONS = (0.125, 0.25, 0.5, 1.0)
#: Budget used for the throughput arm (a realistic memory saving).
THROUGHPUT_FRACTION = 0.25
PASSES = 3


def _batches(n_triples: int, batch_size: int, passes: int):
    """Full contiguous batches over the split, ``passes`` times."""
    for _ in range(passes):
        for start in range(0, n_triples - batch_size + 1, batch_size):
            yield start


def memory_precision_rows(dataset, n1, fractions=BUCKET_FRACTIONS):
    """Allocation / collision table across bucket budgets."""
    index = TripleKeyIndex.from_triples(
        dataset.train, dataset.n_entities, dataset.n_relations
    )
    n_keys = index.head.n_keys
    rows = [("array (unbounded)", n_keys, n_keys * n1 * 8 / 1024, 0.0, 0.0)]
    for fraction in fractions:
        n_buckets = max(1, int(n_keys * fraction))
        buckets = BucketIndex(index.head, n_buckets)
        cache = BucketedArrayCache(
            n1, dataset.n_entities, SEED, n_buckets=n_buckets
        )
        cache.attach_index(index.head)
        rows.append(
            (
                f"bucketed ({fraction:g}x keys)",
                n_buckets,
                cache.allocated_bytes() / 1024,
                round(buckets.load_factor(), 2),
                round(100.0 * buckets.n_colliding_keys() / max(n_keys, 1), 1),
            )
        )
    return rows


def assert_allocation_independent_of_keys(n1=8, n_buckets=64):
    """The memory bound: same budget, different key counts, same bytes."""
    small = fb15k_like(seed=SEED, scale=0.05)
    large = fb15k_like(seed=SEED, scale=0.2)
    allocated = []
    for dataset in (small, large):
        index = TripleKeyIndex.from_triples(
            dataset.train, dataset.n_entities, dataset.n_relations
        )
        cache = BucketedArrayCache(
            n1, dataset.n_entities, SEED, n_buckets=n_buckets
        )
        cache.attach_index(index.head)
        allocated.append(cache.allocated_bytes())
    assert allocated[0] == allocated[1], allocated
    return allocated[0]


def update_throughput(backend, dataset, n1, n2, batch_size, passes=PASSES,
                      n_buckets=None):
    """Triples/sec through the full fused ``update()`` with TransE."""
    model = build_model("TransE", dataset, dim=DIM, seed=SEED)
    options = {} if n_buckets is None else {"cache_options": {"n_buckets": n_buckets}}
    sampler = NSCachingSampler(
        cache_size=n1, candidate_size=n2, cache_backend=backend, **options
    )
    sampler.bind(model, dataset, rng=SEED)
    rows = sampler.precompute_rows(dataset.train)
    first = np.arange(min(batch_size, len(dataset.train)))
    sampler.update(dataset.train[first], dataset.train[first], rows.take(first))

    n_triples = 0
    start_time = time.perf_counter()
    for start in _batches(len(dataset.train), batch_size, passes):
        indices = np.arange(start, start + batch_size)
        batch = dataset.train[indices]
        sampler.update(batch, batch, rows.take(indices))
        n_triples += batch_size
    return n_triples / (time.perf_counter() - start_time)


def run_benchmark(scale=SCALE, batch_size=PAPER_BATCH, n1=PAPER_N1,
                  n2=PAPER_N2, passes=PASSES):
    """Both tables; returns (memory rows, throughput rows, slowdown)."""
    dataset = fb15k_like(seed=SEED, scale=scale)
    batch_size = min(batch_size, len(dataset.train))
    memory_rows = memory_precision_rows(dataset, n1)

    index = TripleKeyIndex.from_triples(
        dataset.train, dataset.n_entities, dataset.n_relations
    )
    n_buckets = max(1, int(index.head.n_keys * THROUGHPUT_FRACTION))
    per_backend = {
        "array": update_throughput(
            "array", dataset, n1, n2, batch_size, passes
        ),
        "bucketed-array": update_throughput(
            "bucketed-array", dataset, n1, n2, batch_size, passes,
            n_buckets=n_buckets,
        ),
    }
    slowdown = per_backend["array"] / per_backend["bucketed-array"]
    throughput_rows = [
        ("array (unbounded)", batch_size, round(per_backend["array"]), 1.0),
        (
            f"bucketed-array ({n_buckets} buckets)",
            batch_size,
            round(per_backend["bucketed-array"]),
            round(slowdown, 3),
        ),
    ]
    return memory_rows, throughput_rows, slowdown


def render(memory_rows, throughput_rows) -> str:
    memory_table = format_table(
        ("variant", "rows", "allocated (KiB)", "load factor", "colliding keys %"),
        memory_rows,
        title=(
            "X6a: bucketed-array memory vs precision (FB15K-like head cache, "
            f"N1={PAPER_N1}; allocation is O(n_buckets * N1), key-count free)"
        ),
    )
    throughput_table = format_table(
        ("backend", "batch", "update() triples/s", "slowdown vs array"),
        throughput_rows,
        title=(
            "X6b: fused update() throughput, bounded vs unbounded storage "
            f"(TransE d{DIM}, N1=N2={PAPER_N1})"
        ),
    )
    return memory_table + "\n\n" + throughput_table


def test_bucketed_cache_tradeoff(benchmark, report):
    from conftest import run_once

    def run():
        allocated = assert_allocation_independent_of_keys()
        memory_rows, throughput_rows, slowdown = run_benchmark()
        return memory_rows, throughput_rows, slowdown, allocated

    memory_rows, throughput_rows, slowdown, _ = run_once(benchmark, run)
    report("X6", render(memory_rows, throughput_rows))
    # Bounding memory must not cost the vectorised hot path: the bucket
    # translation is one fancy index per batch, everything else is the
    # shared fused-refresh machinery.
    assert slowdown <= 1.2, f"bucketed update() {slowdown:.2f}x slower than array"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset, relaxed assertion (CI-friendly)",
    )
    args = parser.parse_args()
    allocated = assert_allocation_independent_of_keys()
    print(f"allocation independent of key count ok ({allocated} bytes)")
    if args.smoke:
        memory_rows, throughput_rows, slowdown = run_benchmark(
            scale=0.1, batch_size=256, n1=PAPER_N1, n2=PAPER_N2, passes=2
        )
        print(render(memory_rows, throughput_rows))
        assert slowdown <= 2.0, f"bucketed update() collapsed: {slowdown:.2f}x"
        print(f"smoke ok: bucketed update() {slowdown:.2f}x of array (threshold 2x)")
        return 0
    memory_rows, throughput_rows, slowdown = run_benchmark()
    print(render(memory_rows, throughput_rows))
    assert slowdown <= 1.2, f"bucketed update() {slowdown:.2f}x slower than array"
    print(f"ok: bucketed update() within {slowdown:.2f}x of unbounded array")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
