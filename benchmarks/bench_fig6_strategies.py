"""Figure 6 — strategy ablations on the cache.

(a) sample-from-cache: uniform vs importance (IS) vs top, with IS update
    fixed.  Paper shape: uniform best, top worst.
(b) update-cache: IS vs top, with uniform sampling fixed.  Paper shape:
    IS update clearly better.

TransD on the WN18 analogue, test MRR per evaluation epoch.
"""


from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import wn18_like
from repro.train.callbacks import EvalCallback
from repro.train.trainer import Trainer

from conftest import BENCH_SCALE, BENCH_SEED, run_once

MODEL = "TransD"
EPOCHS = 30
EVERY = 5
N1 = N2 = 30


def _run_variant(dataset, sample_strategy, update_strategy):
    model = build_model(MODEL, dataset, dim=32, seed=BENCH_SEED)
    sampler = NSCachingSampler(
        cache_size=N1,
        candidate_size=N2,
        sample_strategy=sample_strategy,
        update_strategy=update_strategy,
    )
    probe = EvalCallback(split="test", every=EVERY, hits_at=(10,))
    Trainer(
        model, dataset, sampler,
        make_config(MODEL, EPOCHS, seed=BENCH_SEED),
        callbacks=[probe],
    ).run()
    return probe


def test_fig6_sampling_and_update_strategies(benchmark, report):
    dataset = wn18_like(seed=BENCH_SEED, scale=BENCH_SCALE)

    def run():
        rows_a, rows_b = [], []
        finals_a, finals_b = {}, {}
        for strategy in ("uniform", "importance", "top"):
            probe = _run_variant(dataset, strategy, "importance")
            for epoch, mrr in zip(probe.epochs, probe.series["mrr"].values):
                rows_a.append((f"{strategy} sampling", epoch, mrr))
            finals_a[strategy] = probe.series["mrr"].values[-1]
        for strategy in ("importance", "top"):
            probe = _run_variant(dataset, "uniform", strategy)
            for epoch, mrr in zip(probe.epochs, probe.series["mrr"].values):
                rows_b.append((f"{strategy} update", epoch, mrr))
            finals_b[strategy] = probe.series["mrr"].values[-1]
        return rows_a, rows_b, finals_a, finals_b

    rows_a, rows_b, finals_a, finals_b = run_once(benchmark, run)
    text_a = format_table(
        ("strategy", "epoch", "test MRR"),
        rows_a,
        title="Figure 6(a) analogue: sample-from-cache strategies (IS update fixed)",
    )
    text_b = format_table(
        ("strategy", "epoch", "test MRR"),
        rows_b,
        title="Figure 6(b) analogue: cache-update strategies (uniform sampling fixed)",
    )
    report("fig6_strategies", text_a + "\n\n" + text_b)

    # Paper shape (a): top sampling locks onto stale/false negatives and is
    # clearly the worst of the three.
    assert finals_a["uniform"] >= finals_a["top"]
    assert finals_a["importance"] >= finals_a["top"]
    # Paper shape (b): IS update wins by a large margin at paper scale.  At
    # this miniature scale top update has not yet accumulated enough stale
    # entries to pay for its frozen cache, so the assertion is a tolerance;
    # the *mechanism* behind the paper's gap (IS refreshes the cache an
    # order of magnitude more, CE metric) is asserted in bench_fig8.
    # EXPERIMENTS.md records this as a partial reproduction.
    assert finals_b["importance"] >= 0.75 * finals_b["top"]
