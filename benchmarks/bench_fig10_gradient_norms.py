"""Figure 10 — mini-batch average gradient l2 norms across training.

Bernoulli vs NSCaching on the WN18RR analogue for TransD and ComplEx.
Paper shapes: neither collapses to zero (mini-batch noise), but NSCaching
sustains clearly larger gradient norms — the vanishing-gradient escape
that drives its gains.
"""

import pytest

from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import wn18rr_like
from repro.sampling import BernoulliSampler
from repro.train.trainer import Trainer

from conftest import BENCH_SCALE, BENCH_SEED, run_once

EPOCHS = 25
N1 = N2 = 30


@pytest.mark.parametrize("model_name", ["TransD", "ComplEx"])
def test_fig10_gradient_norms(benchmark, report, model_name):
    dataset = wn18rr_like(seed=BENCH_SEED, scale=BENCH_SCALE)

    def run():
        series = {}
        for label, sampler in (
            ("Bernoulli", BernoulliSampler()),
            ("NSCaching", NSCachingSampler(cache_size=N1, candidate_size=N2)),
        ):
            model = build_model(model_name, dataset, dim=32, seed=BENCH_SEED)
            trainer = Trainer(
                model, dataset, sampler, make_config(model_name, EPOCHS, seed=BENCH_SEED)
            )
            history = trainer.run()
            series[label] = history["grad_norm"].values
        rows = [
            (epoch, series["Bernoulli"][epoch], series["NSCaching"][epoch])
            for epoch in range(0, EPOCHS, 3)
        ]
        return rows, series

    rows, series = run_once(benchmark, run)
    report(
        f"fig10_gradient_norms_{model_name.lower()}",
        format_table(
            ("epoch", "Bernoulli grad norm", "NSCaching grad norm"),
            rows,
            title=f"Figure 10 analogue: gradient l2 norms ({model_name}, WN18RR-like)",
        ),
    )
    # Paper shapes: neither vanishes; NSCaching's late-training norm larger.
    late = EPOCHS // 2
    bernoulli_late = sum(series["Bernoulli"][late:]) / (EPOCHS - late)
    nscaching_late = sum(series["NSCaching"][late:]) / (EPOCHS - late)
    assert bernoulli_late > 0
    assert nscaching_late > bernoulli_late
