"""Figure 8 — changed cache elements (CE) and NZL per update strategy.

IS update keeps the cache fresh (large CE) while top update freezes onto
the same high-score entities (small CE), which is why it underperforms.
"""


from repro.bench.harness import build_model, make_config
from repro.bench.tables import format_table
from repro.core.nscaching import NSCachingSampler
from repro.data.benchmarks import wn18_like
from repro.train.trainer import Trainer

from conftest import BENCH_SCALE, BENCH_SEED, run_once

MODEL = "TransD"
EPOCHS = 20
N1 = N2 = 30


def test_fig8_cache_update_strategies(benchmark, report):
    dataset = wn18_like(seed=BENCH_SEED, scale=BENCH_SCALE)

    def run():
        rows = []
        total_ce = {}
        final_nzl = {}
        for strategy in ("importance", "top"):
            model = build_model(MODEL, dataset, dim=32, seed=BENCH_SEED)
            sampler = NSCachingSampler(
                cache_size=N1, candidate_size=N2, update_strategy=strategy
            )
            trainer = Trainer(
                model, dataset, sampler, make_config(MODEL, EPOCHS, seed=BENCH_SEED)
            )
            history = trainer.run()
            ce = history["cache_changes"].values
            nzl = history["nzl"].values
            for epoch in range(0, EPOCHS, 4):
                rows.append((f"{strategy} update", epoch, int(ce[epoch]), nzl[epoch]))
            total_ce[strategy] = sum(ce[2:])  # skip init-heavy first epochs
            final_nzl[strategy] = nzl[-1]
        return rows, total_ce, final_nzl

    rows, total_ce, final_nzl = run_once(benchmark, run)
    report(
        "fig8_cache_updates",
        format_table(
            ("strategy", "epoch", "changed elements", "non-zero-loss ratio"),
            rows,
            title="Figure 8 analogue: cache freshness per update strategy",
            precision=3,
        ),
    )
    # Paper shape: IS refreshes the cache far more than top update.
    assert total_ce["importance"] > 1.5 * total_ce["top"], total_ce
