"""Quickstart: train a KG embedding with NSCaching and evaluate it.

This is the 60-second tour: load a benchmark analogue, train TransE twice
— once with the Bernoulli baseline, once with NSCaching — and compare
filtered link-prediction metrics.  Expect NSCaching to win on MRR and
Hits@10, as in Table IV of the paper.

Run with:  python examples/quickstart.py
"""

from repro import (
    BernoulliSampler,
    NSCachingSampler,
    TrainConfig,
    Trainer,
    TransE,
    evaluate,
    wn18rr_like,
)


def main() -> None:
    # A laptop-scale analogue of WN18RR (see DESIGN.md for the substitution).
    dataset = wn18rr_like(seed=0, scale=0.5)
    print(f"dataset {dataset.name}: {dataset.summary()}")

    config = TrainConfig(
        epochs=40, batch_size=256, learning_rate=0.01, margin=2.0, seed=0
    )

    for label, sampler in (
        ("Bernoulli (baseline)", BernoulliSampler()),
        ("NSCaching (paper)", NSCachingSampler(cache_size=30, candidate_size=30)),
    ):
        model = TransE(dataset.n_entities, dataset.n_relations, dim=32, rng=0)
        trainer = Trainer(model, dataset, sampler, config)
        history = trainer.run()
        metrics = evaluate(model, dataset, "test")
        print(
            f"{label:22s} MRR={metrics['mrr']:.4f} "
            f"Hits@10={metrics['hits@10']:.4f} MR={metrics['mr']:.1f} "
            f"(final non-zero-loss ratio {history.last('nzl'):.2f}, "
            f"{trainer.train_seconds:.1f}s)"
        )


if __name__ == "__main__":
    main()
