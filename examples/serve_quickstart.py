"""Serving quickstart: train -> save -> serve -> query, in one script.

Trains a small TransE with NSCaching, writes the checkpoint, brings up
the JSON HTTP endpoint on a free port, and queries it the way a client
would — first one query at a time, then a batch, then a repeat to show
the LRU query cache answering.  The same endpoint is what
``python -m repro serve`` runs in production form.

Run with:  python examples/serve_quickstart.py
"""

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro import (
    NSCachingSampler,
    PredictionEngine,
    TrainConfig,
    Trainer,
    TransE,
    save_model,
    wn18rr_like,
)
from repro.serve import make_server


def main() -> None:
    # 1. Train (laptop-scale analogue; see README for the substitution).
    dataset = wn18rr_like(seed=0, scale=0.3)
    print(f"dataset {dataset.name}: {dataset.summary()}")
    model = TransE(dataset.n_entities, dataset.n_relations, dim=32, rng=0)
    sampler = NSCachingSampler(cache_size=30, candidate_size=30)
    config = TrainConfig(epochs=15, learning_rate=0.01, margin=2.0, seed=0)
    Trainer(model, dataset, sampler, config).run()

    # 2. Save, then rebuild the engine purely from the checkpoint file.
    checkpoint = save_model(model, Path(tempfile.mkdtemp()) / "transe.npz")
    print(f"checkpoint written to {checkpoint}")
    engine = PredictionEngine.from_checkpoint(checkpoint, dataset, top_k=5)

    # 3. Serve on a free port (the CLI equivalent binds a fixed one).
    server = make_server(engine, "127.0.0.1", 0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"serving on {base}")

    def post(payload: dict) -> dict:
        request = urllib.request.Request(
            f"{base}/predict",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return json.loads(response.read().decode("utf-8"))

    # 4a. One query: which tails does the model predict for (h, r, ?)?
    h, r, t = (int(x) for x in dataset.test[0])
    answer = post({"head": h, "relation": r})["results"][0]
    print(f"\nquery (h={h}, r={r}, ?)  true tail: {t}")
    for entity, label, score in zip(
        answer["entities"], answer["labels"], answer["scores"]
    ):
        marker = "  <- true tail" if entity == t else ""
        print(f"  {label:>12s} (id {entity:4d})  score {score:8.4f}{marker}")

    # 4b. A batch: mixed tail- and head-prediction in one request.
    batch = post(
        {"queries": [
            {"head": h, "relation": r, "k": 3},
            {"tail": t, "relation": r, "k": 3},
        ]}
    )
    for result in batch["results"]:
        print(f"batch result: predict {result['direction']}: {result['labels']}")

    # 4c. The repeat is served from the LRU query cache.
    repeat = post({"head": h, "relation": r})["results"][0]
    print(f"repeat served from cache: {repeat['cached']}")

    with urllib.request.urlopen(f"{base}/stats", timeout=10) as response:
        stats = json.loads(response.read().decode("utf-8"))
    print(f"stats: {stats['queries_served']} queries, cache {stats['cache']}")
    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
