"""Triplet classification: the paper's second downstream task (Table V).

Train ComplEx on the WN18RR analogue with Bernoulli and with NSCaching,
then classify held-out triples as true/false using relation-specific score
thresholds fitted on the validation split.  NSCaching's embeddings should
separate positives from corruptions better.

Run with:  python examples/triplet_classification.py
"""

from repro import (
    BernoulliSampler,
    ComplEx,
    NSCachingSampler,
    TrainConfig,
    Trainer,
    triplet_classification,
    wn18rr_like,
)


def main() -> None:
    dataset = wn18rr_like(seed=0, scale=0.4)
    print(f"dataset {dataset.name}: {dataset.summary()}\n")

    config = TrainConfig(
        epochs=40, batch_size=256, learning_rate=0.1, l2_weight=0.01, seed=0
    )
    for label, sampler in (
        ("Bernoulli", BernoulliSampler()),
        ("NSCaching", NSCachingSampler(cache_size=30, candidate_size=30)),
    ):
        model = ComplEx(dataset.n_entities, dataset.n_relations, dim=32, rng=0)
        Trainer(model, dataset, sampler, config).run()
        result = triplet_classification(model, dataset, rng=0)
        print(
            f"{label:10s} accuracy={100 * result.accuracy:.2f}% "
            f"({result.n_test} labelled test triples, "
            f"{len(result.thresholds)} relation thresholds)"
        )


if __name__ == "__main__":
    main()
