"""Cache anatomy: watch NSCaching's tail cache drift from easy to hard.

Reproduces the Table VI experience on the interpretable FB13-like KG:
pick one ``(person, profession, X)`` fact, snapshot its tail cache every
few epochs, and print the (human-readable) cached entities plus the
fraction that are actually profession-typed.  Early snapshots are random
entities; late snapshots concentrate on professions — self-paced learning
in action (paper §III-C).

Run with:  python examples/cache_anatomy.py
"""

from repro import TrainConfig, Trainer, TransE
from repro.core.nscaching import NSCachingSampler
from repro.data.fb13 import fb13_like, type_consistency
from repro.train.callbacks import CacheSnapshotCallback


def main() -> None:
    fb13 = fb13_like(n_persons=120, rng=0)
    dataset = fb13.dataset
    vocab = dataset.vocab
    print(f"dataset {dataset.name}: {dataset.summary()}")

    relation = vocab.relation_id("profession")
    head, _, tail = next(t for t in dataset.train.tolist() if t[1] == relation)
    fact = (
        vocab.entity_label(head), "profession", vocab.entity_label(tail)
    )
    print(f"probed fact: {fact}\n")

    snapshot = CacheSnapshotCallback((head, relation), head_side=False)
    model = TransE(dataset.n_entities, dataset.n_relations, dim=24, rng=0)
    sampler = NSCachingSampler(cache_size=5, candidate_size=10)
    trainer = Trainer(
        model,
        dataset,
        sampler,
        TrainConfig(epochs=60, batch_size=128, learning_rate=0.05, margin=2.0, seed=0),
        callbacks=[snapshot],
    )
    trainer.run()

    print(f"{'epoch':>5s}  {'type-consistency':>16s}  entities in tail cache")
    for epoch in (0, 5, 15, 30, 59):
        if epoch not in snapshot.snapshots:
            continue
        entities = snapshot.snapshots[epoch]
        labels = ", ".join(vocab.entity_label(int(e)) for e in entities)
        ratio = type_consistency(fb13, "profession", entities)
        print(f"{epoch:5d}  {ratio:16.2f}  {labels}")


if __name__ == "__main__":
    main()
