"""Sampler shoot-out: every negative-sampling strategy on one dataset.

Reproduces the Table IV experience interactively: Bernoulli, KBGAN, IGAN,
self-adversarial and NSCaching train the same TransD model on the FB15K237
analogue; the script reports filtered metrics, training time and the
non-zero-loss ratio that explains the differences.

Run with:  python examples/sampler_shootout.py
"""

from repro import TrainConfig, Trainer, evaluate, fb15k237_like, make_model
from repro.sampling import make_sampler

SAMPLERS = {
    "Uniform": {},
    "Bernoulli": {},
    "KBGAN": {"candidate_size": 30},
    "IGAN": {"expectation_samples": 8},
    "SelfAdv": {"candidate_size": 30, "alpha": 1.0},
    "NSCaching": {"cache_size": 30, "candidate_size": 30},
}


def main() -> None:
    dataset = fb15k237_like(seed=0, scale=0.3)
    print(f"dataset {dataset.name}: {dataset.summary()}\n")
    print(f"{'sampler':12s} {'MRR':>8s} {'Hits@10':>8s} {'MR':>7s} {'NZL':>6s} {'time':>7s}")

    config = TrainConfig(
        epochs=25, batch_size=256, learning_rate=0.01, margin=2.0, seed=0
    )
    for name, kwargs in SAMPLERS.items():
        model = make_model("TransD", dataset.n_entities, dataset.n_relations, 32, rng=0)
        sampler = make_sampler(name, **kwargs)
        trainer = Trainer(model, dataset, sampler, config)
        history = trainer.run()
        metrics = evaluate(model, dataset, "test")
        print(
            f"{name:12s} {metrics['mrr']:8.4f} {metrics['hits@10']:8.4f} "
            f"{metrics['mr']:7.1f} {history.last('nzl'):6.2f} "
            f"{trainer.train_seconds:6.1f}s"
        )


if __name__ == "__main__":
    main()
