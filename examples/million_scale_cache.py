"""Memory-bounded caching: the paper's future-work direction, runnable.

Section VI of the paper flags cache memory as the blocker at million-scale
and names hashing as future work.  This example compares the exact-key
cache against hashed caches with shrinking bucket budgets on the FB15K
analogue, reporting cache memory alongside link-prediction quality — the
trade-off a million-scale deployment would tune.

Run with:  python examples/million_scale_cache.py
"""

from repro import TrainConfig, Trainer, TransE, evaluate, fb15k_like
from repro.core.hashed import HashedNegativeCache
from repro.core.nscaching import NSCachingSampler


def hashed_factory(n_buckets: int):
    """A cache factory for NSCachingSampler with a fixed bucket budget."""

    def factory(size, n_entities, rng, store_scores=False):
        return HashedNegativeCache(
            size, n_entities, rng, n_buckets=n_buckets, store_scores=store_scores
        )

    return factory


def main() -> None:
    dataset = fb15k_like(seed=0, scale=0.3)
    print(f"dataset {dataset.name}: {dataset.summary()}\n")
    config = TrainConfig(
        epochs=25, batch_size=256, learning_rate=0.01, margin=2.0, seed=0
    )

    settings = [("exact keys", None)] + [
        (f"hashed {buckets} buckets", hashed_factory(buckets))
        for buckets in (1024, 128, 16)
    ]
    print(f"{'cache variant':22s} {'memory (KiB)':>12s} {'MRR':>8s} {'Hits@10':>8s}")
    for label, factory in settings:
        model = TransE(dataset.n_entities, dataset.n_relations, dim=32, rng=0)
        kwargs = {"cache_size": 30, "candidate_size": 30}
        if factory is not None:
            kwargs["cache_factory"] = factory
        sampler = NSCachingSampler(**kwargs)
        Trainer(model, dataset, sampler, config).run()
        metrics = evaluate(model, dataset, "test")
        memory_kib = sampler.cache_memory_bytes() / 1024
        print(
            f"{label:22s} {memory_kib:12.0f} {metrics['mrr']:8.4f} "
            f"{metrics['hits@10']:8.4f}"
        )


if __name__ == "__main__":
    main()
