"""Grid search over training hyper-parameters (paper §IV-B2).

The paper tunes ``d``, ``eta``, ``gamma`` (translational) and ``lambda``
(semantic matching) under Bernoulli sampling by validation MRR, then keeps
the winner fixed for every sampler.  :func:`grid_search` reproduces that
protocol for arbitrary grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Mapping, Sequence

from repro.data.dataset import KGDataset
from repro.eval.protocol import evaluate
from repro.models.base import KGEModel
from repro.sampling.base import NegativeSampler
from repro.sampling.bernoulli import BernoulliSampler
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer
from repro.utils.logging import get_logger

__all__ = ["GridResult", "grid_search", "expand_grid"]

_LOG = get_logger("train.grid")

#: Builds a fresh model given (dim, seed) — grids may vary the dimension.
ModelFactory = Callable[[int, int], KGEModel]


@dataclass
class GridResult:
    """One grid point's outcome."""

    point: dict[str, object]
    metric: float
    metrics: dict[str, float]


def expand_grid(grid: Mapping[str, Sequence[object]]) -> list[dict[str, object]]:
    """Cartesian product of a ``{name: values}`` grid, as dicts."""
    if not grid:
        return [{}]
    names = sorted(grid)
    points = []
    for combo in product(*(grid[name] for name in names)):
        points.append(dict(zip(names, combo)))
    return points


def grid_search(
    model_factory: ModelFactory,
    dataset: KGDataset,
    grid: Mapping[str, Sequence[object]],
    *,
    base_config: TrainConfig | None = None,
    sampler_factory: Callable[[], NegativeSampler] = BernoulliSampler,
    metric: str = "mrr",
    split: str = "valid",
    seed: int = 0,
) -> tuple[GridResult, list[GridResult]]:
    """Evaluate every grid point; returns ``(best, all_results)``.

    Grid keys matching :class:`TrainConfig` fields override the config;
    the special key ``"dim"`` is passed to ``model_factory`` instead.
    """
    base_config = base_config or TrainConfig()
    results: list[GridResult] = []
    for point in expand_grid(grid):
        point = dict(point)
        dim = int(point.pop("dim", 0))
        config = base_config.with_updates(**point) if point else base_config
        model = model_factory(dim, seed)
        trainer = Trainer(model, dataset, sampler_factory(), config)
        try:
            trainer.run()
        finally:
            # Pool-backed samplers (sharded-array + refresh workers) hold
            # processes and shared memory per grid point; release them.
            trainer.close()
        metrics = evaluate(model, dataset, split)
        full_point = {**point, **({"dim": dim} if dim else {})}
        results.append(GridResult(point=full_point, metric=metrics[metric], metrics=metrics))
        _LOG.info("grid point %s -> %s=%.4f", full_point, metric, metrics[metric])
    best = max(results, key=lambda r: r.metric)
    return best, results
