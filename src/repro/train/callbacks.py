"""Trainer callbacks: evaluation traces, early stopping, run telemetry.

Callbacks receive the trainer after every epoch and record whatever the
experiment needs — the convergence curves of Figures 2-5 (metric vs wall
time), the gradient norms of Figure 10, and validation-based early
stopping.  Evaluation time is excluded from the reported clock (the paper
plots *training* time).

:class:`RunLogCallback` is the trainer's JSONL exporter: it streams one
:mod:`repro.obs.runlog` record per epoch (loss/NZL/grad norm/throughput,
the disjoint phase seconds, and — via registry snapshot deltas — the
cache-health block: churn, survivor fraction, refresh counters and
per-shard task timings).  The trainer appends it automatically when
constructed with ``metrics_out=...``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.stats import EpochSeries
from repro.eval.protocol import evaluate
from repro.obs.registry import MetricsRegistry
from repro.obs.runlog import RunLogWriter

if TYPE_CHECKING:  # pragma: no cover
    from repro.train.trainer import Trainer

__all__ = [
    "Callback",
    "EvalCallback",
    "EarlyStopping",
    "CacheSnapshotCallback",
    "RunLogCallback",
]


class Callback:
    """Base class; all hooks are optional no-ops."""

    def on_train_begin(self, trainer: "Trainer") -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        """Called after every epoch with that epoch's aggregate stats."""

    def on_train_end(self, trainer: "Trainer") -> None:
        """Called after the last epoch (or early stop)."""


class EvalCallback(Callback):
    """Periodic link-prediction evaluation, recorded against wall time.

    Produces the series behind Figures 2-5: ``metric`` and ``hits@k``
    against both epoch number and accumulated *training* seconds (the
    trainer's clock is paused while this callback evaluates).

    With ``num_negatives`` set, evaluation uses the sampled protocol
    (:func:`repro.eval.sampled.sampled_link_prediction`) — O(K) per query
    instead of O(E), the only practical per-epoch validation signal on
    million-entity graphs.  The draw seed is fixed per callback, so the
    series is comparable across epochs and across runs.
    """

    def __init__(
        self,
        split: str = "valid",
        every: int = 5,
        *,
        filtered: bool = True,
        hits_at: tuple[int, ...] = (10,),
        batch_size: int = 128,
        num_negatives: int | None = None,
        seed: int = 0,
    ) -> None:
        if every <= 0:
            raise ValueError(f"every must be > 0, got {every}")
        self.split = split
        self.every = int(every)
        self.filtered = filtered
        self.hits_at = hits_at
        self.batch_size = batch_size
        self.num_negatives = num_negatives
        self.seed = seed
        self.series: dict[str, EpochSeries] = {}
        self.times: list[float] = []
        self.epochs: list[int] = []

    def _record(self, trainer: "Trainer", epoch: int) -> dict[str, float]:
        metrics = evaluate(
            trainer.model,
            trainer.dataset,
            self.split,
            mode="sampled" if self.num_negatives is not None else "full",
            filtered=self.filtered,
            hits_at=self.hits_at,
            batch_size=self.batch_size,
            num_negatives=self.num_negatives,
            seed=self.seed,
            metrics=trainer.metrics,
        )
        self.epochs.append(epoch)
        self.times.append(trainer.train_seconds)
        for key, value in metrics.items():
            self.series.setdefault(key, EpochSeries(key)).append(epoch, value)
        return metrics

    def on_train_begin(self, trainer: "Trainer") -> None:
        self.series.clear()
        self.times.clear()
        self.epochs.clear()

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        if (epoch + 1) % self.every == 0 or epoch + 1 == trainer.config.epochs:
            with trainer.paused_clock():
                metrics = self._record(trainer, epoch)
            stats.update({f"{self.split}_{k}": v for k, v in metrics.items()})

    def on_train_end(self, trainer: "Trainer") -> None:
        # An early-stopped run exits before the configured final epoch,
        # so the `epoch + 1 == config.epochs` trigger above never fires
        # and latest() would report a stale mid-run value.  Record the
        # final model state once, unless the last epoch already did.
        if trainer.epochs_run == 0:
            return
        last = trainer.epochs_run - 1
        if self.epochs and self.epochs[-1] == last:
            return
        with trainer.paused_clock():
            self._record(trainer, last)

    def latest(self, key: str = "mrr") -> float:
        """Most recent value of a metric (NaN if never evaluated)."""
        series = self.series.get(key)
        return series.last() if series else float("nan")


class EarlyStopping(Callback):
    """Stop when a stat has not improved for ``patience`` observations."""

    def __init__(
        self, metric: str = "valid_mrr", patience: int = 5, minimize: bool = False
    ) -> None:
        if patience <= 0:
            raise ValueError(f"patience must be > 0, got {patience}")
        self.metric = metric
        self.patience = int(patience)
        self.minimize = bool(minimize)
        self.best = np.inf if minimize else -np.inf
        self.stale = 0

    def on_train_begin(self, trainer: "Trainer") -> None:
        self.best = np.inf if self.minimize else -np.inf
        self.stale = 0

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        if self.metric not in stats:
            return
        value = stats[self.metric]
        improved = value < self.best if self.minimize else value > self.best
        if improved:
            self.best = value
            self.stale = 0
        else:
            self.stale += 1
            if self.stale >= self.patience:
                trainer.request_stop()


#: Per-(mode, shard) counters folded into an epoch's ``refresh_shards``.
_SHARD_SERIES = {
    "refresh_task_seconds_total": "seconds",
    "refresh_tasks_total": "tasks",
    "refresh_queue_wait_seconds_total": "queue_wait_seconds",
}


class RunLogCallback(Callback):
    """Stream one run-log record per epoch to a JSONL file.

    Epoch records combine three sources: the trainer's aggregate stats
    (loss, NZL, gradient norm, wall seconds), the phase stopwatches
    (reported as per-epoch deltas of the disjoint partition), and — when
    a registry is attached — deltas of the sampler's refresh counters
    (churn, refreshed rows, scored candidates, per-shard task timings).
    The survivor fraction is derived per the cache semantics:
    ``1 - churn / (refreshed_rows * N1)``.
    """

    def __init__(
        self, writer: RunLogWriter, registry: MetricsRegistry | None = None
    ) -> None:
        self.writer = writer
        self.registry = registry
        self._counters: dict[Any, float] = {}
        self._phases: dict[str, float] = {}

    def on_train_begin(self, trainer: "Trainer") -> None:
        config = json.loads(json.dumps(asdict(trainer.config), default=str))
        self.writer.write(
            self.writer.stamp(
                {
                    "type": "run_meta",
                    "model": type(trainer.model).__name__,
                    "dataset": str(getattr(trainer.dataset, "name", "unknown")),
                    "sampler": str(
                        getattr(trainer.sampler, "name", None)
                        or type(trainer.sampler).__name__
                    ),
                    "config": config,
                    "n_train": len(trainer.dataset.train),
                }
            )
        )
        self._counters = (
            self.registry.snapshot() if self.registry is not None else {}
        )
        self._phases = trainer.phase_seconds()

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        phases = trainer.phase_seconds()
        phase_delta = {
            name: round(max(0.0, seconds - self._phases.get(name, 0.0)), 6)
            for name, seconds in phases.items()
        }
        self._phases = phases
        epoch_seconds = float(stats.get("epoch_seconds", 0.0))
        n_train = len(trainer.dataset.train)
        record: dict[str, Any] = {
            "type": "epoch",
            "epoch": int(epoch),
            "loss": float(stats.get("loss", 0.0)),
            "nzl": float(stats.get("nzl", 0.0)),
            "grad_norm": float(stats.get("grad_norm", 0.0)),
            "epoch_seconds": epoch_seconds,
            "samples_per_sec": (
                n_train / epoch_seconds if epoch_seconds > 0.0 else 0.0
            ),
            "phase_seconds": {k: v for k, v in phase_delta.items() if v > 0.0},
        }
        if "repeat_ratio" in stats:
            record["extra"] = {"repeat_ratio": float(stats["repeat_ratio"])}
        cache, shards = self._cache_delta(trainer)
        if cache is not None:
            record["cache"] = cache
        if shards:
            record["refresh_shards"] = shards
        self.writer.write(self.writer.stamp(record))

    def on_train_end(self, trainer: "Trainer") -> None:
        self.writer.write(
            self.writer.stamp(
                {
                    "type": "run_end",
                    "epochs": int(trainer.epochs_run),
                    "train_seconds": float(trainer.train_seconds),
                    "phase_seconds": {
                        k: round(v, 6) for k, v in trainer.phase_seconds().items()
                    },
                }
            )
        )
        self.writer.close()

    # -- registry deltas -------------------------------------------------------
    def _cache_delta(
        self, trainer: "Trainer"
    ) -> tuple[dict[str, Any] | None, dict[str, Any]]:
        """Cache-health block + per-shard timings since the last epoch.

        ``(None, {})`` when no refresh counters exist in the registry —
        cache-less samplers and uninstrumented runs log no cache block.
        A zero-delta block is still logged (a lazily skipped epoch is a
        data point, not a gap).
        """
        if self.registry is None:
            return None, {}
        snapshot = self.registry.snapshot()
        previous, self._counters = self._counters, snapshot
        sums: dict[str, float] = {}
        shards: dict[str, dict[str, Any]] = {}
        for (name, labels), value in snapshot.items():
            delta = value - previous.get((name, labels), 0.0)
            if name in _SHARD_SERIES:
                pairs = dict(labels)
                key = f"{pairs.get('mode', '?')}:{pairs.get('shard', '?')}"
                field = _SHARD_SERIES[name]
                entry = shards.setdefault(key, {})
                entry[field] = (
                    int(delta) if field == "tasks" else round(delta, 6)
                )
            else:
                sums[name] = sums.get(name, 0.0) + delta
        if not any(
            name == "cache_refresh_batches_total" for name, _labels in snapshot
        ):
            return None, shards
        refreshed = sums.get("cache_refresh_rows_total", 0.0)
        churn = sums.get("cache_changed_elements_total", 0.0)
        cache: dict[str, Any] = {
            "churn": churn,
            "refreshed_rows": refreshed,
            "candidates": sums.get("cache_refresh_candidates_total", 0.0),
            "refresh_batches": sums.get("cache_refresh_batches_total", 0.0),
        }
        n1 = int(getattr(trainer.sampler, "cache_size", 0) or 0)
        if refreshed > 0.0 and n1 > 0:
            cache["survivor_fraction"] = round(
                1.0 - churn / (refreshed * n1), 6
            )
        report = trainer.cache_report()
        for side in ("head", "tail"):
            for suffix in ("live_fraction", "load_factor"):
                value = report.get(f"{side}_{suffix}")
                if isinstance(value, (int, float)):
                    cache[f"{side}_{suffix}"] = round(float(value), 6)
        return cache, shards


class CacheSnapshotCallback(Callback):
    """Record the contents of one cache entry per epoch (Table VI study)."""

    def __init__(self, key: tuple[int, int], *, head_side: bool = False) -> None:
        self.key = (int(key[0]), int(key[1]))
        self.head_side = bool(head_side)
        self.snapshots: dict[int, np.ndarray] = {}

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        sampler = trainer.sampler
        cache = getattr(
            sampler, "head_cache" if self.head_side else "tail_cache", None
        )
        if cache is not None and self.key in cache:
            self.snapshots[epoch] = cache.get(self.key).copy()
