"""Trainer callbacks: evaluation traces, gradient norms, early stopping.

Callbacks receive the trainer after every epoch and record whatever the
experiment needs — the convergence curves of Figures 2-5 (metric vs wall
time), the gradient norms of Figure 10, and validation-based early
stopping.  Evaluation time is excluded from the reported clock (the paper
plots *training* time).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.stats import EpochSeries
from repro.eval.protocol import evaluate

if TYPE_CHECKING:  # pragma: no cover
    from repro.train.trainer import Trainer

__all__ = ["Callback", "EvalCallback", "EarlyStopping", "CacheSnapshotCallback"]


class Callback:
    """Base class; all hooks are optional no-ops."""

    def on_train_begin(self, trainer: "Trainer") -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        """Called after every epoch with that epoch's aggregate stats."""

    def on_train_end(self, trainer: "Trainer") -> None:
        """Called after the last epoch (or early stop)."""


class EvalCallback(Callback):
    """Periodic link-prediction evaluation, recorded against wall time.

    Produces the series behind Figures 2-5: ``metric`` and ``hits@k``
    against both epoch number and accumulated *training* seconds (the
    trainer's clock is paused while this callback evaluates).
    """

    def __init__(
        self,
        split: str = "valid",
        every: int = 5,
        *,
        filtered: bool = True,
        hits_at: tuple[int, ...] = (10,),
        batch_size: int = 128,
    ) -> None:
        if every <= 0:
            raise ValueError(f"every must be > 0, got {every}")
        self.split = split
        self.every = int(every)
        self.filtered = filtered
        self.hits_at = hits_at
        self.batch_size = batch_size
        self.series: dict[str, EpochSeries] = {}
        self.times: list[float] = []
        self.epochs: list[int] = []

    def _record(self, trainer: "Trainer", epoch: int) -> dict[str, float]:
        metrics = evaluate(
            trainer.model,
            trainer.dataset,
            self.split,
            filtered=self.filtered,
            hits_at=self.hits_at,
            batch_size=self.batch_size,
        )
        self.epochs.append(epoch)
        self.times.append(trainer.train_seconds)
        for key, value in metrics.items():
            self.series.setdefault(key, EpochSeries(key)).append(epoch, value)
        return metrics

    def on_train_begin(self, trainer: "Trainer") -> None:
        self.series.clear()
        self.times.clear()
        self.epochs.clear()

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        if (epoch + 1) % self.every == 0 or epoch + 1 == trainer.config.epochs:
            with trainer.paused_clock():
                metrics = self._record(trainer, epoch)
            stats.update({f"{self.split}_{k}": v for k, v in metrics.items()})

    def latest(self, key: str = "mrr") -> float:
        """Most recent value of a metric (NaN if never evaluated)."""
        series = self.series.get(key)
        return series.last() if series else float("nan")


class EarlyStopping(Callback):
    """Stop when a stat has not improved for ``patience`` observations."""

    def __init__(
        self, metric: str = "valid_mrr", patience: int = 5, minimize: bool = False
    ) -> None:
        if patience <= 0:
            raise ValueError(f"patience must be > 0, got {patience}")
        self.metric = metric
        self.patience = int(patience)
        self.minimize = bool(minimize)
        self.best = np.inf if minimize else -np.inf
        self.stale = 0

    def on_train_begin(self, trainer: "Trainer") -> None:
        self.best = np.inf if self.minimize else -np.inf
        self.stale = 0

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        if self.metric not in stats:
            return
        value = stats[self.metric]
        improved = value < self.best if self.minimize else value > self.best
        if improved:
            self.best = value
            self.stale = 0
        else:
            self.stale += 1
            if self.stale >= self.patience:
                trainer.request_stop()


class CacheSnapshotCallback(Callback):
    """Record the contents of one cache entry per epoch (Table VI study)."""

    def __init__(self, key: tuple[int, int], *, head_side: bool = False) -> None:
        self.key = (int(key[0]), int(key[1]))
        self.head_side = bool(head_side)
        self.snapshots: dict[int, np.ndarray] = {}

    def on_epoch_end(self, trainer: "Trainer", epoch: int, stats: dict) -> None:
        sampler = trainer.sampler
        cache = getattr(
            sampler, "head_cache" if self.head_side else "tail_cache", None
        )
        if cache is not None and self.key in cache:
            self.snapshots[epoch] = cache.get(self.key).copy()
