"""The "with pretrain" protocol (paper §IV-B1).

IGAN and KBGAN require warm-starting from a model trained under Bernoulli
sampling; NSCaching does not, but the paper reports both regimes for every
method.  :func:`pretrain` trains a fresh copy of a model with Bernoulli
sampling and returns its state, and :func:`warm_start` loads that state
into any same-shaped model.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import KGDataset
from repro.models.base import KGEModel
from repro.sampling.bernoulli import BernoulliSampler
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

__all__ = ["pretrain", "warm_start"]


def pretrain(
    model: KGEModel,
    dataset: KGDataset,
    epochs: int,
    config: TrainConfig | None = None,
) -> dict[str, np.ndarray]:
    """Train ``model`` in place with Bernoulli sampling; return its state.

    The returned state dict can warm-start any number of subsequent runs
    via :func:`warm_start` (the paper evaluates every sampler from the
    same pretrained checkpoint).
    """
    if epochs < 0:
        raise ValueError(f"epochs must be >= 0, got {epochs}")
    config = (config or TrainConfig()).with_updates(epochs=epochs)
    trainer = Trainer(model, dataset, BernoulliSampler(), config)
    trainer.run()
    return model.state_dict()


def warm_start(model: KGEModel, state: dict[str, np.ndarray]) -> KGEModel:
    """Load a pretrained state into ``model`` (returns it for chaining)."""
    model.load_state_dict(state)
    return model
