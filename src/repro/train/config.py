"""Training hyper-parameters (paper §IV-B2).

The paper grid-searches dimension, learning rate, margin (translational) and
L2 penalty (semantic matching), trains with Adam at default betas, and keeps
hyper-parameters fixed across samplers for fairness.  :class:`TrainConfig`
captures exactly that surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["TrainConfig"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run.

    Attributes
    ----------
    epochs:
        Number of passes over the training split.
    batch_size:
        Mini-batch size ``m``.
    learning_rate:
        Optimiser step size ``eta``.
    optimizer:
        ``"adam"`` (paper default), ``"adagrad"`` or ``"sgd"``.
    margin:
        ``gamma`` of the margin ranking loss (translational models).
    l2_weight:
        ``lambda`` of the L2 penalty (semantic matching models).
    loss:
        ``"auto"`` picks the model's default family; ``"margin"`` /
        ``"logistic"`` force one.
    seed:
        Seed for batch shuffling and the sampler's own generator.
    shuffle:
        Re-shuffle the training triples every epoch.
    normalize:
        Apply the model's norm constraints after each step.
    track_negatives:
        Record sampled negatives for the RR metric (costs memory; only the
        exploration/exploitation studies need it).
    """

    epochs: int = 100
    batch_size: int = 256
    learning_rate: float = 0.01
    optimizer: str = "adam"
    margin: float = 2.0
    l2_weight: float = 0.0
    loss: str = "auto"
    seed: int = 0
    shuffle: bool = True
    normalize: bool = True
    track_negatives: bool = False
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if self.margin <= 0:
            raise ValueError(f"margin must be > 0, got {self.margin}")
        if self.l2_weight < 0:
            raise ValueError(f"l2_weight must be >= 0, got {self.l2_weight}")
        if self.loss not in ("auto", "margin", "logistic"):
            raise ValueError(
                f"loss must be 'auto', 'margin' or 'logistic', got {self.loss!r}"
            )

    def with_updates(self, **changes: Any) -> "TrainConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
