"""The mini-batch training loop (Algorithms 1 and 2).

One :class:`Trainer` wires together a scoring model, a negative sampler, a
loss matched to the model family (Eq. 1 / Eq. 2), a sparse optimiser and an
optional L2 regulariser, and exposes per-epoch statistics: mean loss,
non-zero-loss ratio (NZL), average gradient l2 norm (Figure 10), cache
changed-elements (Figure 8) and the repeat ratio of sampled negatives
(Figure 7).

Two hot-path amenities: samplers that expose ``precompute_rows`` (the
NSCaching array cache) get the whole split's cache-row indices resolved
once at construction and sliced per batch, and ``profile=True`` times the
per-phase breakdown (sample / score / cache-update / score-candidates /
gradients / optimizer) so speedups are measurable from the CLI.  The
``score_candidates`` phase is the model's scoring of the Alg. 3 candidate
union: it runs *inside* the sampler's ``update()`` (the trainer attaches a
stopwatch to samplers that expose a ``score_timer`` slot), and the report
subtracts it from ``cache_update`` so the phases partition the hot loop
and sum to its wall time.

Observability: pass ``metrics`` (a
:class:`~repro.obs.registry.MetricsRegistry`) and/or ``metrics_out`` (a
JSONL run-log path) to instrument the run.  Either one turns the phase
stopwatches into obs spans (the same timers ``--profile`` uses), attaches
the registry to samplers that accept one (per-refresh cache-health
counters), mirrors per-epoch loss/NZL/grad-norm/throughput and cumulative
phase seconds into the registry, and — with ``metrics_out`` — streams one
:mod:`repro.obs.runlog` record per epoch for ``repro metrics`` to
summarise.  With neither, every instrumentation site is a ``None`` check:
training is bit-identical to the uninstrumented loop under a fixed seed.

Tracing: pass ``tracer`` (a :class:`~repro.obs.trace.Tracer`) and/or
``trace_out`` (a JSONL trace path) to record a span timeline — every
profile phase and epoch becomes a span, samplers with a ``tracer`` slot
record their refresh/dispatch/collect spans into the same ring, and the
pooled refresh merges spans shipped back from forked workers, so one
timeline covers dispatch → gradients/optimizer → collect across
processes.  ``close()`` writes the merged trace for ``repro trace``
(summary, Chrome export).  Same contract as metrics: ``tracer=None``
(the default) is bit-identical to the seed loop.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Sequence

import numpy as np

from repro.core.stats import EpochSeries, NegativeTracker
from repro.data.dataset import KGDataset
from repro.data.triples import HEAD, REL, TAIL
from repro.models.base import KGEModel
from repro.models.losses import LogisticLoss, Loss, MarginRankingLoss
from repro.models.regularizers import L2Regularizer
from repro.obs.registry import MetricsRegistry
from repro.obs.runlog import RunLogWriter
from repro.obs.trace import Span, Tracer, write_trace
from repro.optim import make_optimizer
from repro.sampling.base import NegativeSampler
from repro.train.config import TrainConfig
from repro.utils.rng import spawn_rngs
from repro.utils.timer import Timer

__all__ = ["Trainer", "TrainingHistory"]


class TrainingHistory:
    """Per-epoch series recorded by the trainer."""

    _NAMES = ("loss", "nzl", "grad_norm", "epoch_seconds", "repeat_ratio", "cache_changes")

    def __init__(self) -> None:
        self.series: dict[str, EpochSeries] = {
            name: EpochSeries(name) for name in self._NAMES
        }

    def record(self, epoch: int, stats: dict[str, float]) -> None:
        """Append every known stat for this epoch."""
        for name, series in self.series.items():
            if name in stats:
                series.append(epoch, stats[name])

    def __getitem__(self, name: str) -> EpochSeries:
        return self.series[name]

    def last(self, name: str) -> float:
        """Most recent value of a series."""
        return self.series[name].last()


class _TracedPhase:
    """Span + optional stopwatch around one hot-loop phase.

    A dedicated slotted context manager (not ``@contextmanager``) keeps
    the per-phase cost at two clock reads when tracing is on — the X11
    overhead budget is measured through this path.
    """

    __slots__ = ("tracer", "name", "timer", "_span")

    def __init__(self, tracer: Tracer, name: str, timer: Timer | None) -> None:
        self.tracer = tracer
        self.name = name
        self.timer = timer
        self._span: Span | None = None

    def __enter__(self) -> "_TracedPhase":
        self._span = self.tracer.start_span(self.name, "train")
        if self.timer is not None:
            self.timer.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.timer is not None:
            self.timer.stop()
        if self._span is not None:
            self._span.end()


class Trainer:
    """Runs the KG-embedding training loop for any sampler/model pair."""

    #: Phase names reported by the profiler, in hot-loop order.
    #: ``score_candidates`` and ``parallel_refresh`` nest inside
    #: ``cache_update`` (candidate scoring of the sequential refresh, and
    #: dispatch+wait of the pooled refresh); the report makes them
    #: disjoint.  ``refresh_overlap`` is the wait for an overlapped
    #: refresh at the top of the next batch — time the refresh pipeline
    #: failed to hide behind the gradients/optimizer phases (0 when the
    #: workers finished first, or when overlap is off).
    PROFILE_PHASES = (
        "refresh_overlap", "sample", "score", "cache_update",
        "score_candidates", "parallel_refresh", "gradients", "optimizer",
    )

    def __init__(
        self,
        model: KGEModel,
        dataset: KGDataset,
        sampler: NegativeSampler,
        config: TrainConfig | None = None,
        callbacks: Sequence[object] = (),
        *,
        profile: bool = False,
        metrics: MetricsRegistry | None = None,
        metrics_out: str | None = None,
        tracer: Tracer | None = None,
        trace_out: str | None = None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.sampler = sampler
        self.config = config or TrainConfig()
        self.callbacks = list(callbacks)
        self.profile = bool(profile)
        if metrics is None and metrics_out is not None:
            metrics = MetricsRegistry()  # the run log needs instruments
        self.metrics = metrics
        if tracer is None and trace_out is not None:
            tracer = Tracer()  # the trace file needs a ring to drain
        self.tracer = tracer
        self._trace_out = trace_out
        # Phase stopwatches double as obs spans: they run under --profile
        # *or* whenever a registry is attached.  With neither, _phase()
        # hands back a no-op context — the seed hot loop, bit for bit.
        self._timed = self.profile or metrics is not None
        self.phase_timers: dict[str, Timer] = {
            name: Timer() for name in self.PROFILE_PHASES
        }
        self._run_log: RunLogWriter | None = None
        if metrics_out is not None:
            from repro.train.callbacks import RunLogCallback

            self._run_log = RunLogWriter(metrics_out)
            self.callbacks.append(RunLogCallback(self._run_log, metrics))

        rng_batches, rng_sampler = spawn_rngs(self.config.seed, 2)
        self._rng = rng_batches
        self.sampler.bind(model, dataset, rng_sampler)

        # Samplers that score a candidate union inside update() expose a
        # ``score_timer`` slot; when timing, the trainer plugs its own
        # phase stopwatch in so that cost is reported as its own phase.
        # Assigned unconditionally so a sampler handed to a new trainer
        # stops feeding a previous trainer's timer.
        if hasattr(self.sampler, "score_timer"):
            self.sampler.score_timer = (
                self.phase_timers["score_candidates"] if self._timed else None
            )
        # Same deal for the pooled-refresh stopwatch: the dispatch+wait of
        # a parallel cache refresh is reported as its own phase.
        if hasattr(self.sampler, "parallel_timer"):
            self.sampler.parallel_timer = (
                self.phase_timers["parallel_refresh"] if self._timed else None
            )
        # Samplers with a ``metrics`` slot report cache health (refresh
        # rows, churn, per-shard task timings) into the shared registry.
        if hasattr(self.sampler, "metrics"):
            self.sampler.metrics = metrics
        # Samplers with a ``tracer`` slot record refresh spans into the
        # trainer's ring (and merge their forked workers' spans into it),
        # so one timeline covers the whole pipeline.  Must happen before
        # the first update(): refresh workers inherit tracing at fork.
        if hasattr(self.sampler, "tracer"):
            self.sampler.tracer = tracer

        # Overlapped-refresh samplers hand back a collect hook: the
        # trainer drains the in-flight dispatch at the top of every batch
        # (and at epoch end), timing the un-hidden wait as the
        # ``refresh_overlap`` phase.  Dirty-sync samplers take the rows
        # every optimizer step / normalisation touches, so parameter
        # publishes ship only the changed slices.
        collect = getattr(self.sampler, "collect_refreshes", None)
        self._collect_refreshes = collect if callable(collect) else None
        mark = getattr(self.sampler, "mark_dirty_params", None)
        self._dirty_mark = mark if callable(mark) else None

        # Row-indexed samplers resolve the whole split's cache rows once;
        # batches then carry integer slices instead of re-deriving keys.
        precompute = getattr(self.sampler, "precompute_rows", None)
        self._train_rows = precompute(dataset.train) if callable(precompute) else None

        self.loss = self._make_loss()
        self.optimizer = make_optimizer(
            self.config.optimizer, self.config.learning_rate
        )
        self.regularizer = (
            L2Regularizer(self.config.l2_weight)
            if self.config.l2_weight > 0
            else None
        )
        self.history = TrainingHistory()
        self.negative_tracker = (
            NegativeTracker() if self.config.track_negatives else None
        )
        self._timer = Timer()
        self._stop = False
        self.epochs_run = 0

    # -- construction helpers ----------------------------------------------------
    def _make_loss(self) -> Loss:
        kind = self.config.loss
        if kind == "auto":
            kind = self.model.default_loss
        if kind == "margin":
            return MarginRankingLoss(self.config.margin)
        return LogisticLoss()

    # -- clock --------------------------------------------------------------------
    @property
    def train_seconds(self) -> float:
        """Accumulated training wall time, excluding paused (eval) periods."""
        return self._timer.elapsed

    @contextmanager
    def paused_clock(self) -> Iterator[None]:
        """Suspend the training clock (used by evaluation callbacks)."""
        was_running = self._timer.running
        if was_running:
            self._timer.stop()
        try:
            yield
        finally:
            if was_running:
                self._timer.start()

    def request_stop(self) -> None:
        """Ask the training loop to stop after the current epoch."""
        self._stop = True

    # -- profiling / observability ---------------------------------------------
    def _phase(self, name: str) -> ContextManager[object]:
        """The phase's timer/span when instrumented, else a no-op.

        Three shapes: a tracer attached wraps the phase in a span (plus
        the stopwatch when timing is also on); timing alone hands back
        the stopwatch; neither hands back a no-op context — the seed hot
        loop, bit for bit.
        """
        if self.tracer is not None:
            return _TracedPhase(
                self.tracer, name,
                self.phase_timers[name] if self._timed else None,
            )
        return self.phase_timers[name] if self._timed else nullcontext()

    def phase_seconds(self) -> dict[str, float]:
        """Accumulated seconds per hot-loop phase, made disjoint.

        ``score_candidates`` and ``parallel_refresh`` run nested inside
        the sampler's ``update()``, so their time is carved out of
        ``cache_update`` here — the phases partition the hot loop and sum
        to its wall time.  All zeros when neither ``--profile`` nor a
        metrics registry enabled the stopwatches.
        """
        report = {name: timer.elapsed for name, timer in self.phase_timers.items()}
        report["cache_update"] = max(
            0.0,
            report["cache_update"]
            - report["score_candidates"]
            - report["parallel_refresh"],
        )
        return report

    def profile_report(self) -> dict[str, float]:
        """The disjoint phase breakdown (empty unless ``profile=True``)."""
        if not self.profile:
            return {}
        return self.phase_seconds()

    def _sync_metrics(self, stats: dict[str, float]) -> None:
        """Mirror one epoch's aggregates into the attached registry.

        Runs once per epoch (never per batch), before the callbacks fire,
        so exporters observe a consistent post-epoch view.  Cumulative
        phase seconds are mirrored with ``set_total`` — the stopwatches
        stay the single source of truth.
        """
        registry = self.metrics
        assert registry is not None
        registry.counter("train_epochs_total", "training epochs completed").inc()
        registry.counter(
            "train_samples_total", "positive triples consumed"
        ).inc(len(self.dataset.train))
        registry.gauge("train_loss", "mean loss of the last epoch").set(
            stats["loss"]
        )
        registry.gauge("train_nzl", "non-zero-loss ratio (paper NZL)").set(
            stats["nzl"]
        )
        registry.gauge("train_grad_norm", "mean gradient l2 norm").set(
            stats["grad_norm"]
        )
        epoch_seconds = stats.get("epoch_seconds", 0.0)
        if epoch_seconds > 0.0:
            registry.gauge(
                "train_samples_per_sec", "training throughput of the last epoch"
            ).set(len(self.dataset.train) / epoch_seconds)
        for phase, seconds in self.phase_seconds().items():
            registry.counter(
                "train_phase_seconds_total",
                "cumulative hot-loop seconds per phase (disjoint)",
                labels={"phase": phase},
            ).set_total(seconds)

    def cache_report(self) -> dict[str, object]:
        """The sampler's cache introspection (empty for cache-less samplers).

        Key counts, materialised/allocated bytes and — for the
        memory-bounded bucketed backends — load factor and colliding-key
        counts; the CLI prints this next to the phase table under
        ``--profile``.
        """
        stats = getattr(self.sampler, "cache_stats", None)
        return stats() if callable(stats) else {}

    def close(self) -> None:
        """Release sampler-held resources (refresh pool, shared memory).

        Safe to call repeatedly and on samplers without resources; training
        can not continue on this trainer afterwards unless the sampler is
        re-bound.  Also closes the run-log writer, so an aborted run's
        JSONL ends cleanly at the last complete record (no ``run_end``),
        and flushes the trace file when ``trace_out`` was given — spans
        recorded so far survive an abort, like the run log does.
        """
        if self._run_log is not None:
            self._run_log.close()
        if self.tracer is not None and self._trace_out is not None:
            write_trace(self._trace_out, self.tracer.records())
        release = getattr(self.sampler, "close", None)
        if callable(release):
            release()

    # -- main loop -----------------------------------------------------------------
    def run(self, epochs: int | None = None) -> TrainingHistory:
        """Train for ``epochs`` (default: the config's) and return history."""
        n_epochs = self.config.epochs if epochs is None else int(epochs)
        self._stop = False
        for callback in self.callbacks:
            callback.on_train_begin(self)
        epoch = self.epochs_run - 1
        for epoch in range(self.epochs_run, self.epochs_run + n_epochs):
            stats = self.train_epoch(epoch)
            self.history.record(epoch, stats)
            if self.metrics is not None:
                self._sync_metrics(stats)
            for callback in self.callbacks:
                callback.on_epoch_end(self, epoch, stats)
            if self._stop:
                break
        self.epochs_run = epoch + 1
        for callback in self.callbacks:
            callback.on_train_end(self)
        return self.history

    def train_epoch(self, epoch: int) -> dict[str, float]:
        """One pass over the training split; returns the epoch's stats."""
        train = self.dataset.train
        order = (
            self._rng.permutation(len(train))
            if self.config.shuffle
            else np.arange(len(train))
        )
        self.sampler.on_epoch_start(epoch)

        losses: list[float] = []
        nzl_values: list[float] = []
        grad_norms: list[float] = []
        epoch_span = (
            self.tracer.start_span("epoch", "train", args={"epoch": epoch})
            if self.tracer is not None
            else None
        )
        epoch_timer = Timer()
        try:
            with epoch_timer, self._timer:
                for start in range(0, len(train), self.config.batch_size):
                    indices = order[start : start + self.config.batch_size]
                    batch = train[indices]
                    rows = (
                        self._train_rows.take(indices)
                        if self._train_rows is not None
                        else None
                    )
                    batch_stats = self.train_batch(batch, rows)
                    losses.append(batch_stats["loss"])
                    nzl_values.append(batch_stats["nzl"])
                    grad_norms.append(batch_stats["grad_norm"])
                # The last batch's overlapped refresh is still in flight:
                # wait for it inside the epoch clock so epoch_seconds stays
                # honest about the full refresh cost.
                if self._collect_refreshes is not None:
                    with self._phase("refresh_overlap"):
                        self._collect_refreshes()
        finally:
            if epoch_span is not None:
                epoch_span.end()

        stats: dict[str, float] = {
            "loss": float(np.mean(losses)) if losses else 0.0,
            "nzl": float(np.mean(nzl_values)) if nzl_values else 0.0,
            "grad_norm": float(np.mean(grad_norms)) if grad_norms else 0.0,
            "epoch_seconds": epoch_timer.elapsed,
        }
        if self.negative_tracker is not None:
            stats["repeat_ratio"] = self.negative_tracker.repeat_ratio()
            self.negative_tracker.end_epoch()
        changed = getattr(self.sampler, "changed_elements", None)
        if callable(changed):
            stats["cache_changes"] = float(changed(reset=True))
        return stats

    def train_batch(self, batch: np.ndarray, rows: object = None) -> dict[str, float]:
        """Algorithm 2 steps 4-9 for one mini-batch.

        ``rows`` carries precomputed cache-row indices for row-indexed
        samplers (sliced from the split-wide precomputation).
        """
        # Collect the previous batch's overlapped refresh before touching
        # the caches; whatever wait is left is overlap the step failed to
        # hide.  (sample() would collect defensively anyway — collecting
        # here attributes the wait to its own phase, not ``sample``.)
        if self._collect_refreshes is not None:
            with self._phase("refresh_overlap"):
                self._collect_refreshes()
        with self._phase("sample"):
            negatives = (
                self.sampler.sample(batch, rows)
                if rows is not None
                else self.sampler.sample(batch)
            )
        if self.negative_tracker is not None:
            self.negative_tracker.record(negatives)

        with self._phase("score"):
            pos_scores = self.model.score_triples(batch)
            neg_scores = self.model.score_triples(negatives)
            loss_values = self.loss.value(pos_scores, neg_scores)
            d_pos, d_neg = self.loss.score_grads(pos_scores, neg_scores)

        # Alg. 2 step 8: the cache refresh precedes the embedding update.
        with self._phase("cache_update"):
            if rows is not None:
                self.sampler.update(batch, negatives, rows)
            else:
                self.sampler.update(batch, negatives)

        with self._phase("gradients"):
            bag = self.model.grad_triples(batch, d_pos)
            bag.merge(self.model.grad_triples(negatives, d_neg))
            if self.regularizer is not None:
                self.regularizer.add_gradients(
                    bag, self.model.params, self._touched_rows(batch, negatives)
                )
            grad_norm = bag.global_norm()

        with self._phase("optimizer"):
            self.optimizer.step(self.model.params, bag, dirty_mark=self._dirty_mark)

            if self.config.normalize:
                touched = np.concatenate(
                    [batch[:, HEAD], batch[:, TAIL],
                     negatives[:, HEAD], negatives[:, TAIL]]
                )
                self.model.normalize(touched)
                if self._dirty_mark is not None:
                    # Normalisation rewrites the touched entity rows too;
                    # report them so delta syncs stay complete.  (A subset
                    # of the optimizer's rows in practice — marked
                    # explicitly so the sync contract never depends on
                    # that coincidence.)
                    for name in self.model.entity_params:
                        self._dirty_mark(name, touched)

        return {
            "loss": float(np.mean(loss_values)),
            "nzl": self.loss.nonzero_ratio(pos_scores, neg_scores),
            "grad_norm": grad_norm,
        }

    def _touched_rows(
        self, batch: np.ndarray, negatives: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Rows whose embeddings the batch touches, per parameter table."""
        entities = np.concatenate(
            [batch[:, HEAD], batch[:, TAIL], negatives[:, HEAD], negatives[:, TAIL]]
        )
        relations = np.concatenate([batch[:, REL], negatives[:, REL]])
        rows: dict[str, np.ndarray] = {}
        for name in self.model.entity_params:
            rows[name] = entities
        for name in self.model.relation_params:
            rows[name] = relations
        return rows
