"""Training framework: config, trainer, callbacks, pretraining, grid search."""

from repro.train.callbacks import (
    CacheSnapshotCallback,
    Callback,
    EarlyStopping,
    EvalCallback,
)
from repro.train.config import TrainConfig
from repro.train.grid import GridResult, expand_grid, grid_search
from repro.train.pretrain import pretrain, warm_start
from repro.train.trainer import Trainer, TrainingHistory

__all__ = [
    "CacheSnapshotCallback",
    "Callback",
    "EarlyStopping",
    "EvalCallback",
    "GridResult",
    "TrainConfig",
    "Trainer",
    "TrainingHistory",
    "expand_grid",
    "grid_search",
    "pretrain",
    "warm_start",
]
