"""Instrumentation behind the paper's exploration/exploitation study.

Three quantities are tracked across training (Figures 7 and 8):

* **RR** (repeat ratio) — fraction of negative triples within a sliding
  window of epochs that are repeats; high RR = poor exploration;
* **NZL** (non-zero-loss ratio) — fraction of pairs whose loss gradient is
  non-vanishing; high NZL = good exploitation (computed by the loss class,
  recorded here);
* **CE** (changed elements) — number of cache slots replaced per epoch;
  low CE = a stale cache (top update's failure mode).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.data.triples import as_triple_array

__all__ = ["NegativeTracker", "EpochSeries"]


class NegativeTracker:
    """Sliding-window accounting of sampled negative triples (RR metric)."""

    def __init__(self, window_epochs: int = 20) -> None:
        if window_epochs <= 0:
            raise ValueError(f"window_epochs must be > 0, got {window_epochs}")
        self.window_epochs = int(window_epochs)
        self._window: deque[list[tuple[int, int, int]]] = deque(maxlen=window_epochs)
        self._current: list[tuple[int, int, int]] = []

    def record(self, negatives: np.ndarray) -> None:
        """Record a batch of negative triples for the current epoch."""
        array = as_triple_array(negatives)
        self._current.extend(map(tuple, array.tolist()))

    def end_epoch(self) -> None:
        """Seal the current epoch's record and slide the window."""
        self._window.append(self._current)
        self._current = []

    def repeat_ratio(self) -> float:
        """1 - unique/total over the window (plus the open epoch)."""
        all_triples: list[tuple[int, int, int]] = []
        for epoch_record in self._window:
            all_triples.extend(epoch_record)
        all_triples.extend(self._current)
        if not all_triples:
            return 0.0
        return 1.0 - len(set(all_triples)) / len(all_triples)

    def total_recorded(self) -> int:
        """Number of negatives currently inside the window."""
        return sum(len(r) for r in self._window) + len(self._current)


class EpochSeries:
    """A named scalar-per-epoch series (the raw material of every figure)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.epochs: list[int] = []
        self.values: list[float] = []

    def append(self, epoch: int, value: float) -> None:
        """Record ``value`` at ``epoch``."""
        self.epochs.append(int(epoch))
        self.values.append(float(value))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(epochs, values)`` as numpy arrays."""
        return np.asarray(self.epochs), np.asarray(self.values)

    def last(self) -> float:
        """Most recent value (NaN when empty)."""
        return self.values[-1] if self.values else float("nan")

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"EpochSeries({self.name!r}, n={len(self.values)})"
