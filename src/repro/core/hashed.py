"""Memory-bounded hashed cache — the paper's §VI future-work direction.

"When dealing with millions scale KG, memory of storing the cache becomes
a problem.  Using distributed computation or *hashing* will be pursued as
future works."  This module implements the hashing variant: cache keys are
mapped onto a fixed number of buckets, so memory is ``O(buckets * N1)``
regardless of ``|S|``.  Colliding keys share one entry, trading sampling
precision for bounded memory; the extension benchmark measures that
trade-off (bench_ext_hashed_cache).

This dict-bucket implementation is the readable reference; it registers
as the ``hashed`` backend (``make_cache_backend("hashed",
n_buckets=...)``).  The production-scale sibling is
:class:`~repro.core.bucketed.BucketedArrayCache` (``bucketed-array``),
which runs the identical bucket scheme — same
:func:`~repro.data.keyindex.stable_key_hash`, vectorised — on the
preallocated array engine, bit-identical to this one under a seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import Key, NegativeCache
from repro.data.keyindex import BucketIndex, KeyIndex

__all__ = ["HashedNegativeCache", "stable_key_hash"]

# Knuth-style multiplicative mixing constants (deterministic across runs,
# unlike Python's salted hash()).  Must match the vectorised
# ``repro.data.keyindex.stable_key_hash`` (enforced by test).
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xC2B2AE3D27D4EB4F
_MASK = (1 << 64) - 1


def stable_key_hash(key: Key) -> int:
    """Deterministic 64-bit hash of one ``(id, id)`` cache key.

    Scalar counterpart of the vectorised
    :func:`repro.data.keyindex.stable_key_hash` (kept in pure Python —
    cheaper than an array round-trip for the dict backend's one-key-at-a-
    time calls).
    """
    a, b = int(key[0]), int(key[1])
    x = (a * _MIX_A + b * _MIX_B) & _MASK
    x ^= x >> 29
    x = (x * _MIX_A) & _MASK
    x ^= x >> 32
    return x


class HashedNegativeCache(NegativeCache):
    """A :class:`NegativeCache` whose keys share ``n_buckets`` slots."""

    def __init__(
        self,
        size: int,
        n_entities: int,
        rng: np.random.Generator | int | None = None,
        *,
        n_buckets: int = 1024,
        store_scores: bool = False,
    ) -> None:
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be > 0, got {n_buckets}")
        super().__init__(size, n_entities, rng, store_scores=store_scores)
        self.n_buckets = int(n_buckets)
        self._bucket_index: BucketIndex | None = None

    def attach_index(self, index: KeyIndex) -> None:
        """Bind the key→row map; also index the buckets for introspection."""
        super().attach_index(index)
        self._bucket_index = BucketIndex(index, self.n_buckets)

    def _require_buckets(self) -> BucketIndex:
        if self._bucket_index is None:
            raise RuntimeError(
                "HashedNegativeCache has no key index; call "
                "attach_index(KeyIndex) before bucket introspection"
            )
        return self._bucket_index

    def load_factor(self) -> float:
        """Mean indexed keys per bucket (``n_keys / n_buckets``)."""
        return self._require_buckets().load_factor()

    def n_colliding_keys(self) -> int:
        """Indexed keys sharing their bucket with at least one other key."""
        return self._require_buckets().n_colliding_keys()

    def _bucket(self, key: Key) -> Key:
        return (stable_key_hash(key) % self.n_buckets, 0)

    def storage_rows(self, rows: np.ndarray) -> np.ndarray:
        """Bucket row per dense key row (colliding keys share a row)."""
        return np.array(
            [self._bucket(key)[0] for key in self._rows_to_keys(rows)],
            dtype=np.int64,
        )

    def get(self, key: Key) -> np.ndarray:
        """Cached ids for ``key``'s bucket (shared across colliding keys)."""
        return super().get(self._bucket(key))

    def scores(self, key: Key) -> np.ndarray:
        """Stored scores for ``key``'s bucket."""
        return super().scores(self._bucket(key))

    def put(self, key: Key, ids: np.ndarray, scores: np.ndarray | None = None) -> int:
        """Replace ``key``'s bucket contents; returns #changed elements."""
        return super().put(self._bucket(key), ids, scores)

    def __contains__(self, key: Key) -> bool:
        return super().__contains__(self._bucket(key))

    def memory_bound_bytes(self) -> int:
        """Worst-case memory if every bucket materialises."""
        per_entry = self.size * 8 * (2 if self.store_scores else 1)
        return self.n_buckets * per_entry

    def __repr__(self) -> str:
        return (
            f"HashedNegativeCache(size={self.size}, n_buckets={self.n_buckets}, "
            f"entries={self.n_entries})"
        )
