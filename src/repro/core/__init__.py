"""The paper's contribution: cache-based negative sampling.

* :mod:`repro.core.store` — the :class:`CacheStore` protocol all cache
  backends implement, and the options-aware backend registry;
* :mod:`repro.core.array_cache` — preallocated array cache, the fully
  vectorised default backend;
* :mod:`repro.core.cache` — the dict-of-arrays head/tail negative cache
  (ids only, §III-B3; reference backend);
* :mod:`repro.core.strategies` — sample-from-cache and update-cache
  strategies with the exploration/exploitation trade-offs of Figure 6;
* :mod:`repro.core.nscaching` — :class:`NSCachingSampler`, Algorithms 2-3;
* :mod:`repro.core.hashed` — memory-bounded hashed cache (§VI future
  work; dict-bucket reference);
* :mod:`repro.core.bucketed` — the same bucket scheme on the array
  engine: bounded memory *and* vectorised access;
* :mod:`repro.core.stats` — RR / NZL / CE instrumentation (Figures 7-8).
"""

from repro.core.array_cache import ArrayNegativeCache, multiset_overlap_rows
from repro.core.bucketed import BucketedArrayCache
from repro.core.cache import NegativeCache
from repro.core.hashed import HashedNegativeCache, stable_key_hash
from repro.core.nscaching import NSCachingSampler
from repro.core.stats import EpochSeries, NegativeTracker
from repro.core.store import (
    CACHE_BACKENDS,
    CacheStore,
    cache_backend_names,
    make_cache_backend,
    register_backend,
)
from repro.core.strategies import (
    SampleStrategy,
    UpdateStrategy,
    duplicate_mask,
    sample_from_cache,
    select_cache_survivors,
)

__all__ = [
    "ArrayNegativeCache",
    "BucketedArrayCache",
    "CACHE_BACKENDS",
    "CacheStore",
    "EpochSeries",
    "HashedNegativeCache",
    "NSCachingSampler",
    "NegativeCache",
    "NegativeTracker",
    "SampleStrategy",
    "UpdateStrategy",
    "cache_backend_names",
    "duplicate_mask",
    "make_cache_backend",
    "multiset_overlap_rows",
    "register_backend",
    "sample_from_cache",
    "select_cache_survivors",
    "stable_key_hash",
]
