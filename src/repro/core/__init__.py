"""The paper's contribution: cache-based negative sampling.

* :mod:`repro.core.cache` — the head/tail negative cache (ids only,
  §III-B3);
* :mod:`repro.core.strategies` — sample-from-cache and update-cache
  strategies with the exploration/exploitation trade-offs of Figure 6;
* :mod:`repro.core.nscaching` — :class:`NSCachingSampler`, Algorithms 2-3;
* :mod:`repro.core.hashed` — memory-bounded hashed cache (§VI future work);
* :mod:`repro.core.stats` — RR / NZL / CE instrumentation (Figures 7-8).
"""

from repro.core.cache import NegativeCache
from repro.core.hashed import HashedNegativeCache, stable_key_hash
from repro.core.nscaching import NSCachingSampler
from repro.core.stats import EpochSeries, NegativeTracker
from repro.core.strategies import (
    SampleStrategy,
    UpdateStrategy,
    duplicate_mask,
    sample_from_cache,
    select_cache_survivors,
)

__all__ = [
    "EpochSeries",
    "HashedNegativeCache",
    "NSCachingSampler",
    "NegativeCache",
    "NegativeTracker",
    "SampleStrategy",
    "UpdateStrategy",
    "duplicate_mask",
    "sample_from_cache",
    "select_cache_survivors",
    "stable_key_hash",
]
