"""The negative-sample cache (paper §III-B).

NSCaching maintains a *head cache* ``H`` indexed by ``(r, t)`` and a *tail
cache* ``T`` indexed by ``(h, r)``; each entry holds ``N1`` entity ids whose
corruptions currently score high.  Only indices are stored (§III-B3), so
memory is ``O(|S| * N1)`` integers worst-case and much less in practice
because 1-N / N-1 / N-N triples share entries.

Entries are created lazily with uniformly random entities the first time a
key is touched, which is the "from scratch" initialisation the paper trains
with.  Optionally each entry also stores the scores from its last refresh —
needed only by the IS/top *sampling* strategies of the Figure 6(a) ablation
(the paper notes this as their extra memory cost).
"""

from __future__ import annotations

import numpy as np

from repro.data.keyindex import KeyIndex
from repro.utils.rng import ensure_rng

__all__ = ["NegativeCache"]

Key = tuple[int, int]


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark an array read-only (cache entries are replaced, never mutated)."""
    array.setflags(write=False)
    return array


class NegativeCache:
    """A mapping ``(id, id) -> N1 cached entity ids (+ optional scores)``."""

    def __init__(
        self,
        size: int,
        n_entities: int,
        rng: np.random.Generator | int | None = None,
        *,
        store_scores: bool = False,
    ) -> None:
        if size <= 0:
            raise ValueError(f"cache size N1 must be > 0, got {size}")
        if n_entities <= 0:
            raise ValueError(f"n_entities must be > 0, got {n_entities}")
        self.size = int(size)
        self.n_entities = int(n_entities)
        self.store_scores = bool(store_scores)
        self.rng = ensure_rng(rng)
        self._ids: dict[Key, np.ndarray] = {}
        self._scores: dict[Key, np.ndarray] = {}
        self._key_index: KeyIndex | None = None
        #: Total cache elements replaced since construction (the CE metric).
        self.changed_elements = 0
        #: Number of entries created lazily.
        self.initialised_entries = 0

    # -- access ------------------------------------------------------------
    def get(self, key: Key) -> np.ndarray:
        """Entity ids cached under ``key`` (random-initialised on first touch).

        The returned array is a **read-only view** of cache state; writing
        through it raises instead of silently corrupting the cache.
        """
        entry = self._ids.get(key)
        if entry is None:
            entry = _frozen(
                self.rng.integers(0, self.n_entities, size=self.size, dtype=np.int64)
            )
            self._ids[key] = entry
            if self.store_scores:
                self._scores[key] = _frozen(np.zeros(self.size, dtype=np.float64))
            self.initialised_entries += 1
        return entry

    def scores(self, key: Key) -> np.ndarray:
        """Stored scores for ``key`` (zeros until the first refresh)."""
        if not self.store_scores:
            raise RuntimeError("cache was built with store_scores=False")
        self.get(key)  # ensure the entry exists
        return self._scores[key]

    def get_many(self, keys: list[Key]) -> np.ndarray:
        """Stack cached ids for a batch of keys; shape ``[len(keys), N1]``."""
        return np.stack([self.get(key) for key in keys])

    def scores_many(self, keys: list[Key]) -> np.ndarray:
        """Stack stored scores for a batch of keys."""
        return np.stack([self.scores(key) for key in keys])

    # -- CacheStore: row-addressed access -------------------------------------
    # Reference implementation of the protocol the vectorised
    # ArrayNegativeCache is measured against: rows are translated back to
    # tuple keys and served by the per-key dict machinery above.
    def attach_index(self, index: KeyIndex) -> None:
        """Bind the key→row map used by gather/scatter."""
        self._key_index = index

    def _rows_to_keys(self, rows: np.ndarray) -> list[Key]:
        if self._key_index is None:
            raise RuntimeError(
                f"{type(self).__name__} has no key index; call "
                "attach_index(KeyIndex) before gather/scatter"
            )
        return [self._key_index.key_of(int(row)) for row in np.asarray(rows)]

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Cached ids for a batch of rows; shape ``[len(rows), N1]``."""
        return self.get_many(self._rows_to_keys(rows))

    def gather_scores(self, rows: np.ndarray) -> np.ndarray:
        """Stored scores for a batch of rows."""
        return self.scores_many(self._rows_to_keys(rows))

    def storage_rows(self, rows: np.ndarray) -> np.ndarray:
        """Stored row per dense key row (identity: one entry per key)."""
        return np.asarray(rows, dtype=np.int64)

    def scatter(
        self,
        rows: np.ndarray,
        ids: np.ndarray,
        scores: np.ndarray | None = None,
        *,
        changed: int | None = None,
    ) -> int:
        """Row-by-row :meth:`put`; returns total #elements that changed.

        ``changed`` (a caller-derived CE count, see the array engine) is
        deliberately *ignored* here: the dict backend always recounts via
        the per-put multiset walk, which makes it the reference the fused
        column-derived CE is parity-tested against.
        """
        keys = self._rows_to_keys(rows)
        ids = np.asarray(ids)
        if ids.shape != (len(keys), self.size):
            raise ValueError(
                f"entries must have shape ({len(keys)}, {self.size}), got {ids.shape}"
            )
        if scores is not None:
            # Validate up front: a wrong-shaped block would otherwise fail
            # (or broadcast) mid-loop, leaving earlier rows written.
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (len(keys), self.size):
                raise ValueError(
                    f"scores must have shape ({len(keys)}, {self.size}) to "
                    f"match ids, got {scores.shape}"
                )
        changed = 0
        for i, key in enumerate(keys):
            changed += self.put(key, ids[i], scores[i] if scores is not None else None)
        return changed

    # -- mutation -------------------------------------------------------------
    def put(self, key: Key, ids: np.ndarray, scores: np.ndarray | None = None) -> int:
        """Replace the entry under ``key``; returns #elements that changed.

        The changed-element count compares id multisets, which is the CE
        metric of Figure 8: a refresh that re-selects the same entities
        counts as zero change.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != (self.size,):
            raise ValueError(f"entry must have shape ({self.size},), got {ids.shape}")
        # All validation precedes any write so a rejected put leaves the
        # entry untouched (no partial id-without-scores state).
        if self.store_scores and scores is None:
            raise ValueError("store_scores=True cache requires scores on put()")
        if scores is not None:
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (self.size,):
                raise ValueError(
                    f"scores must have shape ({self.size},) to match the "
                    f"entry, got {scores.shape}"
                )
        old = self._ids.get(key)
        if old is None:
            changed = self.size
            self.initialised_entries += 1
        else:
            # Multiset difference size via sorted comparison.
            changed = self.size - _multiset_overlap(old, ids)
        self._ids[key] = _frozen(ids.copy())
        if self.store_scores:
            assert scores is not None
            self._scores[key] = _frozen(scores.copy())
        self.changed_elements += changed
        return changed

    # -- introspection ------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Number of materialised cache entries."""
        return len(self._ids)

    def keys(self) -> list[Key]:
        """All materialised keys."""
        return list(self._ids.keys())

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the stored arrays."""
        total = sum(a.nbytes for a in self._ids.values())
        total += sum(a.nbytes for a in self._scores.values())
        return total

    def reset_counters(self) -> None:
        """Zero the CE / initialisation counters (per-epoch accounting)."""
        self.changed_elements = 0
        self.initialised_entries = 0

    def __contains__(self, key: Key) -> bool:
        return key in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self.size}, entries={self.n_entries}, "
            f"store_scores={self.store_scores})"
        )


def _multiset_overlap(a: np.ndarray, b: np.ndarray) -> int:
    """Size of the multiset intersection of two equal-length id arrays."""
    a = np.sort(a)
    b = np.sort(b)
    i = j = overlap = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            overlap += 1
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return overlap
