"""Memory-bounded bucketed array cache — §VI hashing on the fast path.

:class:`~repro.core.hashed.HashedNegativeCache` implements the paper's
hashing answer to cache memory, but over the slow per-key dict machinery.
This backend ports the same bucket scheme onto the preallocated array
engine: storage is ``int64[n_buckets, N1]`` (+ optional scores) no matter
how many distinct keys the training split has, and every access stays a
single fancy index because the key→bucket map is precomputed by a
:class:`~repro.data.keyindex.BucketIndex` (one vectorised
:func:`~repro.data.keyindex.stable_key_hash` pass at attach time).

Colliding keys share a row exactly as the dict-hashed backend's colliding
keys share an entry — same hash, same buckets, same RNG consumption — so
the two backends are bit-identical under a fixed seed (enforced by the
parity suite in ``tests/integration/test_backend_parity.py``).  The
bucket row-space is also the seam the ROADMAP sharding items will split:
shards own disjoint bucket ranges regardless of the key distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.array_cache import ArrayNegativeCache
from repro.data.keyindex import BucketIndex, KeyIndex

__all__ = ["BucketedArrayCache"]


class BucketedArrayCache(ArrayNegativeCache):
    """An :class:`ArrayNegativeCache` whose keys share ``n_buckets`` rows."""

    def __init__(
        self,
        size: int,
        n_entities: int,
        rng: np.random.Generator | int | None = None,
        *,
        n_buckets: int = 1024,
        store_scores: bool = False,
    ) -> None:
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be > 0, got {n_buckets}")
        super().__init__(size, n_entities, rng, store_scores=store_scores)
        self.n_buckets = int(n_buckets)
        self._buckets: BucketIndex | None = None

    # -- lifecycle -----------------------------------------------------------
    def _storage_rows(self, index: KeyIndex) -> int:
        # The memory bound: allocation is O(n_buckets * N1) independent of
        # the number of distinct keys.
        return self.n_buckets

    def attach_index(self, index: KeyIndex) -> None:
        """Bind the key→row map and hash every key to its bucket once."""
        self._buckets = BucketIndex(index, self.n_buckets)
        super().attach_index(index)

    def _bucket_rows(self, rows: np.ndarray) -> np.ndarray:
        self._require_index()
        assert self._buckets is not None
        return self._buckets.bucket_rows(np.asarray(rows, dtype=np.int64))

    def storage_rows(self, rows: np.ndarray) -> np.ndarray:
        """Bucket row per dense key row (colliding keys share a row)."""
        return self._bucket_rows(rows)

    # -- access (dense key rows in, bucket rows under the hood) ----------------
    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Cached ids for dense key ``rows``, served from their buckets."""
        return super().gather(self._bucket_rows(rows))

    def gather_scores(self, rows: np.ndarray) -> np.ndarray:
        """Stored scores for dense key ``rows``' buckets."""
        if not self.store_scores:
            raise RuntimeError("cache was built with store_scores=False")
        return super().gather_scores(self._bucket_rows(rows))

    def scatter(
        self,
        rows: np.ndarray,
        ids: np.ndarray,
        scores: np.ndarray | None = None,
        *,
        changed: int | None = None,
    ) -> int:
        """Replace the buckets of dense key ``rows``; returns the CE count.

        Keys of one batch that collide into the same bucket follow the
        repeated-row semantics of the array engine: each write's CE is
        counted against the previous write and the last write wins —
        exactly the dict-hashed backend's sequential ``put`` behaviour.
        A caller-derived ``changed`` hint is only valid when the *bucket*
        rows are unique, which is what callers must check via
        :meth:`storage_rows`.
        """
        return super().scatter(self._bucket_rows(rows), ids, scores, changed=changed)

    # -- key-addressed access (probing / callbacks) ----------------------------
    # Hashing serves *any* key, not just indexed ones, matching the
    # dict-hashed backend's reachability.
    def get(self, key: tuple[int, int]) -> np.ndarray:
        """Cached ids for ``key``'s bucket (shared across colliding keys)."""
        self._require_index()
        assert self._buckets is not None
        row = np.array([self._buckets.bucket_of(key)], dtype=np.int64)
        return super().gather(row)[0]

    def scores(self, key: tuple[int, int]) -> np.ndarray:
        """Stored scores for ``key``'s bucket."""
        if not self.store_scores:
            raise RuntimeError("cache was built with store_scores=False")
        self._require_index()
        assert self._buckets is not None
        row = np.array([self._buckets.bucket_of(key)], dtype=np.int64)
        return super().gather_scores(row)[0]

    def __contains__(self, key: tuple[int, int]) -> bool:
        if self._buckets is None or self._live is None:
            return False
        return bool(self._live[self._buckets.bucket_of(key)])

    def keys(self) -> list[tuple[int, int]]:
        """Synthetic ``(bucket, 0)`` keys of all materialised buckets (the
        dict-hashed backend's bucket keys; real keys are many-to-one)."""
        if self._live is None:
            return []
        return [(int(bucket), 0) for bucket in np.flatnonzero(self._live)]

    # -- collision / memory introspection --------------------------------------
    def _require_buckets(self) -> BucketIndex:
        # Collision stats need only the bucket index, not live storage —
        # they stay readable on a sharded store whose segments were
        # released.
        if self._buckets is None:
            raise RuntimeError(
                "BucketedArrayCache has no bucket index; call "
                "attach_index(KeyIndex) before bucket introspection"
            )
        return self._buckets

    def load_factor(self) -> float:
        """Mean indexed keys per bucket (``n_keys / n_buckets``)."""
        return self._require_buckets().load_factor()

    def n_colliding_keys(self) -> int:
        """Indexed keys sharing their bucket with at least one other key."""
        return self._require_buckets().n_colliding_keys()

    def memory_bound_bytes(self) -> int:
        """Worst-case memory if every bucket materialises (the §VI bound)."""
        per_entry = self.size * 8 * (2 if self.store_scores else 1)
        return self.n_buckets * per_entry

    def __repr__(self) -> str:
        n_keys = self._index.n_keys if self._index is not None else 0
        return (
            f"BucketedArrayCache(size={self.size}, n_buckets={self.n_buckets}, "
            f"n_keys={n_keys}, entries={self.n_entries}, "
            f"store_scores={self.store_scores})"
        )
