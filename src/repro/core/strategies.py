"""Sample-from-cache and update-cache strategies (paper §III-B1 / §III-B2).

The paper's design space, studied in Figure 6:

* **sampling** (Alg. 2 step 6) — how to pick the corrupting entity from a
  cache entry: ``uniform`` (the paper's choice: unbiased, balances
  exploration/exploitation), ``importance`` (probability proportional to
  ``softmax(score)``; biased towards stale scores and false negatives) or
  ``top`` (always the largest score; worst — it locks onto false
  negatives);
* **updating** (Alg. 3) — how to select the ``N1`` survivors from the
  ``N1 + N2`` union of cache and fresh candidates: ``importance``
  (sampling *without replacement* proportional to ``softmax(score)``, the
  paper's choice), ``top`` (deterministic top-N1; under-explores, Fig. 8)
  or ``uniform`` (ignores scores; loses the hard-negative signal).

Without-replacement softmax sampling is implemented with the Gumbel-top-k
trick so whole batches are processed with one vectorised ``argpartition``.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = [
    "SampleStrategy",
    "SurvivorSelection",
    "UpdateStrategy",
    "duplicate_mask",
    "sample_from_cache",
    "select_cache_survivors",
    "selection_changed_elements",
]


class SampleStrategy(str, Enum):
    """How to draw the corrupting entity from a cache entry."""

    UNIFORM = "uniform"
    IMPORTANCE = "importance"
    TOP = "top"


class UpdateStrategy(str, Enum):
    """How to select the new cache contents from the candidate union."""

    IMPORTANCE = "importance"
    TOP = "top"
    UNIFORM = "uniform"


def duplicate_mask(ids: np.ndarray) -> np.ndarray:
    """True at positions holding a *repeat* of an id earlier in the row.

    The Alg. 3 union ``H ∪ Rm`` can contain the same entity twice (cache
    hit in the random draw, or repeats inside the draw); masking repeats
    prevents double probability mass and duplicate cache entries.

    Implementation: pack ``(row, value, column)`` into one int64 per
    element and sort the flat array once — within a run of equal
    ``(row, value)`` the smallest column sorts first, so every later
    element of the run is a repeat.  One flat sort beats a per-row
    stable argsort + scatter by ~2x at hot-loop sizes.
    """
    ids = np.asarray(ids, dtype=np.int64)
    n_rows, n_cols = ids.shape
    if ids.size == 0:
        return np.zeros_like(ids, dtype=bool)
    lo = int(ids.min())
    span = int(ids.max()) - lo + 1
    if n_rows * span * n_cols >= 2**62:  # fall back for extreme id ranges
        order = np.argsort(ids, axis=1, kind="stable")
        sorted_ids = np.take_along_axis(ids, order, axis=1)
        dup_sorted = np.zeros_like(ids, dtype=bool)
        dup_sorted[:, 1:] = sorted_ids[:, 1:] == sorted_ids[:, :-1]
        mask = np.zeros_like(dup_sorted)
        np.put_along_axis(mask, order, dup_sorted, axis=1)
        return mask
    row_base = (np.arange(n_rows, dtype=np.int64) * span)[:, None]
    codes = ((row_base + (ids - lo)) * n_cols + np.arange(n_cols)).ravel()
    codes.sort()
    repeats = codes[1:][codes[1:] // n_cols == codes[:-1] // n_cols]
    mask = np.zeros(n_rows * n_cols, dtype=bool)
    mask[(repeats // (span * n_cols)) * n_cols + repeats % n_cols] = True
    return mask.reshape(n_rows, n_cols)


def _gumbel(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    u = rng.random(shape)
    return -np.log(-np.log(np.clip(u, 1e-300, 1.0)))


def sample_from_cache(
    ids: np.ndarray,
    scores: np.ndarray | None,
    strategy: SampleStrategy,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Pick one entity per row from cached ``ids``; returns shape ``[B]``.

    ``scores`` (same shape as ``ids``) is required for the importance and
    top strategies; the uniform strategy ignores it.
    """
    rng = ensure_rng(rng)
    ids = np.asarray(ids, dtype=np.int64)
    b, n = ids.shape
    strategy = SampleStrategy(strategy)
    if strategy is SampleStrategy.UNIFORM:
        cols = rng.integers(0, n, size=b)
    else:
        if scores is None:
            raise ValueError(f"strategy {strategy.value!r} requires scores")
        scores = np.asarray(scores, dtype=np.float64)
        if strategy is SampleStrategy.TOP:
            cols = np.argmax(scores, axis=1)
        else:  # IMPORTANCE: one softmax draw == Gumbel argmax.
            cols = np.argmax(scores + _gumbel(scores.shape, rng), axis=1)
    return ids[np.arange(b), cols]


class SurvivorSelection(NamedTuple):
    """One Alg. 3 selection with its column structure preserved.

    ``columns[b, j]`` is the union column survivor ``ids[b, j]`` was taken
    from; ``filled[b]`` flags rows where a duplicate-suppressed (``-inf``
    key) column had to be selected because the row had fewer distinct
    candidates than ``n_keep``.  The column structure is what
    :func:`selection_changed_elements` derives the CE metric from without
    re-sorting the id block.
    """

    ids: np.ndarray
    scores: np.ndarray | None
    columns: np.ndarray
    filled: np.ndarray


def selection_changed_elements(
    selection: SurvivorSelection, storage_rows: np.ndarray, n_keep: int
) -> int | None:
    """CE of scattering ``selection`` back, derived from column structure.

    The fused refresh gathers the cache entry into union columns
    ``[0, n_keep)`` and fresh draws into the rest, then selects with
    within-row duplicates suppressed.  A survivor taken from a column
    ``< n_keep`` is therefore an entity that was already cached, and one
    taken from a column ``>= n_keep`` (a non-duplicate, so its *first*
    occurrence in the row) cannot appear among the cached columns — the
    multiset overlap with the previous entry is exactly the number of
    survivor columns ``< n_keep``, no sort needed.

    Returns ``None`` when the shortcut does not apply and the scatter-side
    sorted reference (:func:`repro.core.array_cache.multiset_overlap_rows`)
    must run instead: duplicate-filled rows (a selected duplicate breaks
    the first-occurrence argument) or repeated storage rows in the batch
    (CE is then counted against the *previous write*, not the gathered
    entry).  Agreement with the sorted path is property-tested.
    """
    if bool(selection.filled.any()):
        return None
    storage_rows = np.asarray(storage_rows, dtype=np.int64)
    if len(storage_rows) > 1:
        sorted_rows = np.sort(storage_rows)
        if bool((sorted_rows[1:] == sorted_rows[:-1]).any()):
            return None
    overlap = int(np.count_nonzero(selection.columns < n_keep))
    return n_keep * len(storage_rows) - overlap


def select_cache_survivors(
    candidate_ids: np.ndarray,
    candidate_scores: np.ndarray,
    n_keep: int,
    strategy: UpdateStrategy,
    rng: np.random.Generator | int | None = None,
    *,
    return_scores: bool = True,
    return_selection: bool = False,
) -> tuple[np.ndarray, np.ndarray | None] | SurvivorSelection:
    """Select ``n_keep`` entries per row from the Alg. 3 candidate union.

    Returns ``(ids, scores)`` each of shape ``[B, n_keep]``.  Duplicate ids
    within a row are suppressed before selection.  Importance selection is
    sampling *without replacement* with probability ``softmax(score)``
    (Eq. 6), realised as top-``n_keep`` of ``score + Gumbel noise``.

    This runs once per cache per batch in the refresh hot loop, so the
    selection keys are built in place (Gumbel noise reused as the key
    buffer) rather than through ``np.where`` copies, and the score gather
    is skipped entirely with ``return_scores=False`` (the caches only
    co-store scores for the IS/top sampling strategies) — ``scores`` is
    then ``None``.  RNG consumption is identical either way, so toggling
    it cannot perturb a seeded run.

    With ``return_selection=True`` the result is a
    :class:`SurvivorSelection` that additionally carries the selected
    union columns and the duplicate-fill flags, the inputs of the
    sort-free CE derivation (:func:`selection_changed_elements`).
    """
    rng = ensure_rng(rng)
    candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
    candidate_scores = np.asarray(candidate_scores, dtype=np.float64)
    if candidate_ids.shape != candidate_scores.shape:
        raise ValueError(
            f"ids {candidate_ids.shape} and scores {candidate_scores.shape} disagree"
        )
    b, n = candidate_ids.shape
    if n_keep > n:
        raise ValueError(f"cannot keep {n_keep} of {n} candidates")
    strategy = UpdateStrategy(strategy)

    # Suppress within-row duplicates; -inf keys are never selected unless a
    # row has fewer uniques than n_keep, in which case duplicates fill in
    # (harmless: the cache then holds a repeat, as the paper's would).
    dup = duplicate_mask(candidate_ids)
    if strategy is UpdateStrategy.TOP:
        keys = candidate_scores.copy()
    elif strategy is UpdateStrategy.IMPORTANCE:
        keys = _gumbel(candidate_scores.shape, rng)
        keys += candidate_scores
    else:  # UNIFORM
        keys = rng.random((b, n))
    keys[dup] = -np.inf

    top = np.argpartition(-keys, n_keep - 1, axis=1)[:, :n_keep]
    rows = np.arange(b)[:, None]
    ids = candidate_ids[rows, top]
    scores = candidate_scores[rows, top] if return_scores else None
    if not return_selection:
        return ids, scores
    filled = np.isneginf(keys[rows, top]).any(axis=1)
    return SurvivorSelection(ids, scores, top, filled)
