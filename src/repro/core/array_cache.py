"""Array-backed negative cache: the NSCaching hot loop as pure numpy.

The dict cache of :mod:`repro.core.cache` pays Python-level costs per key
per batch: tuple construction, dict lookups, a per-row ``put`` loop and a
pure-Python multiset walk for the CE metric.  This module stores the whole
cache as one preallocated block instead::

    ids    : int64  [n_keys, N1]   cached entity ids, one row per key
    scores : float64[n_keys, N1]   optional (IS/top sampling only)
    _live  : bool   [n_keys]       which rows have been initialised

Rows are addressed by the dense indices of a
:class:`~repro.data.keyindex.KeyIndex` (attached once at bind time), so a
batch access is a single fancy-index ``gather`` and a refresh is a single
``scatter`` — zero per-row Python.  Lazy random initialisation draws from
the generator in first-occurrence order, which keeps the RNG stream
bit-identical to the dict cache's per-key draws: both backends produce the
same training trajectory from the same seed.

The CE metric (changed cache elements, Figure 8) is computed for a whole
batch at once by :func:`multiset_overlap_rows`, an exact vectorised
replacement for the per-entry Python merge walk.
"""

from __future__ import annotations

import numpy as np

from repro.data.keyindex import KeyIndex
from repro.utils.rng import ensure_rng

__all__ = ["ArrayNegativeCache", "multiset_overlap_rows"]


def _occurrence_rank(sorted_rows: np.ndarray) -> np.ndarray:
    """Per element of a row-wise sorted array: its index among equal values.

    ``[3, 5, 5, 5, 9] -> [0, 0, 1, 2, 0]``.  Tagging each value with its
    rank makes multisets behave as sets: ``min(count_a(v), count_b(v))``
    equals the number of ``(v, rank)`` pairs the two rows share.
    """
    b, n = sorted_rows.shape
    idx = np.broadcast_to(np.arange(n), (b, n))
    is_run_start = np.ones((b, n), dtype=bool)
    is_run_start[:, 1:] = sorted_rows[:, 1:] != sorted_rows[:, :-1]
    run_start = np.maximum.accumulate(np.where(is_run_start, idx, 0), axis=1)
    return idx - run_start


def multiset_overlap_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise multiset intersection sizes of two ``[B, N]`` id arrays.

    Exact vectorised equivalent of running
    :func:`repro.core.cache._multiset_overlap` on every row pair.

    Method: tag every element with its occurrence rank among equal values
    in its (sorted) row.  ``(row, value, rank)`` records are unique within
    each side, and ``min(count_a(v), count_b(v))`` is exactly the number of
    records the two sides share — so the multiset problem becomes a set
    intersection.  Packing each record into one int64 turns that into a
    single flat sort: shared records land as adjacent equal pairs.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 2:
        raise ValueError(f"expected equal [B, N] shapes, got {a.shape} and {b.shape}")
    n_rows, n_cols = a.shape
    if a.size == 0:
        return np.zeros(n_rows, dtype=np.int64)
    a = np.sort(a, axis=1)
    b = np.sort(b, axis=1)
    lo = min(int(a[:, 0].min()), int(b[:, 0].min()))
    hi = max(int(a[:, -1].max()), int(b[:, -1].max()))
    span = hi - lo + 1
    if n_rows * span * n_cols >= 2**62:
        # Packed codes would overflow int64 (extreme id ranges); run the
        # same adjacency trick through an explicit lexsort over
        # (row, value, rank) records instead — overflow-free, mirroring
        # duplicate_mask's wide-id fallback.
        rows = np.repeat(np.arange(n_rows, dtype=np.int64), n_cols)
        rows = np.concatenate([rows, rows])
        values = np.concatenate([a.ravel(), b.ravel()])
        ranks = np.concatenate(
            [_occurrence_rank(a).ravel(), _occurrence_rank(b).ravel()]
        )
        order = np.lexsort((ranks, values, rows))
        rows, values, ranks = rows[order], values[order], ranks[order]
        same = (
            (rows[1:] == rows[:-1])
            & (values[1:] == values[:-1])
            & (ranks[1:] == ranks[:-1])
        )
        return np.bincount(rows[:-1][same], minlength=n_rows).astype(np.int64)
    row_base = (np.arange(n_rows, dtype=np.int64) * span)[:, None]
    codes = np.concatenate(
        [
            ((row_base + (a - lo)) * n_cols + _occurrence_rank(a)).ravel(),
            ((row_base + (b - lo)) * n_cols + _occurrence_rank(b)).ravel(),
        ]
    )
    codes.sort()
    matched = codes[:-1][codes[1:] == codes[:-1]]
    return np.bincount(matched // (span * n_cols), minlength=n_rows).astype(np.int64)


class ArrayNegativeCache:
    """A preallocated, fully vectorised negative cache (CacheStore).

    Construction mirrors :class:`~repro.core.cache.NegativeCache` (so both
    fit the same ``cache_factory`` signature); storage is allocated when a
    :class:`~repro.data.keyindex.KeyIndex` is attached, which fixes the
    number of rows.
    """

    #: This backend honours a caller-derived ``changed=`` CE hint on
    #: :meth:`scatter` (skipping the multiset sort).  Callers check this
    #: before paying for the derivation — the dict backends recount
    #: regardless, so computing a hint for them would be pure waste.
    consumes_changed_hint = True

    def __init__(
        self,
        size: int,
        n_entities: int,
        rng: np.random.Generator | int | None = None,
        *,
        store_scores: bool = False,
    ) -> None:
        if size <= 0:
            raise ValueError(f"cache size N1 must be > 0, got {size}")
        if n_entities <= 0:
            raise ValueError(f"n_entities must be > 0, got {n_entities}")
        self.size = int(size)
        self.n_entities = int(n_entities)
        self.store_scores = bool(store_scores)
        self.rng = ensure_rng(rng)
        self._index: KeyIndex | None = None
        self._ids: np.ndarray | None = None
        self._scores: np.ndarray | None = None
        self._live: np.ndarray | None = None
        #: Total cache elements replaced since construction (the CE metric).
        self.changed_elements = 0
        #: Number of entries created lazily.
        self.initialised_entries = 0

    # -- lifecycle -----------------------------------------------------------
    def _storage_rows(self, index: KeyIndex) -> int:
        """Rows to preallocate: one per distinct key (subclasses may bound
        this — the bucketed backend allocates ``n_buckets`` instead)."""
        return index.n_keys

    def _alloc(self, shape: tuple[int, ...], dtype: type) -> np.ndarray:
        """Allocate one storage block (hook: the sharded backend allocates
        ``multiprocessing.shared_memory`` segments here instead)."""
        return np.zeros(shape, dtype=dtype)

    def attach_index(self, index: KeyIndex) -> None:
        """Bind the key→row map and preallocate storage for its rows."""
        self._index = index
        n_rows = self._storage_rows(index)
        self._ids = self._alloc((n_rows, self.size), np.int64)
        self._live = self._alloc((n_rows,), bool)
        if self.store_scores:
            self._scores = self._alloc((n_rows, self.size), np.float64)

    def attach_storage(
        self,
        index: KeyIndex | None,
        ids: np.ndarray,
        live: np.ndarray,
        scores: np.ndarray | None = None,
    ) -> None:
        """Bind to externally allocated storage instead of allocating.

        This is how :class:`~repro.parallel.pool.RefreshPool` workers view
        the parent's shared-memory blocks: gather/scatter then operate on
        the shared rows directly.  ``index`` may be ``None`` when only
        row-addressed access is needed (key-addressed probes then raise).
        """
        if ids.ndim != 2 or ids.shape[1] != self.size:
            raise ValueError(f"ids must have shape [n_rows, {self.size}], got {ids.shape}")
        if live.shape != (ids.shape[0],):
            raise ValueError(
                f"live must have shape ({ids.shape[0]},), got {live.shape}"
            )
        if self.store_scores:
            if scores is None or scores.shape != ids.shape:
                raise ValueError(
                    "store_scores=True storage requires a scores block "
                    f"of shape {ids.shape}"
                )
        self._index = index
        self._ids = ids
        self._live = live
        self._scores = scores if self.store_scores else None

    def _require_index(self) -> KeyIndex | None:
        if self._ids is None or self._live is None:
            raise RuntimeError(
                "ArrayNegativeCache has no storage yet; call "
                "attach_index(KeyIndex) before gather/scatter"
            )
        return self._index

    # -- access --------------------------------------------------------------
    def storage_rows(self, rows: np.ndarray) -> np.ndarray:
        """Translate dense key rows to the rows actually stored.

        The identity here (one storage row per key); the bucketed backend
        returns bucket rows.  This is the row-space that
        :class:`~repro.parallel.plan.ShardPlan` partitions and that CE
        repeat-write semantics are defined over.
        """
        return np.asarray(rows, dtype=np.int64)

    def _materialise(self, rows: np.ndarray) -> None:
        """Random-init any not-yet-live rows, in first-occurrence order.

        First-occurrence order (not sorted order) matters: it makes the
        generator consume draws exactly as the dict cache's lazy per-key
        ``get`` does, keeping the two backends bit-identical under a seed.
        """
        assert self._ids is not None and self._live is not None
        pending = rows[~self._live[rows]]
        if len(pending) == 0:
            return
        uniq, first_pos = np.unique(pending, return_index=True)
        uniq = uniq[np.argsort(first_pos, kind="stable")]
        self._ids[uniq] = self.rng.integers(
            0, self.n_entities, size=(len(uniq), self.size), dtype=np.int64
        )
        self._live[uniq] = True
        self.initialised_entries += len(uniq)

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Cached ids for a batch of rows; shape ``[len(rows), N1]``.

        Rows never touched before are random-initialised first (the
        paper's from-scratch init).  The result is a copy — mutating it
        cannot corrupt cache state.
        """
        self._require_index()
        rows = np.asarray(rows, dtype=np.int64)
        self._materialise(rows)
        assert self._ids is not None
        return self._ids[rows]

    def gather_scores(self, rows: np.ndarray) -> np.ndarray:
        """Stored scores for a batch of rows (zeros until first refresh)."""
        if not self.store_scores:
            raise RuntimeError("cache was built with store_scores=False")
        self._require_index()
        rows = np.asarray(rows, dtype=np.int64)
        self._materialise(rows)
        assert self._scores is not None
        return self._scores[rows]

    # -- mutation ------------------------------------------------------------
    def scatter(
        self,
        rows: np.ndarray,
        ids: np.ndarray,
        scores: np.ndarray | None = None,
        *,
        changed: int | None = None,
    ) -> int:
        """Replace the entries at ``rows``; returns #elements that changed.

        Semantically equivalent to calling the dict cache's ``put`` once
        per row in order: when a batch repeats a row, each write's CE is
        counted against the *previous* write, and the last write wins.

        ``changed`` is an optional caller-derived CE count (the fused
        refresh computes it from the selection's column structure, see
        :func:`~repro.core.strategies.selection_changed_elements`).  When
        given, the scatter-side multiset sort is skipped entirely; the
        caller guarantees ``rows`` are unique and were gathered (hence
        live) in the same refresh — exactly the conditions under which
        the column derivation is exact.
        """
        self._require_index()
        assert self._ids is not None and self._live is not None
        rows = np.asarray(rows, dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != (len(rows), self.size):
            raise ValueError(
                f"entries must have shape ({len(rows)}, {self.size}), got {ids.shape}"
            )
        if self.store_scores and scores is None:
            raise ValueError("store_scores=True cache requires scores on scatter()")
        if scores is not None:
            # Validate before any write: a wrong-shaped block would
            # otherwise broadcast or partially fill the score storage.
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (len(rows), self.size):
                raise ValueError(
                    f"scores must have shape ({len(rows)}, {self.size}) to "
                    f"match ids, got {scores.shape}"
                )
        if len(rows) == 0:
            return 0

        if changed is not None:
            # Fast path: CE precomputed from the selection's column
            # structure; rows are unique so direct assignment is the
            # last-write-wins semantics for free.
            self.initialised_entries += int(np.count_nonzero(~self._live[rows]))
            self._ids[rows] = ids
            self._live[rows] = True
            if self.store_scores:
                assert self._scores is not None and scores is not None
                self._scores[rows] = scores
            self.changed_elements += int(changed)
            return int(changed)

        prev = self._ids[rows]
        live = self._live[rows].copy()
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        dup = sorted_rows[1:] == sorted_rows[:-1]
        repeat = np.zeros(len(rows), dtype=bool)
        repeat[order[1:]] = dup
        if repeat.any():
            # Non-first writes compare against the preceding write's ids.
            prev[order[1:][dup]] = ids[order[:-1][dup]]
            live = live | repeat

        overlap = multiset_overlap_rows(ids, prev)
        changed = int(np.where(live, self.size - overlap, self.size).sum())
        self.changed_elements += changed
        self.initialised_entries += int(np.count_nonzero(~live))

        # Last write wins: assign only each row's final occurrence.
        is_last = np.zeros(len(rows), dtype=bool)
        is_last[order[:-1]] = ~dup
        is_last[order[-1]] = True
        self._ids[rows[is_last]] = ids[is_last]
        self._live[rows] = True
        if self.store_scores:
            assert self._scores is not None and scores is not None
            self._scores[rows[is_last]] = scores[is_last]
        return changed

    # -- key-addressed access (probing / callbacks) ---------------------------
    def _require_keyed_index(self) -> KeyIndex:
        index = self._require_index()
        if index is None:
            raise RuntimeError(
                "storage-attached cache has no key index; only row-addressed "
                "gather/scatter is available"
            )
        return index

    def get(self, key: tuple[int, int]) -> np.ndarray:
        """Entity ids cached under a ``(id, id)`` key (a copy)."""
        index = self._require_keyed_index()
        return self.gather(np.array([index.row_of(key)], dtype=np.int64))[0]

    def scores(self, key: tuple[int, int]) -> np.ndarray:
        """Stored scores under a ``(id, id)`` key (a copy)."""
        index = self._require_keyed_index()
        return self.gather_scores(np.array([index.row_of(key)], dtype=np.int64))[0]

    def __contains__(self, key: tuple[int, int]) -> bool:
        if self._index is None or self._live is None:
            return False
        if not self._index.contains(key):
            return False
        return bool(self._live[self._index.row_of(key)])

    # -- introspection ---------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Number of initialised cache rows."""
        return int(self._live.sum()) if self._live is not None else 0

    def live_fraction(self) -> float:
        """Initialised fraction of the allocated row-space, in [0, 1].

        The array-scheme analogue of the bucketed backend's load factor:
        how much of the preallocated block has been touched.  0.0 before
        storage is attached.
        """
        if self._live is None or len(self._live) == 0:
            return 0.0
        return self.n_entries / len(self._live)

    def keys(self) -> list[tuple[int, int]]:
        """Keys of all initialised rows."""
        if self._index is None or self._live is None:
            return []
        pairs = self._index.keys()[self._live]
        return [(int(a), int(b)) for a, b in pairs]

    def memory_bytes(self) -> int:
        """Bytes held by *initialised* entries (the paper's O(|S|·N1) figure).

        Comparable across backends; :meth:`allocated_bytes` reports the
        preallocated block.
        """
        per_row = self.size * 8 * (2 if self.store_scores else 1)
        return self.n_entries * per_row

    def allocated_bytes(self) -> int:
        """Actual bytes of the preallocated arrays (0 before attach)."""
        total = self._ids.nbytes if self._ids is not None else 0
        total += self._scores.nbytes if self._scores is not None else 0
        total += self._live.nbytes if self._live is not None else 0
        return total

    def reset_counters(self) -> None:
        """Zero the CE / initialisation counters (per-epoch accounting)."""
        self.changed_elements = 0
        self.initialised_entries = 0

    def __len__(self) -> int:
        return self.n_entries

    def __repr__(self) -> str:
        n_keys = self._index.n_keys if self._index is not None else 0
        return (
            f"ArrayNegativeCache(size={self.size}, n_keys={n_keys}, "
            f"entries={self.n_entries}, store_scores={self.store_scores})"
        )
