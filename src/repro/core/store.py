"""The cache-storage protocol shared by all negative-cache backends.

:class:`~repro.core.nscaching.NSCachingSampler` talks to its head/tail
caches exclusively through this row-addressed surface: rows come from a
:class:`~repro.data.keyindex.KeyIndex` resolved at bind time, so the hot
loop never materialises per-triple Python keys.  Three backends implement
it:

* :class:`~repro.core.array_cache.ArrayNegativeCache` — preallocated
  contiguous arrays, fully vectorised (the default);
* :class:`~repro.core.cache.NegativeCache` — the original dict of per-key
  arrays (reference/parity backend);
* :class:`~repro.core.hashed.HashedNegativeCache` — the memory-bounded
  extension (dict machinery over hashed buckets).

Key-addressed probing (``cache.get((a, b))``, ``key in cache``) stays
available on every backend for callbacks and the Table VI study.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.data.keyindex import KeyIndex

__all__ = ["CacheStore", "CACHE_BACKENDS", "make_cache_backend"]


@runtime_checkable
class CacheStore(Protocol):
    """Row-addressed negative-cache storage."""

    size: int
    store_scores: bool
    changed_elements: int
    initialised_entries: int

    def attach_index(self, index: KeyIndex) -> None:
        """Bind the key→row map (and allocate storage where applicable)."""

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Cached ids for ``rows``; shape ``[len(rows), N1]``; lazy-inits."""

    def gather_scores(self, rows: np.ndarray) -> np.ndarray:
        """Stored scores for ``rows`` (requires ``store_scores=True``)."""

    def scatter(
        self, rows: np.ndarray, ids: np.ndarray, scores: np.ndarray | None = None
    ) -> int:
        """Replace entries at ``rows``; returns #elements changed (CE)."""

    def get(self, key: tuple[int, int]) -> np.ndarray:
        """Key-addressed probe of one entry."""

    def memory_bytes(self) -> int:
        """Footprint of materialised entries."""

    def reset_counters(self) -> None:
        """Zero the CE / initialisation counters."""


def _backend_registry() -> dict[str, type]:
    # Local import: repro.core.cache and array_cache import nothing from
    # here, but keeping the registry lazy avoids import-order knots.
    from repro.core.array_cache import ArrayNegativeCache
    from repro.core.cache import NegativeCache

    return {"array": ArrayNegativeCache, "dict": NegativeCache}


#: Names accepted by ``NSCachingSampler(cache_backend=...)`` and the CLI.
CACHE_BACKENDS: tuple[str, ...] = tuple(sorted(_backend_registry()))


def make_cache_backend(
    name: str,
    size: int,
    n_entities: int,
    rng: np.random.Generator | int | None = None,
    *,
    store_scores: bool = False,
) -> CacheStore:
    """Instantiate a registered cache backend by name."""
    registry = _backend_registry()
    if name not in registry:
        raise KeyError(f"unknown cache backend {name!r}; options: {CACHE_BACKENDS}")
    return registry[name](size, n_entities, rng, store_scores=store_scores)
