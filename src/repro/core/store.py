"""The cache-storage protocol and backend registry.

:class:`~repro.core.nscaching.NSCachingSampler` talks to its head/tail
caches exclusively through this row-addressed surface: rows come from a
:class:`~repro.data.keyindex.KeyIndex` resolved at bind time, so the hot
loop never materialises per-triple Python keys.  Four backends implement
it:

* ``array`` — :class:`~repro.core.array_cache.ArrayNegativeCache`:
  preallocated contiguous arrays, fully vectorised (the default);
* ``dict`` — :class:`~repro.core.cache.NegativeCache`: the original dict
  of per-key arrays (reference/parity backend);
* ``hashed`` — :class:`~repro.core.hashed.HashedNegativeCache`: the
  memory-bounded §VI extension over dict buckets (reference/parity);
* ``bucketed-array`` — :class:`~repro.core.bucketed.BucketedArrayCache`:
  the same bucket scheme on the preallocated array engine — bounded
  memory *and* vectorised access;
* ``sharded-array`` — the :mod:`repro.parallel` shared-memory engine
  (``array`` or ``bucketed-array`` semantics, chosen by the ``inner``
  option) whose row-space is partitioned by a
  :class:`~repro.parallel.plan.ShardPlan` so epoch refreshes can run on a
  :class:`~repro.parallel.pool.RefreshPool` of worker processes.

Backends register through :func:`register_backend` together with the
backend-specific constructor options they accept (``n_buckets`` for the
memory-bounded ones, ``n_shards``/``inner``/``n_buckets`` for the sharded
one); :func:`make_cache_backend` validates both option names *and values*
and forwards them, so unknown names or out-of-range counts fail fast with
a clear error instead of a ``TypeError`` deep in a constructor or an
allocation failure at bind.

Key-addressed probing (``cache.get((a, b))``, ``key in cache``) stays
available on every backend for callbacks and the Table VI study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.data.keyindex import KeyIndex

__all__ = [
    "BackendSpec",
    "CACHE_BACKENDS",
    "CacheStore",
    "backend_options",
    "cache_backend_names",
    "make_cache_backend",
    "register_backend",
    "require_positive_int_options",
    "validate_backend_options",
]


@runtime_checkable
class CacheStore(Protocol):
    """Row-addressed negative-cache storage."""

    size: int
    store_scores: bool
    changed_elements: int
    initialised_entries: int

    def attach_index(self, index: KeyIndex) -> None:
        """Bind the key→row map (and allocate storage where applicable)."""

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Cached ids for ``rows``; shape ``[len(rows), N1]``; lazy-inits."""

    def gather_scores(self, rows: np.ndarray) -> np.ndarray:
        """Stored scores for ``rows`` (requires ``store_scores=True``)."""

    def storage_rows(self, rows: np.ndarray) -> np.ndarray:
        """The rows actually stored for dense key ``rows`` (identity for
        per-key backends, bucket rows for the memory-bounded ones).  This
        is the row-space shard plans partition and over which repeat-write
        CE semantics are defined."""

    def scatter(
        self,
        rows: np.ndarray,
        ids: np.ndarray,
        scores: np.ndarray | None = None,
        *,
        changed: int | None = None,
    ) -> int:
        """Replace entries at ``rows``; returns #elements changed (CE).

        ``changed`` is an optional caller-derived CE count (valid only for
        unique, already-gathered storage rows); backends may use it to
        skip their own counting or ignore it and recount.  Backends that
        honour it advertise ``consumes_changed_hint = True`` so callers
        can skip deriving a hint nobody will read."""

    def get(self, key: tuple[int, int]) -> np.ndarray:
        """Key-addressed probe of one entry."""

    def memory_bytes(self) -> int:
        """Footprint of materialised entries."""

    def reset_counters(self) -> None:
        """Zero the CE / initialisation counters."""


@dataclass(frozen=True)
class BackendSpec:
    """One registered cache backend: factory plus its extra options."""

    factory: Callable[..., CacheStore]
    #: Backend-specific constructor keyword names ``make_cache_backend``
    #: forwards beyond the common (size, n_entities, rng, store_scores).
    options: frozenset[str] = frozenset()
    description: str = ""
    #: Optional option-*value* validator, called with the full option
    #: mapping after the name check; raises ``ValueError`` on bad values
    #: so they fail at construction, not deep inside allocation at bind.
    check_options: Callable[[Mapping[str, object]], None] | None = None


_REGISTRY: dict[str, BackendSpec] = {}
_builtins_registered = False


def require_positive_int_options(options: Mapping[str, object], *names: str) -> None:
    """Raise ``ValueError`` unless every present ``names`` option is an int >= 1.

    The shared value check for count-like backend options (``n_buckets``,
    ``n_shards``): a zero/negative/non-integer count is rejected here —
    at sampler construction and in :func:`make_cache_backend` — with the
    same clean error path as an unknown option name, instead of surfacing
    as an allocation failure at bind time.
    """
    for name in names:
        if name not in options:
            continue
        value = options[name]
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise ValueError(
                f"backend option {name!r} must be an integer >= 1, "
                f"got {value!r}"
            )
        if int(value) < 1:
            raise ValueError(
                f"backend option {name!r} must be >= 1, got {int(value)}"
            )


def register_backend(
    name: str,
    factory: Callable[..., CacheStore],
    *,
    options: Iterable[str] = (),
    description: str = "",
    check_options: Callable[[Mapping[str, object]], None] | None = None,
    overwrite: bool = False,
) -> None:
    """Register a :class:`CacheStore` factory under ``name``.

    ``factory`` must accept ``(size, n_entities, rng, *, store_scores,
    **options)``; ``options`` declares the backend-specific keywords it
    supports (anything else passed to :func:`make_cache_backend` is
    rejected up front), and ``check_options`` optionally validates their
    *values* at the same early point.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"cache backend {name!r} is already registered")
    _REGISTRY[name] = BackendSpec(
        factory, frozenset(options), description, check_options
    )


def _ensure_builtins() -> None:
    # A dedicated flag, not `if _REGISTRY`: a third-party register_backend
    # call landing first must not suppress the built-ins.  (The
    # CACHE_BACKENDS snapshot below triggers this at import time anyway;
    # the local imports just keep the module dependency-light.)
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    from repro.core.array_cache import ArrayNegativeCache
    from repro.core.bucketed import BucketedArrayCache
    from repro.core.cache import NegativeCache
    from repro.core.hashed import HashedNegativeCache
    from repro.parallel.sharded import check_sharded_options, make_sharded_cache

    def _check_n_buckets(options: Mapping[str, object]) -> None:
        require_positive_int_options(options, "n_buckets")

    register_backend(
        "array", ArrayNegativeCache,
        description="preallocated arrays, fully vectorised (default)",
    )
    register_backend(
        "dict", NegativeCache,
        description="original per-key dict store (reference/parity)",
    )
    register_backend(
        "hashed", HashedNegativeCache, options=("n_buckets",),
        check_options=_check_n_buckets,
        description="memory-bounded dict buckets (§VI extension, reference)",
    )
    register_backend(
        "bucketed-array", BucketedArrayCache, options=("n_buckets",),
        check_options=_check_n_buckets,
        description="memory-bounded bucket scheme on the array engine",
    )
    register_backend(
        "sharded-array", make_sharded_cache,
        options=("n_shards", "inner", "n_buckets"),
        check_options=check_sharded_options,
        description="shared-memory array engine sharded for parallel refresh",
    )


def cache_backend_names() -> tuple[str, ...]:
    """Currently registered backend names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def _backend_spec(name: str) -> BackendSpec:
    _ensure_builtins()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown cache backend {name!r}; options: {cache_backend_names()}"
        )
    return _REGISTRY[name]


def backend_options(name: str) -> frozenset[str]:
    """The backend-specific option names ``make_cache_backend`` accepts."""
    return _backend_spec(name).options


def validate_backend_options(name: str, options: Mapping[str, object]) -> None:
    """Raise ``ValueError`` for option names or values ``name`` rejects.

    Called by :class:`~repro.core.nscaching.NSCachingSampler` at
    construction so a bad ``--n-buckets``/``--n-shards``-style option
    fails before any data is loaded or bound: first unknown names, then
    the backend's own value check (e.g. count options must be ``>= 1``).
    """
    spec = _backend_spec(name)
    unknown = sorted(set(options) - spec.options)
    if unknown:
        supported = sorted(spec.options)
        raise ValueError(
            f"cache backend {name!r} does not accept option(s) {unknown}; "
            f"supported: {supported if supported else 'none'}"
        )
    if spec.check_options is not None:
        spec.check_options(options)


def make_cache_backend(
    name: str,
    size: int,
    n_entities: int,
    rng: np.random.Generator | int | None = None,
    *,
    store_scores: bool = False,
    **options: object,
) -> CacheStore:
    """Instantiate a registered cache backend by name.

    ``options`` are backend-specific constructor kwargs — ``n_buckets``
    for the memory-bounded ``hashed`` / ``bucketed-array`` backends.
    """
    spec = _backend_spec(name)
    validate_backend_options(name, options)
    return spec.factory(size, n_entities, rng, store_scores=store_scores, **options)


#: Import-time snapshot of the built-in backend names (kept for API
#: compatibility); prefer :func:`cache_backend_names`, which also sees
#: backends registered later.
CACHE_BACKENDS: tuple[str, ...] = cache_backend_names()
