"""NSCaching — the paper's contribution (Algorithms 2 and 3).

For every positive triple ``(h, r, t)`` the sampler keeps a head cache
``H[(r, t)]`` and a tail cache ``T[(h, r)]`` of ``N1`` entity ids each:

* **sample** (Alg. 2 steps 5-7): index both caches, draw one candidate
  head and one candidate tail (uniformly by default — §III-B1), then keep
  either the head- or the tail-corruption via the Bernoulli coin;
* **update** (Alg. 2 step 8 / Alg. 3): union each cache entry with ``N2``
  fresh uniform entities, score all ``N1 + N2`` corruptions with the
  *current* model, and resample ``N1`` survivors without replacement with
  probability ``softmax(score)`` (importance sampling — §III-B2).

Exploration/exploitation: larger ``N1`` = more exploitation (more stored
hard negatives), larger ``N2`` = more exploration (faster refresh).  The
cache update may be applied lazily every ``lazy_epochs + 1`` epochs,
dividing its cost by ``n + 1`` (Table I).

Batching note: the paper updates caches triple-by-triple; this
implementation vectorises over the batch.  When two rows of one batch share
a cache key, both read the same pre-batch entry and the later write wins —
an O(1/|S|) -probability event that only delays one refresh.

No trainable parameters are added, and the KG embedding model trains with
plain gradient descent from scratch — the two properties Table I
contrasts with IGAN/KBGAN.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.cache import NegativeCache
from repro.core.strategies import (
    SampleStrategy,
    UpdateStrategy,
    sample_from_cache,
    select_cache_survivors,
)
from repro.data.dataset import KGDataset
from repro.data.triples import HEAD, REL, TAIL
from repro.models.base import KGEModel
from repro.sampling.base import NegativeSampler

__all__ = ["NSCachingSampler"]

CacheFactory = Callable[..., NegativeCache]


class NSCachingSampler(NegativeSampler):
    """Cache-based negative sampling (Algorithm 2)."""

    name = "NSCaching"

    def __init__(
        self,
        *,
        cache_size: int = 50,
        candidate_size: int = 50,
        sample_strategy: SampleStrategy | str = SampleStrategy.UNIFORM,
        update_strategy: UpdateStrategy | str = UpdateStrategy.IMPORTANCE,
        lazy_epochs: int = 0,
        bernoulli: bool = True,
        cache_factory: CacheFactory | None = None,
    ) -> None:
        """
        Parameters
        ----------
        cache_size:
            ``N1``, entities kept per cache entry (paper default 50).
        candidate_size:
            ``N2``, fresh uniform candidates per refresh (paper default 50).
        sample_strategy:
            Step 6 strategy; the paper selects ``uniform`` (Fig. 6a).
        update_strategy:
            Alg. 3 strategy; the paper selects ``importance`` (Fig. 6b).
        lazy_epochs:
            ``n`` — skip cache refreshes except every ``n+1``-th epoch.
        bernoulli:
            Use the relation-aware head/tail coin (paper §IV-B1).
        cache_factory:
            Alternative cache constructor (e.g.
            :class:`~repro.core.hashed.HashedNegativeCache` for the
            memory-bounded extension).
        """
        super().__init__(bernoulli=bernoulli)
        if cache_size <= 0 or candidate_size <= 0:
            raise ValueError(
                f"cache_size and candidate_size must be > 0, got "
                f"({cache_size}, {candidate_size})"
            )
        if lazy_epochs < 0:
            raise ValueError(f"lazy_epochs must be >= 0, got {lazy_epochs}")
        self.cache_size = int(cache_size)
        self.candidate_size = int(candidate_size)
        self.sample_strategy = SampleStrategy(sample_strategy)
        self.update_strategy = UpdateStrategy(update_strategy)
        self.lazy_epochs = int(lazy_epochs)
        self._cache_factory = cache_factory or NegativeCache
        self.head_cache: NegativeCache | None = None
        self.tail_cache: NegativeCache | None = None

    # -- lifecycle ------------------------------------------------------------
    def bind(
        self,
        model: KGEModel,
        dataset: KGDataset,
        rng: np.random.Generator | int | None = None,
    ) -> "NSCachingSampler":
        """Create the head/tail caches sized for ``dataset`` (lazy entries).

        Scores are co-stored only when the sampling strategy needs them
        (the paper's extra-memory note for IS/top sampling).
        """
        super().bind(model, dataset, rng)
        store_scores = self.sample_strategy is not SampleStrategy.UNIFORM
        self.head_cache = self._cache_factory(
            self.cache_size,
            dataset.n_entities,
            self.rng,
            store_scores=store_scores,
        )
        self.tail_cache = self._cache_factory(
            self.cache_size,
            dataset.n_entities,
            self.rng,
            store_scores=store_scores,
        )
        return self

    def _head_keys(self, batch: np.ndarray) -> list[tuple[int, int]]:
        """Head cache keys: ``(r, t)`` per Alg. 2 step 5."""
        return [(int(r), int(t)) for r, t in zip(batch[:, REL], batch[:, TAIL])]

    def _tail_keys(self, batch: np.ndarray) -> list[tuple[int, int]]:
        """Tail cache keys: ``(h, r)``."""
        return [(int(h), int(r)) for h, r in zip(batch[:, HEAD], batch[:, REL])]

    # -- Alg. 2 steps 5-7 ---------------------------------------------------------
    def sample(self, batch: np.ndarray) -> np.ndarray:
        """Draw one negative per positive from the caches (Alg. 2 steps 5-7)."""
        self._require_bound()
        assert self.head_cache is not None and self.tail_cache is not None
        batch = np.asarray(batch, dtype=np.int64)

        head_keys = self._head_keys(batch)
        tail_keys = self._tail_keys(batch)
        head_ids = self.head_cache.get_many(head_keys)  # [B, N1]
        tail_ids = self.tail_cache.get_many(tail_keys)

        need_scores = self.sample_strategy is not SampleStrategy.UNIFORM
        head_scores = self.head_cache.scores_many(head_keys) if need_scores else None
        tail_scores = self.tail_cache.scores_many(tail_keys) if need_scores else None

        sampled_heads = sample_from_cache(
            head_ids, head_scores, self.sample_strategy, self.rng
        )
        sampled_tails = sample_from_cache(
            tail_ids, tail_scores, self.sample_strategy, self.rng
        )

        negatives = batch.copy()
        head_mask = self.choose_head_corruption(batch[:, REL])
        negatives[head_mask, HEAD] = sampled_heads[head_mask]
        negatives[~head_mask, TAIL] = sampled_tails[~head_mask]
        return negatives

    # -- Alg. 3 --------------------------------------------------------------------
    def update(self, batch: np.ndarray, negatives: np.ndarray) -> None:
        """Refresh both caches for the batch's keys (Alg. 3), unless lazy."""
        if self.epoch % (self.lazy_epochs + 1) != 0:
            return  # lazy update: skip this epoch entirely
        self._require_bound()
        batch = np.asarray(batch, dtype=np.int64)
        self._refresh_side(batch, head_side=True)
        self._refresh_side(batch, head_side=False)

    def _refresh_side(self, batch: np.ndarray, *, head_side: bool) -> None:
        """Run Algorithm 3 for one cache, vectorised over the batch."""
        assert self.head_cache is not None and self.tail_cache is not None
        cache = self.head_cache if head_side else self.tail_cache
        keys = self._head_keys(batch) if head_side else self._tail_keys(batch)

        current = cache.get_many(keys)  # [B, N1]
        fresh = self.rng.integers(
            0, self.dataset.n_entities, size=(len(batch), self.candidate_size),
            dtype=np.int64,
        )
        union = np.concatenate([current, fresh], axis=1)  # [B, N1+N2]

        if head_side:
            scores = self.model.score_heads(union, batch[:, REL], batch[:, TAIL])
        else:
            scores = self.model.score_tails(batch[:, HEAD], batch[:, REL], union)

        new_ids, new_scores = select_cache_survivors(
            union, scores, self.cache_size, self.update_strategy, self.rng
        )
        store_scores = cache.store_scores
        for i, key in enumerate(keys):
            cache.put(key, new_ids[i], new_scores[i] if store_scores else None)

    # -- introspection ---------------------------------------------------------------
    def cache_memory_bytes(self) -> int:
        """Combined footprint of both caches."""
        assert self.head_cache is not None and self.tail_cache is not None
        return self.head_cache.memory_bytes() + self.tail_cache.memory_bytes()

    def changed_elements(self, reset: bool = False) -> int:
        """CE metric: cache elements replaced since the last reset (Fig. 8)."""
        assert self.head_cache is not None and self.tail_cache is not None
        total = self.head_cache.changed_elements + self.tail_cache.changed_elements
        if reset:
            self.head_cache.reset_counters()
            self.tail_cache.reset_counters()
        return total

    def __repr__(self) -> str:
        return (
            f"NSCachingSampler(N1={self.cache_size}, N2={self.candidate_size}, "
            f"sample={self.sample_strategy.value}, update={self.update_strategy.value}, "
            f"lazy={self.lazy_epochs})"
        )
