"""NSCaching — the paper's contribution (Algorithms 2 and 3).

For every positive triple ``(h, r, t)`` the sampler keeps a head cache
``H[(r, t)]`` and a tail cache ``T[(h, r)]`` of ``N1`` entity ids each:

* **sample** (Alg. 2 steps 5-7): index both caches, draw one candidate
  head and one candidate tail (uniformly by default — §III-B1), then keep
  either the head- or the tail-corruption via the Bernoulli coin;
* **update** (Alg. 2 step 8 / Alg. 3): union each cache entry with ``N2``
  fresh uniform entities, score all ``N1 + N2`` corruptions with the
  *current* model, and resample ``N1`` survivors without replacement with
  probability ``softmax(score)`` (importance sampling — §III-B2).

Exploration/exploitation: larger ``N1`` = more exploitation (more stored
hard negatives), larger ``N2`` = more exploration (faster refresh).  The
cache update may be applied lazily every ``lazy_epochs + 1`` epochs,
dividing its cost by ``n + 1`` (Table I).

Hot-loop layout: at :meth:`bind` time the distinct cache keys of the
training split are enumerated once into a
:class:`~repro.data.keyindex.TripleKeyIndex`, and both caches are
addressed by dense row indices through the
:class:`~repro.core.store.CacheStore` protocol.  A batch access is then
one vectorised ``gather`` and a refresh one ``scatter`` — no per-triple
Python tuples or loops.  The trainer can precompute the row indices of the
whole split once (:meth:`precompute_rows`) and pass per-batch slices in.

The refresh itself (Alg. 3) runs **fused** by default: the candidate
union is assembled in a persistent per-sampler buffer, scored in one shot
through the model's :meth:`~repro.models.base.KGEModel.score_candidates`
kernel, and the top-``N1`` survivors go straight from ``argpartition``
into the cache ``scatter`` — no intermediate concatenate/score-gather
copies.  ``fused=False`` keeps the step-by-step reference orchestration;
both paths consume the generator identically and call the same scoring
kernel, so they are bit-identical under a fixed seed (enforced by the
parity suite in ``tests/integration/test_backend_parity.py``).

With ``refresh_workers >= 2`` (and the ``sharded-array`` backend) the
refresh instead runs on a :class:`~repro.parallel.pool.RefreshPool`:
each batch is split by the cache's shard plan and every touched shard's
slice is refreshed by a worker process against shared-memory storage,
drawing from its own ``(seed, mode, shard, epoch, batch)`` stream —
deterministic and worker-count-independent, though a different (equally
valid) trajectory than the sequential single-stream path.

Batching note: the paper updates caches triple-by-triple; this
implementation vectorises over the batch.  When two rows of one batch share
a cache key, both read the same pre-batch entry and the later write wins —
an O(1/|S|) -probability event that only delays one refresh.

No trainable parameters are added, and the KG embedding model trains with
plain gradient descent from scratch — the two properties Table I
contrasts with IGAN/KBGAN.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, Mapping, NamedTuple

if TYPE_CHECKING:  # runtime imports stay lazy to keep repro.parallel optional
    from repro.parallel.pool import ShardResult, ShardTask, SyncReport

import numpy as np

from repro.core.store import (
    CacheStore,
    cache_backend_names,
    make_cache_backend,
    validate_backend_options,
)
from repro.core.strategies import (
    SampleStrategy,
    UpdateStrategy,
    sample_from_cache,
    select_cache_survivors,
    selection_changed_elements,
)
from repro.data.dataset import KGDataset
from repro.data.keyindex import TripleKeyIndex
from repro.data.triples import HEAD, REL, TAIL
from repro.models.base import CANDIDATE_MODES, KGEModel
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sampling.base import NegativeSampler
from repro.utils.timer import Timer

__all__ = ["BatchRows", "NSCachingSampler"]

CacheFactory = Callable[..., CacheStore]

_NULL_CONTEXT = nullcontext()


class _RefreshMetrics:
    """Pre-resolved instrument handles for the sampler's hot paths.

    Built once when a :class:`~repro.obs.registry.MetricsRegistry` is
    attached, so a refresh pays a handful of attribute adds — never a
    registry lookup.  All counters carry a ``mode`` label (head/tail
    cache); the per-shard series add a ``shard`` label and are created
    lazily per touched shard.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

        def per_mode(name: str, help: str) -> dict[str, object]:
            return {
                mode: registry.counter(name, help, labels={"mode": mode})
                for mode in CANDIDATE_MODES
            }

        self.batches = per_mode(
            "cache_refresh_batches_total", "cache refresh calls (Alg. 3 batches)"
        )
        self.rows = per_mode(
            "cache_refresh_rows_total", "cache entries refreshed"
        )
        self.candidates = per_mode(
            "cache_refresh_candidates_total",
            "candidate entities scored during refreshes (rows * (N1+N2))",
        )
        self.changed = per_mode(
            "cache_changed_elements_total",
            "cache elements replaced by refreshes (the CE / churn metric)",
        )
        self.task_seconds = registry.histogram(
            "refresh_task_seconds", "per-shard refresh task execution time"
        )
        self.last_queue_wait = registry.gauge(
            "refresh_last_queue_wait_seconds",
            "max dispatch-to-start latency of the most recent pooled refresh",
        )
        self.sync_bytes = registry.counter(
            "param_sync_bytes_total",
            "parameter bytes published into the refresh pool's shared blocks",
        )
        self.sync_rows = registry.counter(
            "param_sync_rows_total",
            "parameter rows published into the refresh pool's shared blocks",
        )
        self.sync_full_tables = registry.counter(
            "param_sync_full_tables_total",
            "parameter tables that took the full-copy sync path",
        )
        self.sync_dirty_fraction = registry.gauge(
            "param_sync_dirty_fraction",
            "fraction of full parameter bytes the most recent sync shipped",
        )
        self.overlap_wait_seconds = registry.counter(
            "refresh_overlap_wait_seconds_total",
            "time spent waiting on overlapped refreshes at collect",
        )
        self._shards: dict[tuple[str, int], tuple[object, object, object]] = {}

    def shard(self, mode: str, shard: int) -> tuple[object, object, object]:
        """(seconds, tasks, queue-wait) counters for one (mode, shard)."""
        key = (mode, shard)
        handles = self._shards.get(key)
        if handles is None:
            labels = {"mode": mode, "shard": shard}
            handles = (
                self.registry.counter(
                    "refresh_task_seconds_total",
                    "cumulative refresh task seconds per shard",
                    labels=labels,
                ),
                self.registry.counter(
                    "refresh_tasks_total",
                    "refresh tasks executed per shard",
                    labels=labels,
                ),
                self.registry.counter(
                    "refresh_queue_wait_seconds_total",
                    "cumulative dispatch-to-start wait per shard",
                    labels=labels,
                ),
            )
            self._shards[key] = handles
        return handles


class BatchRows(NamedTuple):
    """Per-triple cache-row indices: head cache (r,t) and tail cache (h,r)."""

    head: np.ndarray
    tail: np.ndarray

    def take(self, indices: np.ndarray) -> "BatchRows":
        """Rows for a subset of the indexed triples."""
        return BatchRows(self.head[indices], self.tail[indices])


class NSCachingSampler(NegativeSampler):
    """Cache-based negative sampling (Algorithm 2)."""

    name = "NSCaching"

    def __init__(
        self,
        *,
        cache_size: int = 50,
        candidate_size: int = 50,
        sample_strategy: SampleStrategy | str = SampleStrategy.UNIFORM,
        update_strategy: UpdateStrategy | str = UpdateStrategy.IMPORTANCE,
        lazy_epochs: int = 0,
        bernoulli: bool = True,
        cache_backend: str = "array",
        cache_options: Mapping[str, object] | None = None,
        cache_factory: CacheFactory | None = None,
        fused: bool = True,
        refresh_workers: int = 1,
        refresh_processes: bool = True,
        refresh_period: int = 1,
        refresh_overlap: bool = False,
        dirty_sync: bool = True,
    ) -> None:
        """
        Parameters
        ----------
        cache_size:
            ``N1``, entities kept per cache entry (paper default 50).
        candidate_size:
            ``N2``, fresh uniform candidates per refresh (paper default 50).
        sample_strategy:
            Step 6 strategy; the paper selects ``uniform`` (Fig. 6a).
        update_strategy:
            Alg. 3 strategy; the paper selects ``importance`` (Fig. 6b).
        lazy_epochs:
            ``n`` — skip cache refreshes except every ``n+1``-th epoch.
        bernoulli:
            Use the relation-aware head/tail coin (paper §IV-B1).
        cache_backend:
            A registered backend name: ``"array"`` (vectorised, default),
            ``"dict"`` (the original per-key store), or the
            memory-bounded §VI pair ``"bucketed-array"`` (vectorised) /
            ``"hashed"`` (dict reference).  Same-scheme backends yield
            bit-identical training under a fixed seed; array variants are
            the fast paths.
        cache_options:
            Backend-specific constructor options forwarded to
            :func:`~repro.core.store.make_cache_backend` — e.g.
            ``{"n_buckets": 4096}`` for the memory-bounded backends.
            Validated here so an unsupported option fails before binding.
        cache_factory:
            Alternative cache constructor for unregistered backends.
            Overrides ``cache_backend`` (and rejects ``cache_options``).
        fused:
            Run the Alg. 3 refresh through the fused score-and-select
            path (default).  ``False`` keeps the unfused reference
            orchestration — same kernels, same RNG stream, bit-identical
            results; it exists for parity testing and benchmarking.
            Sequential path only: rejected with ``refresh_workers > 1``
            (pool workers always run the fused kernel).
        refresh_workers:
            ``>= 2`` runs cache refreshes on a
            :class:`~repro.parallel.pool.RefreshPool` of that many worker
            processes (requires ``cache_backend="sharded-array"``).  Each
            shard's slice draws from its own ``(seed, mode, shard, epoch,
            batch)`` stream, so results are deterministic and independent
            of the worker count — but a *different* (equally valid)
            trajectory than the sequential single-stream path.  The
            default ``1`` keeps the sequential refresh, bit-identical to
            the ``array`` backend under a fixed seed.
        refresh_processes:
            ``False`` makes the parallel refresh run its shard tasks
            inline in this process (the deterministic fallback) instead
            of forking workers — bit-identical to process execution; used
            by the parity tests and on platforms without ``fork``.
        refresh_period:
            ``k`` — refresh the caches only every ``k``-th batch of an
            epoch (default 1 = every batch).  The lazy *within-epoch*
            schedule of the journal follow-up (arXiv 2010.14227),
            orthogonal to ``lazy_epochs`` (which skips whole epochs):
            divides the refresh *and* parameter-sync cost by ``k`` while
            caches go at most ``k - 1`` batches stale.  The per-epoch
            batch counter still advances on skipped batches, so the
            parallel task streams stay aligned across periods.
        refresh_overlap:
            Overlap the parallel refresh with the training step: the
            batch's shard tasks are *dispatched* against a pre-step
            parameter snapshot (double-buffered in the pool) and the
            results collected at the start of the next batch — Alg. 3
            only needs pre-step parameters, so the refresh runs for free
            behind the gradients/optimizer phases.  Results stay
            bit-identical to the synchronous parallel path.  Requires
            ``refresh_workers >= 2``.
        dirty_sync:
            Allow delta-based parameter publishes to the pool: the
            trainer reports optimizer-touched rows and each sync ships
            only those slices (bit-identical to the full copy, which
            remains the first-sync / fallback path).  ``False`` pins the
            full copy for A/B benchmarking.
        """
        super().__init__(bernoulli=bernoulli)
        if cache_size <= 0 or candidate_size <= 0:
            raise ValueError(
                f"cache_size and candidate_size must be > 0, got "
                f"({cache_size}, {candidate_size})"
            )
        if lazy_epochs < 0:
            raise ValueError(f"lazy_epochs must be >= 0, got {lazy_epochs}")
        if refresh_workers < 1:
            raise ValueError(f"refresh_workers must be >= 1, got {refresh_workers}")
        if refresh_workers > 1 and (
            cache_factory is not None or cache_backend != "sharded-array"
        ):
            raise ValueError(
                "refresh_workers > 1 requires cache_backend='sharded-array' "
                "(worker processes need shared-memory storage and a shard "
                f"plan); got backend {cache_backend!r}"
            )
        if refresh_workers > 1 and not fused:
            raise ValueError(
                "refresh_workers > 1 always runs the fused refresh kernel in "
                "its workers; fused=False (--no-fused-refresh) only applies "
                "to the sequential path"
            )
        if refresh_period < 1:
            raise ValueError(
                f"refresh_period must be >= 1, got {refresh_period}"
            )
        if refresh_overlap and refresh_workers < 2:
            raise ValueError(
                "refresh_overlap requires refresh_workers >= 2 (the overlap "
                "dispatch/collect pipeline only exists on the pooled path)"
            )
        if cache_factory is None:
            if cache_backend not in cache_backend_names():
                raise ValueError(
                    f"cache_backend must be one of {cache_backend_names()}, "
                    f"got {cache_backend!r}"
                )
            validate_backend_options(cache_backend, dict(cache_options or {}))
        elif cache_options:
            raise ValueError(
                "cache_options only applies to registered backends; pass "
                "them to your cache_factory directly"
            )
        self.cache_size = int(cache_size)
        self.candidate_size = int(candidate_size)
        self.sample_strategy = SampleStrategy(sample_strategy)
        self.update_strategy = UpdateStrategy(update_strategy)
        self.lazy_epochs = int(lazy_epochs)
        self.cache_backend = cache_backend if cache_factory is None else "custom"
        self.cache_options: dict[str, object] = dict(cache_options or {})
        self._cache_factory = cache_factory
        self.fused = bool(fused)
        self.refresh_workers = int(refresh_workers)
        self.refresh_processes = bool(refresh_processes)
        self.refresh_period = int(refresh_period)
        self.refresh_overlap = bool(refresh_overlap)
        self.dirty_sync = bool(dirty_sync)
        self.key_index: TripleKeyIndex | None = None
        self.head_cache: CacheStore | None = None
        self.tail_cache: CacheStore | None = None
        #: Optional stopwatch the trainer attaches under ``--profile`` to
        #: time candidate scoring separately from the rest of the refresh.
        self.score_timer: Timer | None = None
        #: Optional stopwatch for the parallel-refresh dispatch+wait (the
        #: trainer's ``parallel_refresh`` profile phase).
        self.parallel_timer: Timer | None = None
        #: Optional span tracer the trainer attaches (``--trace-out``).
        #: Refreshes then record ``refresh_side``/``dispatch``/``collect``
        #: spans, and the pooled refresh merges the workers' shipped spans
        #: into this ring.  ``None`` (the default) keeps the exact seed
        #: code path.  Attach before the first parallel update(): workers
        #: inherit their rings at fork.
        self.tracer: Tracer | None = None
        self._metrics: MetricsRegistry | None = None
        self._mh: _RefreshMetrics | None = None  # pre-resolved handles
        self._union: np.ndarray | None = None  # fused-path candidate buffer
        self._pool = None  # RefreshPool, created lazily on first parallel update
        self._pool_seed: int | None = None
        self._epoch_batch = 0  # per-epoch update counter for task streams
        #: Modes of the in-flight overlapped dispatch (None = nothing pending).
        self._pending_modes: tuple[str, ...] | None = None

    # -- lifecycle ------------------------------------------------------------
    def _make_cache(self, n_entities: int, store_scores: bool) -> CacheStore:
        if self._cache_factory is not None:
            return self._cache_factory(
                self.cache_size, n_entities, self.rng, store_scores=store_scores
            )
        return make_cache_backend(
            self.cache_backend,
            self.cache_size,
            n_entities,
            self.rng,
            store_scores=store_scores,
            **self.cache_options,
        )

    def bind(
        self,
        model: KGEModel,
        dataset: KGDataset,
        rng: np.random.Generator | int | None = None,
    ) -> "NSCachingSampler":
        """Index the train split's cache keys and create both caches.

        Scores are co-stored only when the sampling strategy needs them
        (the paper's extra-memory note for IS/top sampling).
        """
        super().bind(model, dataset, rng)
        self.close()  # rebinding replaces caches; release pool/shared memory
        self.key_index = TripleKeyIndex.from_triples(
            dataset.train, dataset.n_entities, dataset.n_relations
        )
        store_scores = self.sample_strategy is not SampleStrategy.UNIFORM
        self.head_cache = self._make_cache(dataset.n_entities, store_scores)
        self.tail_cache = self._make_cache(dataset.n_entities, store_scores)
        self.head_cache.attach_index(self.key_index.head)
        self.tail_cache.attach_index(self.key_index.tail)
        if self.refresh_workers > 1:
            # One draw reserved for the pool's task streams.  Taken only in
            # parallel mode, so the 1-worker stream stays bit-identical to
            # the plain array backend's.
            self._pool_seed = int(self.rng.integers(0, 2**63 - 1))
        return self

    def close(self) -> None:
        """Stop the refresh pool and release shared-memory cache storage.

        Idempotent; the sampler can be re-bound afterwards.  The trainer
        and CLI call this when training finishes.  An overlapped refresh
        still in flight is collected (so its counter deltas are not
        lost) before the pool shuts down; a failed/dead pool is closed
        regardless.
        """
        try:
            self.collect_refreshes()
        except RuntimeError:
            pass  # dead workers: shutdown proceeds regardless
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for cache in (self.head_cache, self.tail_cache):
            release = getattr(cache, "close", None)
            if callable(release):
                release()

    def on_epoch_start(self, epoch: int) -> None:
        """Epoch notification; also restarts the per-epoch batch counter."""
        super().on_epoch_start(epoch)
        self._epoch_batch = 0

    # -- observability --------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry | None:
        """The attached metrics registry (``None`` = uninstrumented).

        Attaching a registry resolves all instrument handles once; every
        refresh then reports batches/rows/candidates/changed-elements per
        cache side, and the pooled refresh adds per-shard task timings.
        With no registry attached the hot paths take the exact seed code
        path — training stays bit-identical (bench X8 pins the
        instrumented overhead < 3%).
        """
        return self._metrics

    @metrics.setter
    def metrics(self, registry: MetricsRegistry | None) -> None:
        self._metrics = registry
        self._mh = None if registry is None else _RefreshMetrics(registry)

    # -- row resolution -----------------------------------------------------------
    def precompute_rows(self, triples: np.ndarray) -> BatchRows:
        """Cache rows for every triple; compute once, slice per batch.

        The trainer calls this for the whole training split up front and
        passes per-batch slices to :meth:`sample`/:meth:`update`, removing
        key resolution from the epoch loop entirely.
        """
        self._require_bound()
        assert self.key_index is not None
        triples = np.asarray(triples, dtype=np.int64)
        return BatchRows(
            head=self.key_index.head_rows(triples),
            tail=self.key_index.tail_rows(triples),
        )

    def _resolve_rows(self, batch: np.ndarray, rows: BatchRows | None) -> BatchRows:
        if rows is not None:
            return rows
        return self.precompute_rows(batch)

    # -- Alg. 2 steps 5-7 ---------------------------------------------------------
    def sample(self, batch: np.ndarray, rows: BatchRows | None = None) -> np.ndarray:
        """Draw one negative per positive from the caches (Alg. 2 steps 5-7).

        ``batch`` must come from the training split the sampler was bound
        to: cache storage is preallocated per distinct train-split key, so
        a triple whose ``(r, t)`` / ``(h, r)`` pair never occurs in train
        raises ``KeyError`` (the dict backend shares this contract).
        """
        self._require_bound()
        assert self.head_cache is not None and self.tail_cache is not None
        self.collect_refreshes()  # caches must be settled before gathering
        batch = np.asarray(batch, dtype=np.int64)
        rows = self._resolve_rows(batch, rows)

        head_ids = self.head_cache.gather(rows.head)  # [B, N1]
        tail_ids = self.tail_cache.gather(rows.tail)

        need_scores = self.sample_strategy is not SampleStrategy.UNIFORM
        head_scores = self.head_cache.gather_scores(rows.head) if need_scores else None
        tail_scores = self.tail_cache.gather_scores(rows.tail) if need_scores else None

        sampled_heads = sample_from_cache(
            head_ids, head_scores, self.sample_strategy, self.rng
        )
        sampled_tails = sample_from_cache(
            tail_ids, tail_scores, self.sample_strategy, self.rng
        )

        negatives = batch.copy()
        head_mask = self.choose_head_corruption(batch[:, REL])
        negatives[head_mask, HEAD] = sampled_heads[head_mask]
        negatives[~head_mask, TAIL] = sampled_tails[~head_mask]
        return negatives

    # -- Alg. 3 --------------------------------------------------------------------
    def update(
        self,
        batch: np.ndarray,
        negatives: np.ndarray,
        rows: BatchRows | None = None,
        *,
        modes: tuple[str, ...] = CANDIDATE_MODES,
    ) -> None:
        """Refresh the caches for the batch's keys (Alg. 3), unless lazy.

        As with :meth:`sample`, ``batch`` must be train-split triples.
        ``modes`` selects which caches to refresh (``"head"`` = the
        head-corruption cache keyed by ``(r, t)``, ``"tail"`` = the
        tail-corruption cache keyed by ``(h, r)``; default both).  An
        unknown mode raises ``ValueError`` up front — even on lazily
        skipped epochs — instead of silently refreshing the tail cache.

        Two lazy schedules gate the refresh: ``lazy_epochs`` skips whole
        epochs (paper Table I) and ``refresh_period`` skips within an
        epoch (every ``k``-th batch refreshes).  Skipped calls still
        advance the per-epoch batch counter, keeping the parallel task
        streams aligned regardless of the schedule.
        """
        for mode in modes:
            if mode not in CANDIDATE_MODES:
                raise ValueError(
                    f"unknown corruption mode {mode!r}; expected one of "
                    f"{CANDIDATE_MODES}"
                )
        batch_index = self._epoch_batch
        self._epoch_batch += 1
        if self.epoch % (self.lazy_epochs + 1) != 0:
            return  # lazy update: skip this epoch entirely
        if batch_index % self.refresh_period != 0:
            return  # lazy within-epoch schedule: not this batch's turn
        self._require_bound()
        batch = np.asarray(batch, dtype=np.int64)
        rows = self._resolve_rows(batch, rows)
        if self.refresh_workers > 1:
            self._parallel_refresh(batch, rows, modes, batch_index)
            return
        tracer = self.tracer
        for mode in modes:
            side_rows = rows.head if mode == "head" else rows.tail
            if tracer is not None:
                with tracer.start_span(
                    "refresh_side", "refresh",
                    args={"mode": mode, "rows": int(len(batch))},
                ):
                    self._refresh_side(batch, side_rows, mode)
            else:
                self._refresh_side(batch, side_rows, mode)

    def _score_union(
        self, batch: np.ndarray, union: np.ndarray, mode: str
    ) -> np.ndarray:
        """Score the candidate union with the model's fused kernel."""
        anchors = batch[:, TAIL] if mode == "head" else batch[:, HEAD]
        if self.score_timer is not None:
            with self.score_timer:
                return self.model.score_candidates(anchors, batch[:, REL], union, mode)
        return self.model.score_candidates(anchors, batch[:, REL], union, mode)

    def _union_buffer(self, n_rows: int) -> np.ndarray:
        """Persistent ``[B, N1+N2]`` block the fused refresh assembles into."""
        width = self.cache_size + self.candidate_size
        if self._union is None or self._union.shape[0] < n_rows:
            self._union = np.empty((n_rows, width), dtype=np.int64)
        return self._union[:n_rows]

    def _refresh_side(self, batch: np.ndarray, rows: np.ndarray, mode: str) -> None:
        """Run Algorithm 3 for one cache, vectorised over the batch.

        Fused path: cache entries and fresh draws land directly in the
        persistent union buffer, the block is scored once through
        ``score_candidates``, and survivors go from ``argpartition``
        straight into ``scatter`` (scores are only gathered when the
        cache co-stores them).  The unfused path keeps the reference
        concatenate → score → select → scatter orchestration; both draw
        from the generator identically, so results are bit-identical.
        """
        assert self.head_cache is not None and self.tail_cache is not None
        cache = self.head_cache if mode == "head" else self.tail_cache
        n1, n2 = self.cache_size, self.candidate_size

        if self.fused:
            union = self._union_buffer(len(batch))
            union[:, :n1] = cache.gather(rows)
            union[:, n1:] = self.rng.integers(
                0, self.dataset.n_entities, size=(len(batch), n2), dtype=np.int64
            )
            scores = self._score_union(batch, union, mode)
            selection = select_cache_survivors(
                union, scores, n1, self.update_strategy, self.rng,
                return_scores=cache.store_scores, return_selection=True,
            )
            # CE from the selection's column structure — no scatter-side
            # multiset sort.  None (duplicate-filled rows / repeated
            # storage rows) falls back to the sorted reference counting.
            # Only backends that honour the hint pay for the derivation:
            # the dict backends recount regardless (keeping the sorted
            # path agreement-tested), so they take the plain scatter.
            if getattr(cache, "consumes_changed_hint", False):
                changed = selection_changed_elements(
                    selection, cache.storage_rows(rows), n1
                )
                ce = cache.scatter(
                    rows, selection.ids, selection.scores, changed=changed
                )
            else:
                ce = cache.scatter(rows, selection.ids, selection.scores)
            if self._mh is not None:
                self._observe_refresh(mode, len(batch), ce)
            return

        current = cache.gather(rows)  # [B, N1]
        fresh = self.rng.integers(
            0, self.dataset.n_entities, size=(len(batch), n2), dtype=np.int64
        )
        union = np.concatenate([current, fresh], axis=1)  # [B, N1+N2]
        scores = self._score_union(batch, union, mode)
        new_ids, new_scores = select_cache_survivors(
            union, scores, n1, self.update_strategy, self.rng
        )
        ce = cache.scatter(rows, new_ids, new_scores if cache.store_scores else None)
        if self._mh is not None:
            self._observe_refresh(mode, len(batch), ce)

    def _observe_refresh(self, mode: str, n_rows: int, changed: int) -> None:
        """Fold one refreshed side into the attached registry's counters."""
        h = self._mh
        assert h is not None
        h.batches[mode].inc()
        h.rows[mode].inc(n_rows)
        h.candidates[mode].inc(n_rows * (self.cache_size + self.candidate_size))
        h.changed[mode].inc(changed)

    # -- parallel refresh (repro.parallel) -----------------------------------------
    def _ensure_pool(self) -> None:
        """Create (and lazily start) the refresh pool on first parallel use."""
        if self._pool is None:
            from repro.parallel.pool import RefreshPool
            from repro.parallel.sharded import ShardedCacheStore

            assert self.head_cache is not None and self.tail_cache is not None
            caches = {"head": self.head_cache, "tail": self.tail_cache}
            for mode, cache in caches.items():
                if not isinstance(cache, ShardedCacheStore):
                    raise RuntimeError(
                        f"parallel refresh needs sharded caches, got "
                        f"{type(cache).__name__} for the {mode} side"
                    )
            assert self._pool_seed is not None
            self._pool = RefreshPool(
                self.model,
                caches,
                n_entities=self.dataset.n_entities,
                candidate_size=self.candidate_size,
                update_strategy=self.update_strategy,
                seed=self._pool_seed,
                n_workers=self.refresh_workers,
                use_processes=self.refresh_processes,
                double_buffer=self.refresh_overlap,
                dirty_sync=self.dirty_sync,
                trace=self.tracer is not None,
            ).start()
        return self._pool

    def mark_dirty_params(self, name: str, rows: np.ndarray) -> None:
        """Report that ``model.params[name][rows]`` changed (dirty sync).

        The trainer wires this to the optimizer's ``dirty_mark`` hook (and
        reports the post-step normalisation's rows), so the pool's next
        parameter publish ships only the touched slices.  A no-op until
        the pool exists — the first sync is a full copy regardless.
        """
        if self._pool is not None:
            self._pool.mark_dirty(name, rows)

    def collect_refreshes(self) -> None:
        """Fold in an overlapped refresh dispatched by a previous update().

        The collect half of the overlap pipeline: blocks until the
        in-flight batch's workers finish (usually they already have — the
        gradient/optimizer step ran in between) and folds their counter
        deltas into the stores.  A no-op when nothing is pending, so the
        trainer and the sampler's own cache-reading paths can call it
        unconditionally.
        """
        pool = self._pool
        if pool is None or not pool.inflight:
            return
        span = (
            self.tracer.start_span("collect", "refresh")
            if self.tracer is not None
            else None
        )
        started = time.perf_counter()  # repro-lint: ignore[RPL005] -- telemetry only (overlap wait)
        try:
            results = pool.collect()
        finally:
            modes, self._pending_modes = self._pending_modes, None
            if span is not None:
                span.end()
        self._fold_results(results, modes or CANDIDATE_MODES)
        if self._mh is not None:
            self._mh.overlap_wait_seconds.inc(time.perf_counter() - started)  # repro-lint: ignore[RPL005] -- telemetry only

    def _build_tasks(
        self,
        batch: np.ndarray,
        rows: BatchRows,
        modes: tuple[str, ...],
        batch_index: int,
    ) -> list[ShardTask]:
        """One ShardTask per (mode, touched shard) of this batch."""
        from repro.parallel.pool import ShardTask

        tasks: list[ShardTask] = []
        for mode in modes:
            cache = self.head_cache if mode == "head" else self.tail_cache
            assert cache is not None
            side_rows = rows.head if mode == "head" else rows.tail
            storage_rows = cache.storage_rows(side_rows)
            anchors = batch[:, TAIL] if mode == "head" else batch[:, HEAD]
            relations = batch[:, REL]
            for shard, positions in cache.plan.split(storage_rows):
                tasks.append(
                    ShardTask(
                        mode=mode,
                        shard=shard,
                        epoch=self.epoch,
                        batch=batch_index,
                        anchors=anchors[positions],
                        relations=relations[positions],
                        rows=storage_rows[positions],
                        enqueued_at=time.monotonic(),  # repro-lint: ignore[RPL005] -- queue-wait telemetry stamp
                    )
                )
        return tasks

    def _parallel_refresh(
        self,
        batch: np.ndarray,
        rows: BatchRows,
        modes: tuple[str, ...],
        batch_index: int,
    ) -> None:
        """Refresh via the worker pool: one task per (mode, touched shard).

        Workers run the same fused kernel against the shared storage and
        report CE / initialisation deltas, which are folded back into the
        stores' counters so ``changed_elements()`` and Figure 8 stay
        backend-agnostic.  With :attr:`refresh_overlap` only the dispatch
        half runs here — the tasks execute against the pre-step parameter
        snapshot while the trainer computes the step, and
        :meth:`collect_refreshes` folds the results in later.
        """
        pool = self._ensure_pool()
        self.collect_refreshes()  # at most one batch in flight
        timer = self.parallel_timer
        tracer = self.tracer
        span = (
            tracer.start_span(
                "dispatch" if self.refresh_overlap else "refresh",
                "refresh",
                args={"batch": batch_index},
            )
            if tracer is not None
            else None
        )
        with timer if timer is not None else _NULL_CONTEXT:
            tasks = self._build_tasks(batch, rows, modes, batch_index)
            if self.refresh_overlap:
                if pool.dispatch(tasks):
                    self._pending_modes = modes
                results = None
            else:
                results = pool.refresh(tasks)
        if span is not None:
            span.end()
        if tasks and self._mh is not None and pool.last_sync is not None:
            self._observe_sync(pool.last_sync)
        if results is not None:
            self._fold_results(results, modes)

    def _observe_sync(self, report: SyncReport) -> None:
        """Fold one parameter publish's SyncReport into the registry."""
        h = self._mh
        assert h is not None
        h.sync_bytes.inc(report.bytes_copied)
        h.sync_rows.inc(report.rows_copied)
        h.sync_full_tables.inc(report.full_tables)
        h.sync_dirty_fraction.set(report.dirty_fraction)

    def _fold_results(
        self, results: list[ShardResult], modes: tuple[str, ...]
    ) -> None:
        """Fold completed shard results into store counters and metrics."""
        h = self._mh
        tracer = self.tracer
        max_wait = 0.0
        for result in results:
            cache = self.head_cache if result.mode == "head" else self.tail_cache
            assert cache is not None
            cache.changed_elements += result.changed
            cache.initialised_entries += result.initialised
            if tracer is not None and result.spans:
                # The cross-process merge: worker spans rode the result
                # queue; fold them into the parent's timeline.
                tracer.ingest(result.spans)
            if h is not None:
                h.rows[result.mode].inc(result.n_rows)
                h.candidates[result.mode].inc(
                    result.n_rows * (self.cache_size + self.candidate_size)
                )
                h.changed[result.mode].inc(result.changed)
                h.task_seconds.observe(result.seconds)
                seconds, tasks_done, wait = h.shard(result.mode, result.shard)
                seconds.inc(result.seconds)
                tasks_done.inc()
                wait.inc(result.queue_wait)
                max_wait = max(max_wait, result.queue_wait)
        if h is not None:
            for mode in modes:
                h.batches[mode].inc()
            h.last_queue_wait.set(max_wait)

    # -- introspection ---------------------------------------------------------------
    def cache_memory_bytes(self) -> int:
        """Combined footprint of both caches."""
        assert self.head_cache is not None and self.tail_cache is not None
        return self.head_cache.memory_bytes() + self.tail_cache.memory_bytes()

    def cache_stats(self) -> dict[str, object]:
        """Cache introspection: key counts, memory, bucket collisions.

        Always present: the backend name, per-side distinct key counts and
        the materialised ``memory_bytes``.  The array backends add
        ``allocated_bytes`` (preallocated block — ``O(n_buckets * N1)``
        for the bucketed backend, independent of the key count); the
        memory-bounded pair adds the per-side load factor and number of
        colliding keys.
        """
        self._require_bound()
        assert self.key_index is not None
        assert self.head_cache is not None and self.tail_cache is not None
        stats: dict[str, object] = {
            "backend": self.cache_backend,
            "head_keys": self.key_index.head.n_keys,
            "tail_keys": self.key_index.tail.n_keys,
            "memory_bytes": self.cache_memory_bytes(),
        }
        sides = (("head", self.head_cache), ("tail", self.tail_cache))
        allocated = [
            getattr(cache, "allocated_bytes", None) for _, cache in sides
        ]
        if all(callable(fn) for fn in allocated):
            stats["allocated_bytes"] = sum(fn() for fn in allocated)
        for side, cache in sides:
            for attr in ("live_fraction", "load_factor", "n_colliding_keys"):
                fn = getattr(cache, attr, None)
                if callable(fn):
                    stats[f"{side}_{attr}"] = fn()
            # Sharded stores: per-shard occupancy (live rows) and key
            # ownership, compacted to `a/b/c` strings for the CLI table.
            # After close() the plan is gone — skip rather than crash.
            occupancy = getattr(cache, "shard_occupancy", None)
            if callable(occupancy) and getattr(cache, "plan", None) is not None:
                stats[f"{side}_shards"] = cache.plan.n_shards
                stats[f"{side}_shard_live_rows"] = "/".join(
                    str(int(n)) for n in occupancy()
                )
                stats[f"{side}_shard_keys"] = "/".join(
                    str(int(n)) for n in cache.shard_key_ownership()
                )
        if self.refresh_period != 1:
            stats["refresh_period"] = self.refresh_period
        if self.refresh_workers > 1:
            stats["refresh_workers"] = self.refresh_workers
            stats["refresh_overlap"] = self.refresh_overlap
            stats["dirty_sync"] = self.dirty_sync
            if self._pool is not None:
                stats["refresh_mode"] = (
                    "processes" if self._pool.using_processes else "inline"
                )
                if self._pool.last_sync is not None:
                    stats["last_sync_bytes"] = self._pool.last_sync.bytes_copied
                    stats["last_sync_dirty_fraction"] = round(
                        self._pool.last_sync.dirty_fraction, 6
                    )
        return stats

    def changed_elements(self, reset: bool = False) -> int:
        """CE metric: cache elements replaced since the last reset (Fig. 8)."""
        assert self.head_cache is not None and self.tail_cache is not None
        self.collect_refreshes()  # fold any in-flight deltas first
        total = self.head_cache.changed_elements + self.tail_cache.changed_elements
        if reset:
            self.head_cache.reset_counters()
            self.tail_cache.reset_counters()
        return total

    def __repr__(self) -> str:
        workers = (
            f", refresh_workers={self.refresh_workers}"
            f"{', overlap' if self.refresh_overlap else ''}"
            f"{'' if self.dirty_sync else ', full-sync'}"
            if self.refresh_workers > 1
            else ""
        )
        period = (
            f", refresh_period={self.refresh_period}"
            if self.refresh_period != 1
            else ""
        )
        return (
            f"NSCachingSampler(N1={self.cache_size}, N2={self.candidate_size}, "
            f"sample={self.sample_strategy.value}, update={self.update_strategy.value}, "
            f"lazy={self.lazy_epochs}, backend={self.cache_backend}, "
            f"fused={self.fused}{workers}{period})"
        )
