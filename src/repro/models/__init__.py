"""KG embedding scoring functions with hand-derived analytic gradients.

The paper evaluates five scoring functions (Table III): TransE, TransH,
TransD (translational distance, margin loss) and DistMult, ComplEx
(semantic matching, logistic loss).  This package implements all five plus
five extensions (TransR, RESCAL, HolE, SimplE, RotatE).  Every model's ``grad`` is
verified against central finite differences in the test suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.base import KGEModel
from repro.models.complex_ import ComplEx
from repro.models.distmult import DistMult
from repro.models.hole import HolE
from repro.models.initializers import (
    normalize_rows,
    uniform_ball,
    xavier_normal,
    xavier_uniform,
)
from repro.models.losses import Loss, LogisticLoss, MarginRankingLoss
from repro.models.params import GradientBag
from repro.models.regularizers import L2Regularizer
from repro.models.rescal import RESCAL
from repro.models.rotate import RotatE
from repro.models.simple_ import SimplE
from repro.models.transd import TransD
from repro.models.transe import TransE
from repro.models.transh import TransH
from repro.models.transr import TransR

__all__ = [
    "ComplEx",
    "DistMult",
    "GradientBag",
    "HolE",
    "KGEModel",
    "L2Regularizer",
    "LogisticLoss",
    "Loss",
    "MODEL_REGISTRY",
    "MarginRankingLoss",
    "RESCAL",
    "RotatE",
    "SimplE",
    "TransD",
    "TransE",
    "TransH",
    "TransR",
    "make_model",
    "normalize_rows",
    "uniform_ball",
    "xavier_normal",
    "xavier_uniform",
]

#: All available scoring functions, keyed by their conventional names.
MODEL_REGISTRY: dict[str, type[KGEModel]] = {
    "TransE": TransE,
    "TransH": TransH,
    "TransD": TransD,
    "TransR": TransR,
    "DistMult": DistMult,
    "ComplEx": ComplEx,
    "RESCAL": RESCAL,
    "HolE": HolE,
    "SimplE": SimplE,
    "RotatE": RotatE,
}

#: The five models the paper evaluates (Table III / Table IV).
PAPER_MODELS: tuple[str, ...] = ("TransE", "TransH", "TransD", "DistMult", "ComplEx")


def make_model(
    name: str,
    n_entities: int,
    n_relations: int,
    dim: int,
    rng: np.random.Generator | int | None = None,
    **kwargs: object,
) -> KGEModel:
    """Instantiate a scoring function by registry name (case-insensitive)."""
    lookup: dict[str, type[KGEModel]] = {k.lower(): v for k, v in MODEL_REGISTRY.items()}
    key = name.lower()
    if key not in lookup:
        raise KeyError(f"unknown model {name!r}; options: {sorted(MODEL_REGISTRY)}")
    factory: Callable[..., KGEModel] = lookup[key]
    return factory(n_entities, n_relations, dim, rng, **kwargs)
