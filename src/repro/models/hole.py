"""HolE (Nickel et al. 2016) — extension beyond the paper's five models.

Holographic embeddings score with circular correlation:

``f(h, r, t) = r . (h ⋆ t)``, ``(h ⋆ t)_k = sum_i h_i t_{(k+i) mod d}``.

Computed in O(d log d) via FFT.  The analytic gradients follow from the
index algebra (verified by the gradient-check tests):

* ``df/dr = h ⋆ t``  (circular correlation)
* ``df/dh = r ⋆ t``  (circular correlation)
* ``df/dt = r ∗ h``  (circular convolution)
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import xavier_uniform
from repro.models.params import GradientBag

__all__ = ["HolE"]


def _ccorr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Circular correlation along the last axis via FFT."""
    return np.fft.irfft(np.conj(np.fft.rfft(a)) * np.fft.rfft(b), n=a.shape[-1])


def _cconv(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Circular convolution along the last axis via FFT."""
    return np.fft.irfft(np.fft.rfft(a) * np.fft.rfft(b), n=a.shape[-1])


class HolE(KGEModel):
    """Holographic (circular-correlation) semantic matching model."""

    default_loss = "logistic"
    entity_params = ("entity",)
    relation_params = ("relation",)

    def _init_params(self, rng: np.random.Generator) -> None:
        self.params["entity"] = xavier_uniform((self.n_entities, self.dim), rng)
        self.params["relation"] = xavier_uniform((self.n_relations, self.dim), rng)

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        return np.sum(rel[r] * _ccorr(ent[h], ent[t]), axis=-1)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        # f(t) = (r * h-correlation kernel) . t: df/dt = r (*) h is linear in t,
        # so f(t) = (r conv h) . t  -- score every candidate with one matmul.
        ent, rel = self.params["entity"], self.params["relation"]
        query = _cconv(rel[r], ent[h])  # [B, d]
        return np.einsum("bd,bcd->bc", query, ent[candidates])

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        query = _ccorr(rel[r], ent[t])  # f(h) = (r ccorr t) . h
        return np.einsum("bd,bcd->bc", query, ent[candidates])

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: one FFT query per row (the linear form of
        the circular op), block scored with a single batched matmul."""
        ent, rel = self.params["entity"], self.params["relation"]
        if mode == "tail":
            query = _cconv(rel[r], ent[anchors])  # f(t) = (r conv h) . t
        else:
            query = _ccorr(rel[r], ent[anchors])  # f(h) = (r ccorr t) . h
        return np.matmul(ent[candidates], query[:, :, None])[:, :, 0]

    def score_all_tails(self, h: np.ndarray, r: np.ndarray, chunk: int = 64) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        h = np.asarray(h, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        return _cconv(rel[r], ent[h]) @ ent.T

    def score_all_heads(self, r: np.ndarray, t: np.ndarray, chunk: int = 64) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        r = np.asarray(r, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        return _ccorr(rel[r], ent[t]) @ ent.T

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        ent, rel = self.params["entity"], self.params["relation"]
        eh, er, et = ent[h], rel[r], ent[t]
        up = np.asarray(upstream, dtype=np.float64)[:, None]
        bag = GradientBag()
        bag.add("relation", r, up * _ccorr(eh, et))
        bag.add("entity", h, up * _ccorr(er, et))
        bag.add("entity", t, up * _cconv(er, eh))
        return bag
