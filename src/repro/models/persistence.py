"""Model checkpointing: save/load any scoring model as a single ``.npz``.

The archive stores every parameter table plus enough metadata to rebuild
the model without the caller remembering its constructor arguments —
what the paper's pretrain protocol needs to share checkpoints between
runs and what downstream users need to ship trained embeddings.

Two on-disk formats share the same metadata schema:

* ``save_model`` / ``load_model`` — one compressed ``.npz`` archive, the
  training-side checkpoint format;
* ``export_snapshot`` / ``load_snapshot`` — a directory of raw ``.npy``
  files plus ``meta.json``, written C-contiguous so the serving layer
  (:mod:`repro.serve.snapshot`) can memory-map the tables without copying
  them into the process heap.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.models.base import KGEModel

__all__ = [
    "build_model_from_state",
    "export_snapshot",
    "load_checkpoint_state",
    "load_model",
    "load_snapshot",
    "model_meta",
    "save_model",
]

_META_KEY = "__repro_meta__"

#: Metadata file name inside an exported snapshot directory.
SNAPSHOT_META_FILE = "meta.json"


def model_meta(model: KGEModel) -> dict[str, object]:
    """The constructor metadata both checkpoint formats store."""
    return {
        "model": type(model).__name__,
        "n_entities": model.n_entities,
        "n_relations": model.n_relations,
        "dim": model.dim,
        "p": getattr(model, "p", None),
        "relation_dim": getattr(model, "relation_dim", None),
        "version": 1,
    }


def build_model_from_state(
    meta: dict[str, object], state: dict[str, np.ndarray]
) -> KGEModel:
    """Rebuild a model from stored metadata + parameter arrays."""
    from repro.models import make_model

    kwargs: dict[str, object] = {}
    if meta.get("p") is not None:
        kwargs["p"] = int(meta["p"])  # type: ignore[arg-type]
    if meta.get("relation_dim") is not None:
        kwargs["relation_dim"] = int(meta["relation_dim"])  # type: ignore[arg-type]
    model = make_model(
        str(meta["model"]),
        int(meta["n_entities"]),  # type: ignore[arg-type]
        int(meta["n_relations"]),  # type: ignore[arg-type]
        int(meta["dim"]),  # type: ignore[arg-type]
        rng=0,
        **kwargs,
    )
    model.load_state_dict(state)
    return model


def save_model(model: KGEModel, path: str | Path) -> Path:
    """Serialise ``model`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = dict(model.params)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(model_meta(model)).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint_state(
    path: str | Path,
) -> tuple[dict[str, object], dict[str, np.ndarray]]:
    """Read a ``save_model`` archive as ``(meta, arrays)`` without rebuilding.

    The single place the ``.npz`` checkpoint layout is parsed — used by
    :func:`load_model` here and by the serving layer's snapshot loader.
    """
    with np.load(Path(path)) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro model checkpoint")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        state = {
            name: archive[name] for name in archive.files if name != _META_KEY
        }
    return meta, state


def load_model(path: str | Path) -> KGEModel:
    """Rebuild the model saved by :func:`save_model`."""
    meta, state = load_checkpoint_state(path)
    return build_model_from_state(meta, state)


def export_snapshot(model: KGEModel, directory: str | Path) -> Path:
    """Write ``model`` as a serving snapshot directory.

    Layout: ``meta.json`` plus one raw ``.npy`` per parameter table.  The
    arrays are written C-contiguous so :func:`load_snapshot` can hand out
    zero-copy memory maps — the property the serving layer relies on when
    entity tables outgrow comfortable heap sizes.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = model_meta(model)
    meta["params"] = sorted(model.params)
    (directory / SNAPSHOT_META_FILE).write_text(
        json.dumps(meta, indent=2) + "\n", encoding="utf-8"
    )
    for name, array in model.params.items():
        np.save(directory / f"{name}.npy", np.ascontiguousarray(array))
    return directory


def load_snapshot(
    directory: str | Path, *, mmap: bool = True
) -> tuple[dict[str, object], dict[str, np.ndarray]]:
    """Read a snapshot directory written by :func:`export_snapshot`.

    Returns ``(meta, arrays)``; with ``mmap=True`` each array is a
    read-only :class:`numpy.memmap` backed by its ``.npy`` file.
    """
    directory = Path(directory)
    meta_path = directory / SNAPSHOT_META_FILE
    if not meta_path.is_file():
        raise ValueError(f"{directory} is not a repro snapshot directory")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    arrays = {
        name: np.load(directory / f"{name}.npy", mmap_mode="r" if mmap else None)
        for name in meta["params"]
    }
    return meta, arrays
