"""Model checkpointing: save/load any scoring model as a single ``.npz``.

The archive stores every parameter table plus enough metadata to rebuild
the model without the caller remembering its constructor arguments —
what the paper's pretrain protocol needs to share checkpoints between
runs and what downstream users need to ship trained embeddings.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.models.base import KGEModel

__all__ = ["save_model", "load_model"]

_META_KEY = "__repro_meta__"


def save_model(model: KGEModel, path: str | Path) -> Path:
    """Serialise ``model`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "model": type(model).__name__,
        "n_entities": model.n_entities,
        "n_relations": model.n_relations,
        "dim": model.dim,
        "p": getattr(model, "p", None),
        "relation_dim": getattr(model, "relation_dim", None),
        "version": 1,
    }
    arrays = dict(model.params)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_model(path: str | Path) -> KGEModel:
    """Rebuild the model saved by :func:`save_model`."""
    from repro.models import make_model

    with np.load(Path(path)) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro model checkpoint")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        state = {
            name: archive[name] for name in archive.files if name != _META_KEY
        }
    kwargs: dict[str, object] = {}
    if meta.get("p") is not None:
        kwargs["p"] = int(meta["p"])
    if meta.get("relation_dim") is not None:
        kwargs["relation_dim"] = int(meta["relation_dim"])
    model = make_model(
        meta["model"],
        int(meta["n_entities"]),
        int(meta["n_relations"]),
        int(meta["dim"]),
        rng=0,
        **kwargs,
    )
    model.load_state_dict(state)
    return model
