"""Training losses and their derivatives w.r.t. the scores.

Two loss families cover the paper's Eq. (1) and Eq. (2):

* :class:`MarginRankingLoss` for translational distance models —
  ``[gamma - f(pos) + f(neg)]_+`` (scores are plausibilities, so the
  positive should exceed the negative by the margin);
* :class:`LogisticLoss` for semantic matching models —
  ``softplus(-f(pos)) + softplus(f(neg))``.

Each loss exposes ``value`` and ``score_grads`` so the trainer can chain
them with the models' analytic score gradients.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Loss", "MarginRankingLoss", "LogisticLoss", "sigmoid", "softplus"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    return np.logaddexp(0.0, x)


class Loss(ABC):
    """A pairwise loss over (positive score, negative score) batches."""

    @abstractmethod
    def value(self, pos_scores: np.ndarray, neg_scores: np.ndarray) -> np.ndarray:
        """Per-pair loss values, shape ``[B]``."""

    @abstractmethod
    def score_grads(
        self, pos_scores: np.ndarray, neg_scores: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(d loss / d pos_score, d loss / d neg_score)``, each ``[B]``."""

    def nonzero_ratio(self, pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
        """Fraction of pairs with a non-vanishing gradient (the NZL metric)."""
        dpos, dneg = self.score_grads(pos_scores, neg_scores)
        active = (np.abs(dpos) > 1e-12) | (np.abs(dneg) > 1e-12)
        return float(np.mean(active)) if len(active) else 0.0


class MarginRankingLoss(Loss):
    """Eq. (1): ``[gamma - f(pos) + f(neg)]_+``."""

    def __init__(self, gamma: float = 1.0) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be > 0, got {gamma}")
        self.gamma = float(gamma)

    def value(self, pos_scores: np.ndarray, neg_scores: np.ndarray) -> np.ndarray:
        return np.maximum(self.gamma - pos_scores + neg_scores, 0.0)

    def score_grads(
        self, pos_scores: np.ndarray, neg_scores: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        active = (self.gamma - pos_scores + neg_scores) > 0
        dpos = np.where(active, -1.0, 0.0)
        dneg = np.where(active, 1.0, 0.0)
        return dpos, dneg

    def __repr__(self) -> str:
        return f"MarginRankingLoss(gamma={self.gamma})"


class LogisticLoss(Loss):
    """Eq. (2): ``l(+1, f(pos)) + l(-1, f(neg))`` with ``l(a, b) = log(1+e^{-ab})``."""

    def value(self, pos_scores: np.ndarray, neg_scores: np.ndarray) -> np.ndarray:
        return softplus(-pos_scores) + softplus(neg_scores)

    def score_grads(
        self, pos_scores: np.ndarray, neg_scores: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        dpos = -sigmoid(-pos_scores)
        dneg = sigmoid(neg_scores)
        return dpos, dneg

    def nonzero_ratio(self, pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
        """For smooth losses, count pairs whose gradient is non-negligible."""
        dpos, dneg = self.score_grads(pos_scores, neg_scores)
        active = (np.abs(dpos) > 1e-3) | (np.abs(dneg) > 1e-3)
        return float(np.mean(active)) if len(active) else 0.0

    def __repr__(self) -> str:
        return "LogisticLoss()"
