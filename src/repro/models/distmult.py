"""DistMult (Yang et al. 2015).

``f(h, r, t) = sum(h * r * t)`` — RESCAL with the relation matrix
restricted to a diagonal.  Symmetric in (h, t), hence weak on asymmetric
relations, but a strong and cheap semantic matching baseline.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import xavier_uniform
from repro.models.params import GradientBag

__all__ = ["DistMult"]


class DistMult(KGEModel):
    """Diagonal bilinear semantic matching model."""

    default_loss = "logistic"
    entity_params = ("entity",)
    relation_params = ("relation",)

    def _init_params(self, rng: np.random.Generator) -> None:
        self.params["entity"] = xavier_uniform((self.n_entities, self.dim), rng)
        self.params["relation"] = xavier_uniform((self.n_relations, self.dim), rng)

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        return np.sum(ent[h] * rel[r] * ent[t], axis=-1)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        query = ent[h] * rel[r]  # [B, d]
        return np.einsum("bd,bcd->bc", query, ent[candidates])

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        query = rel[r] * ent[t]
        return np.einsum("bd,bcd->bc", query, ent[candidates])

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: the anchor-relation query is built once
        per row and the whole block is scored with one batched matmul
        (BLAS) — ~2x over the einsum form at refresh sizes."""
        ent, rel = self.params["entity"], self.params["relation"]
        # f is symmetric in (h, t), so both modes share one query form.
        query = ent[anchors] * rel[r]  # [B, d]
        return np.matmul(ent[candidates], query[:, :, None])[:, :, 0]

    def score_all_tails(self, h: np.ndarray, r: np.ndarray, chunk: int = 64) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        query = ent[np.asarray(h, dtype=np.int64)] * rel[np.asarray(r, dtype=np.int64)]
        return query @ ent.T

    def score_all_heads(self, r: np.ndarray, t: np.ndarray, chunk: int = 64) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        query = rel[np.asarray(r, dtype=np.int64)] * ent[np.asarray(t, dtype=np.int64)]
        return query @ ent.T

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        ent, rel = self.params["entity"], self.params["relation"]
        eh, er, et = ent[h], rel[r], ent[t]
        up = np.asarray(upstream, dtype=np.float64)[:, None]
        bag = GradientBag()
        bag.add("entity", h, up * er * et)
        bag.add("relation", r, up * eh * et)
        bag.add("entity", t, up * eh * er)
        return bag
