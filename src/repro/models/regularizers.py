"""Parameter regularisation for semantic matching models.

DistMult/ComplEx overfit badly without an L2 penalty; the paper tunes
``lambda`` over {0.001, 0.01, 0.1} (§IV-B2).  The penalty is applied only
to rows touched by the current mini-batch, matching the sparse published
implementations.
"""

from __future__ import annotations

import numpy as np

from repro.models.params import GradientBag

__all__ = ["L2Regularizer"]


class L2Regularizer:
    """``lambda * ||row||_2^2`` on every embedding row used by the batch."""

    def __init__(self, weight: float) -> None:
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self.weight = float(weight)

    def penalty(self, params: dict[str, np.ndarray], rows: dict[str, np.ndarray]) -> float:
        """Penalty value over the selected rows (for loss reporting)."""
        if self.weight == 0.0:
            return 0.0
        total = 0.0
        for name, idx in rows.items():
            if len(idx) == 0:
                continue
            total += float(np.sum(params[name][np.unique(idx)] ** 2))
        return self.weight * total

    def add_gradients(
        self,
        bag: GradientBag,
        params: dict[str, np.ndarray],
        rows: dict[str, np.ndarray],
    ) -> GradientBag:
        """Accumulate ``2 * lambda * row`` for each touched row into ``bag``."""
        if self.weight == 0.0:
            return bag
        for name, idx in rows.items():
            unique = np.unique(np.asarray(idx, dtype=np.int64).ravel())
            if len(unique) == 0:
                continue
            bag.add(name, unique, 2.0 * self.weight * params[name][unique])
        return bag

    def __repr__(self) -> str:
        return f"L2Regularizer(weight={self.weight})"
