"""Embedding initialisers.

The paper initialises all embeddings with the Xavier uniform scheme
(Glorot & Bengio 2010) when training from scratch (§IV-B1).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["xavier_uniform", "xavier_normal", "uniform_ball", "normalize_rows"]


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Xavier/Glorot uniform: U(-b, b) with ``b = sqrt(6 / (fan_in + fan_out))``.

    For an embedding table ``[n, d]`` the fans are taken as ``(n, d)`` is
    wrong — what matters is the row dimension, so we follow the common KG
    convention of ``fan_in = fan_out = d`` (i.e. ``b = sqrt(6/(2d)) =
    sqrt(3/d)``), matching the published implementations.
    """
    rng = ensure_rng(rng)
    d = shape[-1]
    bound = np.sqrt(6.0 / (2 * d))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: tuple[int, ...], rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Xavier/Glorot normal with std ``sqrt(2 / (fan_in + fan_out))``."""
    rng = ensure_rng(rng)
    d = shape[-1]
    std = np.sqrt(2.0 / (2 * d))
    return rng.normal(0.0, std, size=shape)


def uniform_ball(
    shape: tuple[int, ...], rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Rows drawn uniformly then projected to the unit l2 ball (TransE init)."""
    rng = ensure_rng(rng)
    array = rng.uniform(-1.0, 1.0, size=shape)
    return normalize_rows(array)


def normalize_rows(array: np.ndarray, max_norm: float = 1.0) -> np.ndarray:
    """Project rows with l2 norm above ``max_norm`` back onto the ball."""
    norms = np.linalg.norm(array, axis=-1, keepdims=True)
    scale = np.where(norms > max_norm, max_norm / np.maximum(norms, 1e-12), 1.0)
    return array * scale
