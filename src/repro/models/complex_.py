"""ComplEx (Trouillon et al. 2016).

Embeddings are complex vectors; ``f = Re(<h, r, conj(t)>)``.  The imaginary
parts break DistMult's symmetry, so asymmetric relations become modellable.
Stored as four real tables (entity/relation x real/imaginary), with the real
expansion

``f = sum(h_re r_re t_re + h_im r_re t_im + h_re r_im t_im - h_im r_im t_re)``.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import xavier_uniform
from repro.models.params import GradientBag

__all__ = ["ComplEx"]


class ComplEx(KGEModel):
    """Complex-valued bilinear semantic matching model."""

    default_loss = "logistic"
    entity_params = ("entity_re", "entity_im")
    relation_params = ("relation_re", "relation_im")

    def _init_params(self, rng: np.random.Generator) -> None:
        shape_e = (self.n_entities, self.dim)
        shape_r = (self.n_relations, self.dim)
        self.params["entity_re"] = xavier_uniform(shape_e, rng)
        self.params["entity_im"] = xavier_uniform(shape_e, rng)
        self.params["relation_re"] = xavier_uniform(shape_r, rng)
        self.params["relation_im"] = xavier_uniform(shape_r, rng)

    # -- internals -------------------------------------------------------------
    def _gather(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> tuple[np.ndarray, ...]:
        p = self.params
        return (
            p["entity_re"][h], p["entity_im"][h],
            p["relation_re"][r], p["relation_im"][r],
            p["entity_re"][t], p["entity_im"][t],
        )

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        h_re, h_im, r_re, r_im, t_re, t_im = self._gather(h, r, t)
        return np.sum(
            h_re * r_re * t_re
            + h_im * r_re * t_im
            + h_re * r_im * t_im
            - h_im * r_im * t_re,
            axis=-1,
        )

    def _tail_query(self, h: np.ndarray, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Coefficients (A, B) with f(t) = A . t_re + B . t_im."""
        p = self.params
        h_re, h_im = p["entity_re"][h], p["entity_im"][h]
        r_re, r_im = p["relation_re"][r], p["relation_im"][r]
        return h_re * r_re - h_im * r_im, h_im * r_re + h_re * r_im

    def _head_query(self, r: np.ndarray, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Coefficients (C, D) with f(h) = C . h_re + D . h_im."""
        p = self.params
        t_re, t_im = p["entity_re"][t], p["entity_im"][t]
        r_re, r_im = p["relation_re"][r], p["relation_im"][r]
        return r_re * t_re + r_im * t_im, r_re * t_im - r_im * t_re

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        a, b = self._tail_query(h, r)
        p = self.params
        return np.einsum("bd,bcd->bc", a, p["entity_re"][candidates]) + np.einsum(
            "bd,bcd->bc", b, p["entity_im"][candidates]
        )

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        c, d = self._head_query(r, t)
        p = self.params
        return np.einsum("bd,bcd->bc", c, p["entity_re"][candidates]) + np.einsum(
            "bd,bcd->bc", d, p["entity_im"][candidates]
        )

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: the complex query coefficients are built
        once per row, then the block is scored with two batched matmuls
        (one per real/imaginary table)."""
        if mode == "tail":
            a, b = self._tail_query(anchors, r)
        else:
            a, b = self._head_query(r, anchors)
        p = self.params
        out = np.matmul(p["entity_re"][candidates], a[:, :, None])
        out += np.matmul(p["entity_im"][candidates], b[:, :, None])
        return out[:, :, 0]

    def score_all_tails(self, h: np.ndarray, r: np.ndarray, chunk: int = 64) -> np.ndarray:
        h = np.asarray(h, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        a, b = self._tail_query(h, r)
        return a @ self.params["entity_re"].T + b @ self.params["entity_im"].T

    def score_all_heads(self, r: np.ndarray, t: np.ndarray, chunk: int = 64) -> np.ndarray:
        r = np.asarray(r, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        c, d = self._head_query(r, t)
        return c @ self.params["entity_re"].T + d @ self.params["entity_im"].T

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        h_re, h_im, r_re, r_im, t_re, t_im = self._gather(h, r, t)
        up = np.asarray(upstream, dtype=np.float64)[:, None]
        bag = GradientBag()
        bag.add("entity_re", h, up * (r_re * t_re + r_im * t_im))
        bag.add("entity_im", h, up * (r_re * t_im - r_im * t_re))
        bag.add("relation_re", r, up * (h_re * t_re + h_im * t_im))
        bag.add("relation_im", r, up * (h_re * t_im - h_im * t_re))
        bag.add("entity_re", t, up * (h_re * r_re - h_im * r_im))
        bag.add("entity_im", t, up * (h_im * r_re + h_re * r_im))
        return bag
