"""Shared vector-norm forward/backward helpers for translational models.

Translational distance models score ``f = -||e||_p`` with ``p`` in {1, 2}
(Table III uses L1).  Both the norm and its subgradient are needed; the L2
norm is smoothed with a small epsilon to avoid division by zero at the
origin, and the L1 subgradient uses ``sign`` (zero at kinks), matching the
behaviour of the autodiff frameworks the paper used.
"""

from __future__ import annotations

import numpy as np

__all__ = ["norm_forward", "norm_backward", "check_p"]

_EPS = 1e-12


def check_p(p: int) -> int:
    """Validate the norm order (only L1 and L2 are supported)."""
    if p not in (1, 2):
        raise ValueError(f"norm order p must be 1 or 2, got {p}")
    return p


def norm_forward(e: np.ndarray, p: int) -> np.ndarray:
    """``||e||_p`` along the last axis."""
    if p == 1:
        return np.sum(np.abs(e), axis=-1)
    return np.sqrt(np.sum(e**2, axis=-1) + _EPS)


def norm_backward(e: np.ndarray, p: int) -> np.ndarray:
    """``d ||e||_p / d e`` along the last axis (same shape as ``e``)."""
    if p == 1:
        return np.sign(e)
    norms = np.sqrt(np.sum(e**2, axis=-1, keepdims=True) + _EPS)
    return e / norms
