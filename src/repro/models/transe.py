"""TransE (Bordes et al. 2013).

``f(h, r, t) = -||h + r - t||_p`` — a triple is plausible when the tail
embedding sits at the head embedding translated by the relation vector.
Entity embeddings are kept on the unit sphere after every update, as in the
original implementation.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import xavier_uniform
from repro.models.norms import check_p, norm_backward, norm_forward
from repro.models.params import GradientBag

__all__ = ["TransE"]


class TransE(KGEModel):
    """Translational-distance model with a single vector per relation."""

    default_loss = "margin"
    entity_params = ("entity",)
    relation_params = ("relation",)

    def __init__(
        self,
        n_entities: int,
        n_relations: int,
        dim: int,
        rng: np.random.Generator | int | None = None,
        *,
        p: int = 1,
    ) -> None:
        self.p = check_p(p)
        super().__init__(n_entities, n_relations, dim, rng)

    def _init_params(self, rng: np.random.Generator) -> None:
        self.params["entity"] = xavier_uniform((self.n_entities, self.dim), rng)
        self.params["relation"] = xavier_uniform((self.n_relations, self.dim), rng)
        self.normalize()

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        e = ent[h] + rel[r] - ent[t]
        return -norm_forward(e, self.p)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        query = ent[h] + rel[r]  # [B, d]
        e = query[:, None, :] - ent[candidates]  # [B, C, d]
        return -norm_forward(e, self.p)

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        ent, rel = self.params["entity"], self.params["relation"]
        query = rel[r] - ent[t]  # [B, d]; e = cand + query
        e = ent[candidates] + query[:, None, :]
        return -norm_forward(e, self.p)

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: one residual buffer, no broadcast temp.

        The gathered candidate block is the only ``[B, C, d]`` allocation;
        the query is folded into it in place before the norm.
        """
        ent, rel = self.params["entity"], self.params["relation"]
        e = ent[candidates]  # [B, C, d] — a fresh copy, safe to overwrite
        if mode == "tail":
            query = ent[anchors] + rel[r]  # e = query - cand
            np.subtract(query[:, None, :], e, out=e)
        else:
            query = rel[r] - ent[anchors]  # e = cand + query
            e += query[:, None, :]
        return -norm_forward(e, self.p)

    def score_all_tails(
        self, h: np.ndarray, r: np.ndarray, chunk: int = 64
    ) -> np.ndarray:
        """All-entity tail scoring without materialising a candidate gather.

        When every entity is a candidate, broadcasting against the entity
        table directly skips the ``[B, E, d]`` fancy-index copy the generic
        path pays — the evaluation and serving hot path.
        """
        ent, rel = self.params["entity"], self.params["relation"]
        h = np.asarray(h, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        query = ent[h] + rel[r]  # [B, d]
        out = np.empty((len(h), self.n_entities), dtype=np.float64)
        for start in range(0, len(h), chunk):
            stop = min(start + chunk, len(h))
            e = query[start:stop, None, :] - ent[None, :, :]
            out[start:stop] = -norm_forward(e, self.p)
        return out

    def score_all_heads(
        self, r: np.ndarray, t: np.ndarray, chunk: int = 64
    ) -> np.ndarray:
        """All-entity head scoring via direct broadcast (see score_all_tails)."""
        ent, rel = self.params["entity"], self.params["relation"]
        r = np.asarray(r, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        query = rel[r] - ent[t]  # [B, d]; e = cand + query
        out = np.empty((len(r), self.n_entities), dtype=np.float64)
        for start in range(0, len(r), chunk):
            stop = min(start + chunk, len(r))
            e = ent[None, :, :] + query[start:stop, None, :]
            out[start:stop] = -norm_forward(e, self.p)
        return out

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        ent, rel = self.params["entity"], self.params["relation"]
        e = ent[h] + rel[r] - ent[t]
        # f = -||e||  =>  df/de = -norm_backward(e)
        de = -norm_backward(e, self.p) * np.asarray(upstream, dtype=np.float64)[:, None]
        bag = GradientBag()
        bag.add("entity", h, de)
        bag.add("entity", t, -de)
        bag.add("relation", r, de)
        return bag

    # -- constraints -----------------------------------------------------------
    def normalize(self, touched_entities: np.ndarray | None = None) -> None:
        """Renormalise entity rows to unit l2 norm (original TransE step 5)."""
        ent = self.params["entity"]
        if touched_entities is None:
            norms = np.linalg.norm(ent, axis=1, keepdims=True)
            ent /= np.maximum(norms, 1e-12)
        else:
            rows = np.unique(np.asarray(touched_entities, dtype=np.int64))
            norms = np.linalg.norm(ent[rows], axis=1, keepdims=True)
            ent[rows] /= np.maximum(norms, 1e-12)
