"""TransD (Ji et al. 2015).

Every entity and relation carries a second *projection* vector; the mapping
matrix ``M_r = I + w_r w_e^T`` is entity-and-relation specific but costs
only two vectors:

``h_p = h + (w_h . h) w_r``, ``t_p = t + (w_t . t) w_r``,
``f = -|| h_p + r - t_p ||_p``.

TransD is the paper's workhorse for the ablation studies (Figures 6-9).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import normalize_rows, xavier_uniform
from repro.models.norms import check_p, norm_backward, norm_forward
from repro.models.params import GradientBag

__all__ = ["TransD"]


class TransD(KGEModel):
    """Dynamic-mapping-matrix translational model."""

    default_loss = "margin"
    entity_params = ("entity", "entity_proj")
    relation_params = ("relation", "relation_proj")

    def __init__(
        self,
        n_entities: int,
        n_relations: int,
        dim: int,
        rng: np.random.Generator | int | None = None,
        *,
        p: int = 1,
    ) -> None:
        self.p = check_p(p)
        super().__init__(n_entities, n_relations, dim, rng)

    def _init_params(self, rng: np.random.Generator) -> None:
        self.params["entity"] = xavier_uniform((self.n_entities, self.dim), rng)
        self.params["entity_proj"] = xavier_uniform((self.n_entities, self.dim), rng)
        self.params["relation"] = xavier_uniform((self.n_relations, self.dim), rng)
        self.params["relation_proj"] = xavier_uniform((self.n_relations, self.dim), rng)
        self.normalize()

    # -- internals -------------------------------------------------------------
    def _project(
        self, entities: np.ndarray, wr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project entity rows; returns ``(projected, raw, w_e)``."""
        raw = self.params["entity"][entities]
        we = self.params["entity_proj"][entities]
        dot = np.sum(we * raw, axis=-1, keepdims=True)
        return raw + dot * wr, raw, we

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        wr = self.params["relation_proj"][r]
        hp, _, _ = self._project(h, wr)
        tp, _, _ = self._project(t, wr)
        e = hp + self.params["relation"][r] - tp
        return -norm_forward(e, self.p)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        wr = self.params["relation_proj"][r]  # [B, d]
        hp, _, _ = self._project(h, wr)
        query = hp + self.params["relation"][r]  # [B, d]
        raw = self.params["entity"][candidates]  # [B, C, d]
        we = self.params["entity_proj"][candidates]
        dot = np.sum(we * raw, axis=-1)  # [B, C]
        tp = raw + dot[:, :, None] * wr[:, None, :]
        return -norm_forward(query[:, None, :] - tp, self.p)

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        wr = self.params["relation_proj"][r]
        tp, _, _ = self._project(t, wr)
        base = self.params["relation"][r] - tp  # [B, d]; e = hp + base
        raw = self.params["entity"][candidates]
        we = self.params["entity_proj"][candidates]
        dot = np.sum(we * raw, axis=-1)
        hp = raw + dot[:, :, None] * wr[:, None, :]
        return -norm_forward(hp + base[:, None, :], self.p)

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: anchor projection once per row, candidate
        projection folded into the gathered block in place (no ``we * raw``
        or projected-block temporaries)."""
        wr = self.params["relation_proj"][r]  # [B, d]
        anchor_proj, _, _ = self._project(anchors, wr)
        raw = self.params["entity"][candidates]  # [B, C, d] copy
        we = self.params["entity_proj"][candidates]
        dot = np.einsum("bcd,bcd->bc", we, raw)  # (w_e . e) per candidate
        if mode == "tail":
            # e = (hp + r) - (raw + dot * w_r)
            query = anchor_proj + self.params["relation"][r]
            np.subtract(query[:, None, :], raw, out=raw)
            raw -= dot[:, :, None] * wr[:, None, :]
        else:
            # e = (raw + dot * w_r) + (r - tp)
            base = self.params["relation"][r] - anchor_proj
            raw += base[:, None, :]
            raw += dot[:, :, None] * wr[:, None, :]
        return -norm_forward(raw, self.p)

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        wr = self.params["relation_proj"][r]
        hp, h_raw, wh = self._project(h, wr)
        tp, t_raw, wt = self._project(t, wr)
        e = hp + self.params["relation"][r] - tp
        up = np.asarray(upstream, dtype=np.float64)[:, None]
        s = -norm_backward(e, self.p) * up  # [B, d]

        wr_s = np.sum(wr * s, axis=1, keepdims=True)  # (w_r . s)
        wh_h = np.sum(wh * h_raw, axis=1, keepdims=True)  # (w_h . h)
        wt_t = np.sum(wt * t_raw, axis=1, keepdims=True)  # (w_t . t)

        bag = GradientBag()
        # d e / d h = I + w_r w_h^T  (transposed action on s)
        bag.add("entity", h, s + wr_s * wh)
        bag.add("entity_proj", h, wr_s * h_raw)
        bag.add("entity", t, -(s + wr_s * wt))
        bag.add("entity_proj", t, -wr_s * t_raw)
        bag.add("relation", r, s)
        bag.add("relation_proj", r, (wh_h - wt_t) * s)
        return bag

    # -- constraints -----------------------------------------------------------
    def normalize(self, touched_entities: np.ndarray | None = None) -> None:
        """Clamp entity rows to the unit l2 ball (soft constraint of the paper)."""
        ent = self.params["entity"]
        if touched_entities is None:
            ent[...] = normalize_rows(ent)
        else:
            rows = np.unique(np.asarray(touched_entities, dtype=np.int64))
            ent[rows] = normalize_rows(ent[rows])
