"""TransH (Wang et al. 2014).

Each relation owns a hyperplane with unit normal ``w_r`` and a translation
``d_r`` living in that hyperplane.  Entities are projected onto the
hyperplane before translation:

``f = -|| (h - (w.h) w) + d_r - (t - (w.t) w) ||_p``

which handles 1-N/N-1/N-N relations that plain TransE collapses.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import normalize_rows, xavier_uniform
from repro.models.norms import check_p, norm_backward, norm_forward
from repro.models.params import GradientBag

__all__ = ["TransH"]


class TransH(KGEModel):
    """Hyperplane-projection translational model."""

    default_loss = "margin"
    entity_params = ("entity",)
    relation_params = ("relation", "normal")

    def __init__(
        self,
        n_entities: int,
        n_relations: int,
        dim: int,
        rng: np.random.Generator | int | None = None,
        *,
        p: int = 1,
    ) -> None:
        self.p = check_p(p)
        super().__init__(n_entities, n_relations, dim, rng)

    def _init_params(self, rng: np.random.Generator) -> None:
        self.params["entity"] = xavier_uniform((self.n_entities, self.dim), rng)
        self.params["relation"] = xavier_uniform((self.n_relations, self.dim), rng)
        normal = xavier_uniform((self.n_relations, self.dim), rng)
        self.params["normal"] = normal / np.maximum(
            np.linalg.norm(normal, axis=1, keepdims=True), 1e-12
        )
        self.normalize()

    # -- internals -------------------------------------------------------------
    def _residual(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(e, u, w)`` with ``u = h - t`` embeddings and residual
        ``e = u - (w.u) w + d_r`` (projection distributes over the difference)."""
        ent = self.params["entity"]
        u = ent[h] - ent[t]  # [B, d]
        w = self.params["normal"][r]
        wu = np.sum(w * u, axis=1, keepdims=True)
        e = u - wu * w + self.params["relation"][r]
        return e, u, w

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        e, _, _ = self._residual(h, r, t)
        return -norm_forward(e, self.p)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        ent = self.params["entity"]
        w = self.params["normal"][r]  # [B, d]
        head = ent[h]
        hp = head - np.sum(w * head, axis=1, keepdims=True) * w + self.params["relation"][r]
        tails = ent[candidates]  # [B, C, d]
        wt = np.einsum("bd,bcd->bc", w, tails)
        tp = tails - wt[:, :, None] * w[:, None, :]
        return -norm_forward(hp[:, None, :] - tp, self.p)

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        ent = self.params["entity"]
        w = self.params["normal"][r]
        tail = ent[t]
        base = self.params["relation"][r] - (
            tail - np.sum(w * tail, axis=1, keepdims=True) * w
        )  # [B, d]; e = hp + base
        heads = ent[candidates]
        wh = np.einsum("bd,bcd->bc", w, heads)
        hp = heads - wh[:, :, None] * w[:, None, :]
        return -norm_forward(hp + base[:, None, :], self.p)

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: project the anchor once per row, fold the
        candidate projection into the gathered block in place, and compute
        the per-candidate hyperplane dot with one batched matmul."""
        ent = self.params["entity"]
        w = self.params["normal"][r]  # [B, d]
        anchor = ent[anchors]
        anchor_proj = anchor - np.sum(w * anchor, axis=1, keepdims=True) * w
        cand = ent[candidates]  # [B, C, d] copy — overwritten below
        wc = np.matmul(cand, w[:, :, None])[:, :, 0]  # (w . cand), [B, C]
        if mode == "tail":
            # e = (hp + d_r) - (cand - (w.cand) w)
            base = anchor_proj + self.params["relation"][r]
            np.subtract(base[:, None, :], cand, out=cand)
            cand += wc[:, :, None] * w[:, None, :]
        else:
            # e = (cand - (w.cand) w) + (d_r - tp)
            base = self.params["relation"][r] - anchor_proj
            cand += base[:, None, :]
            cand -= wc[:, :, None] * w[:, None, :]
        return -norm_forward(cand, self.p)

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        e, u, w = self._residual(h, r, t)
        up = np.asarray(upstream, dtype=np.float64)[:, None]
        s = -norm_backward(e, self.p) * up  # d(sum up*f)/de, [B, d]
        ws = np.sum(w * s, axis=1, keepdims=True)
        wu = np.sum(w * u, axis=1, keepdims=True)
        du = s - ws * w  # de/du applied transposed: (I - w w^T) s
        dw = -(ws * u + wu * s)  # d[-(w.u)w]/dw applied to s
        bag = GradientBag()
        bag.add("entity", h, du)
        bag.add("entity", t, -du)
        bag.add("relation", r, s)
        bag.add("normal", r, dw)
        return bag

    # -- constraints -----------------------------------------------------------
    def normalize(self, touched_entities: np.ndarray | None = None) -> None:
        """Clamp entity rows to the unit ball; renormalise hyperplane normals."""
        ent = self.params["entity"]
        if touched_entities is None:
            ent[...] = normalize_rows(ent)
        else:
            rows = np.unique(np.asarray(touched_entities, dtype=np.int64))
            ent[rows] = normalize_rows(ent[rows])
        normal = self.params["normal"]
        normal /= np.maximum(np.linalg.norm(normal, axis=1, keepdims=True), 1e-12)
