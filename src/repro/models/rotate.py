"""RotatE (Sun et al. 2019) — extension beyond the paper's five models.

Entities are complex vectors; each relation is an element-wise *rotation*
``r = exp(i theta_r)`` on the complex plane:

``f(h, r, t) = -|| h o r - t ||``

where ``o`` is element-wise complex multiplication and the norm runs over
the real and imaginary parts.  Rotations model symmetry/antisymmetry,
inversion and composition — the relation patterns the later literature
benchmarks — and RotatE is the model the self-adversarial sampler
(:mod:`repro.sampling.self_adversarial`) was introduced with, making the
pair a natural extension experiment.

Stored parameters: ``entity_re``/``entity_im`` ``[E, d]`` and the rotation
phases ``phase`` ``[R, d]`` (one angle per dimension — relations have
exactly ``d`` parameters, like TransE).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import xavier_uniform
from repro.models.norms import check_p, norm_backward, norm_forward
from repro.models.params import GradientBag

__all__ = ["RotatE"]


class RotatE(KGEModel):
    """Complex-rotation translational model."""

    default_loss = "margin"
    entity_params = ("entity_re", "entity_im")
    relation_params = ("phase",)

    def __init__(
        self,
        n_entities: int,
        n_relations: int,
        dim: int,
        rng: np.random.Generator | int | None = None,
        *,
        p: int = 2,
    ) -> None:
        self.p = check_p(p)
        super().__init__(n_entities, n_relations, dim, rng)

    def _init_params(self, rng: np.random.Generator) -> None:
        shape_e = (self.n_entities, self.dim)
        self.params["entity_re"] = xavier_uniform(shape_e, rng)
        self.params["entity_im"] = xavier_uniform(shape_e, rng)
        self.params["phase"] = rng.uniform(-np.pi, np.pi, size=(self.n_relations, self.dim))

    # -- internals -------------------------------------------------------------
    def _residual(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(e, h_re, h_im, cos, sin)`` with ``e = [e_re | e_im]``.

        ``e_re = h_re cos - h_im sin - t_re`` and
        ``e_im = h_re sin + h_im cos - t_im``, concatenated so the shared
        norm helpers see one ``[B, 2d]`` residual.
        """
        p = self.params
        h_re, h_im = p["entity_re"][h], p["entity_im"][h]
        theta = p["phase"][r]
        cos, sin = np.cos(theta), np.sin(theta)
        e_re = h_re * cos - h_im * sin - p["entity_re"][t]
        e_im = h_re * sin + h_im * cos - p["entity_im"][t]
        return np.concatenate([e_re, e_im], axis=1), h_re, h_im, cos, sin

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        e, *_ = self._residual(h, r, t)
        return -norm_forward(e, self.p)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        p = self.params
        h_re, h_im = p["entity_re"][h], p["entity_im"][h]
        theta = p["phase"][r]
        cos, sin = np.cos(theta), np.sin(theta)
        rot_re = (h_re * cos - h_im * sin)[:, None, :]  # [B, 1, d]
        rot_im = (h_re * sin + h_im * cos)[:, None, :]
        e = np.concatenate(
            [
                rot_re - p["entity_re"][candidates],
                rot_im - p["entity_im"][candidates],
            ],
            axis=2,
        )
        return -norm_forward(e, self.p)

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        # Rotate every candidate head forward and measure against the tail.
        p = self.params
        theta = p["phase"][r]
        cos, sin = np.cos(theta)[:, None, :], np.sin(theta)[:, None, :]
        c_re = p["entity_re"][candidates]
        c_im = p["entity_im"][candidates]
        rot_re = c_re * cos - c_im * sin
        rot_im = c_re * sin + c_im * cos
        e = np.concatenate(
            [
                rot_re - p["entity_re"][t][:, None, :],
                rot_im - p["entity_im"][t][:, None, :],
            ],
            axis=2,
        )
        return -norm_forward(e, self.p)

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: both residual halves are written straight
        into one ``[B, C, 2d]`` buffer (no per-half temporaries or final
        concatenate copy)."""
        p = self.params
        theta = p["phase"][r]
        cos, sin = np.cos(theta), np.sin(theta)
        c_re = p["entity_re"][candidates]  # [B, C, d]
        c_im = p["entity_im"][candidates]
        b, c = candidates.shape
        e = np.empty((b, c, 2 * self.dim))
        e_re, e_im = e[:, :, : self.dim], e[:, :, self.dim :]
        if mode == "tail":
            # Rotate the anchor head once per row; e = (h o r) - cand.
            h_re, h_im = p["entity_re"][anchors], p["entity_im"][anchors]
            rot_re = h_re * cos - h_im * sin
            rot_im = h_re * sin + h_im * cos
            np.subtract(rot_re[:, None, :], c_re, out=e_re)
            np.subtract(rot_im[:, None, :], c_im, out=e_im)
        else:
            # Rotate every candidate forward; e = (cand o r) - t.
            np.multiply(c_re, cos[:, None, :], out=e_re)
            e_re -= c_im * sin[:, None, :]
            e_re -= p["entity_re"][anchors][:, None, :]
            np.multiply(c_re, sin[:, None, :], out=e_im)
            e_im += c_im * cos[:, None, :]
            e_im -= p["entity_im"][anchors][:, None, :]
        return -norm_forward(e, self.p)

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        e, h_re, h_im, cos, sin = self._residual(h, r, t)
        up = np.asarray(upstream, dtype=np.float64)[:, None]
        s = -norm_backward(e, self.p) * up  # [B, 2d]
        s_re, s_im = s[:, : self.dim], s[:, self.dim :]

        bag = GradientBag()
        # de_re/dh_re = cos, de_im/dh_re = sin, etc.
        bag.add("entity_re", h, s_re * cos + s_im * sin)
        bag.add("entity_im", h, -s_re * sin + s_im * cos)
        bag.add("entity_re", t, -s_re)
        bag.add("entity_im", t, -s_im)
        # de_re/dtheta = -h_re sin - h_im cos; de_im/dtheta = h_re cos - h_im sin.
        d_theta = s_re * (-h_re * sin - h_im * cos) + s_im * (h_re * cos - h_im * sin)
        bag.add("phase", r, d_theta)
        return bag
