"""Parameter and gradient containers.

Embedding models hold their parameters as plain numpy arrays in a
``dict[str, np.ndarray]``.  A training step touches only a few rows of each
table, so gradients are exchanged as a :class:`GradientBag` — a collection
of ``(row indices, row gradients)`` pairs per parameter — which the sparse
optimisers consume without ever materialising a dense gradient.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

import numpy as np

__all__ = ["GradientBag"]


class GradientBag:
    """Accumulates sparse row gradients for named parameters.

    Multiple ``add`` calls may reference the same rows; :meth:`compacted`
    sums duplicates so each row appears exactly once — required for correct
    AdaGrad/Adam moment updates.
    """

    def __init__(self) -> None:
        self._rows: dict[str, list[np.ndarray]] = defaultdict(list)
        self._grads: dict[str, list[np.ndarray]] = defaultdict(list)

    def add(self, name: str, rows: np.ndarray, grads: np.ndarray) -> None:
        """Record gradients ``grads[i]`` for ``param[name][rows[i]]``.

        ``rows`` has shape ``[n]``; ``grads`` has shape ``[n, *row_shape]``.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        grads = np.asarray(grads, dtype=np.float64)
        if len(rows) != len(grads):
            raise ValueError(
                f"rows ({len(rows)}) and grads ({len(grads)}) for {name!r} disagree"
            )
        if len(rows) == 0:
            return
        self._rows[name].append(rows)
        self._grads[name].append(grads)

    def merge(self, other: "GradientBag") -> "GradientBag":
        """Fold another bag into this one (in place); returns self."""
        for name in other._rows:
            self._rows[name].extend(other._rows[name])
            self._grads[name].extend(other._grads[name])
        return self

    def names(self) -> list[str]:
        """Parameter names with at least one recorded gradient."""
        return list(self._rows.keys())

    def compacted(self) -> Iterator[tuple[str, np.ndarray, np.ndarray]]:
        """Yield ``(name, unique_rows, summed_grads)`` per parameter."""
        for name in self._rows:
            rows = np.concatenate(self._rows[name])
            grads = np.concatenate(self._grads[name], axis=0)
            unique, inverse = np.unique(rows, return_inverse=True)
            summed = np.zeros((len(unique), *grads.shape[1:]), dtype=np.float64)
            np.add.at(summed, inverse, grads)
            yield name, unique, summed

    def dense(self, shapes: dict[str, tuple[int, ...]]) -> dict[str, np.ndarray]:
        """Materialise dense gradients (used by gradient-check tests only)."""
        out = {name: np.zeros(shape) for name, shape in shapes.items()}
        for name, rows, grads in self.compacted():
            out[name][rows] += grads
        return out

    def global_norm(self) -> float:
        """l2 norm over every recorded gradient entry (Figure 10 metric)."""
        total = 0.0
        for _, _, grads in self.compacted():
            total += float(np.sum(grads**2))
        return float(np.sqrt(total))

    def touched_rows(self, name: str) -> np.ndarray:
        """Unique row indices recorded for ``name`` (empty if none)."""
        if name not in self._rows:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(self._rows[name]))

    def __bool__(self) -> bool:
        return bool(self._rows)
