"""The scoring-model interface shared by all KG embedding models.

A model owns its parameter tables and exposes three things:

* **forward**: :meth:`KGEModel.score` — plausibility ``f(h, r, t)`` of a
  batch of triples (higher = more plausible; translational models return
  the *negated* distance, see DESIGN.md §6);
* **backward**: :meth:`KGEModel.grad` — the analytic gradient of
  ``sum(upstream * f)`` w.r.t. every touched parameter row, returned as a
  :class:`~repro.models.params.GradientBag` (this is what PyTorch autodiff
  provided in the paper's code; here every formula is hand-derived and
  verified against finite differences in the test suite);
* **bulk scoring**: :meth:`score_tails` / :meth:`score_all_tails` (and the
  head-side twins) used by the cache update (Alg. 3 step 4), KBGAN/IGAN
  generators, and the link-prediction evaluator.  The base class provides
  correct broadcast implementations; subclasses override them with faster
  closed forms where available;
* **fused candidate scoring**: :meth:`KGEModel.score_candidates` — one
  validated entry point for scoring a ``[B, C]`` candidate block against
  per-row ``(anchor, relation)`` queries, the primitive the NSCaching
  refresh (Alg. 3 step 4) is built on.  Validation and dispatch live in
  the base class; models override the :meth:`_score_candidates_impl`
  kernel hook with fused per-family kernels (see the conformance suite in
  ``tests/models/test_conformance.py`` for the contract they must honour).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.models.params import GradientBag
from repro.utils.rng import ensure_rng

__all__ = ["CANDIDATE_MODES", "KGEModel"]

#: Corruption modes understood by :meth:`KGEModel.score_candidates`:
#: ``"tail"`` scores ``(anchor, r, candidate)``; ``"head"`` scores
#: ``(candidate, r, anchor)``.
CANDIDATE_MODES: tuple[str, ...] = ("head", "tail")


class KGEModel(ABC):
    """Base class for knowledge-graph embedding scoring models.

    Parameters
    ----------
    n_entities, n_relations:
        Vocabulary sizes; parameter tables are indexed by these ids.
    dim:
        Embedding dimension ``d``.
    rng:
        Seed or generator for parameter initialisation.
    """

    #: "margin" (Eq. 1, translational distance) or "logistic" (Eq. 2).
    default_loss: str = "margin"

    def __init__(
        self,
        n_entities: int,
        n_relations: int,
        dim: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_entities <= 0 or n_relations <= 0 or dim <= 0:
            raise ValueError(
                f"n_entities, n_relations and dim must be positive, got "
                f"({n_entities}, {n_relations}, {dim})"
            )
        self.n_entities = int(n_entities)
        self.n_relations = int(n_relations)
        self.dim = int(dim)
        self.params: dict[str, np.ndarray] = {}
        self._init_params(ensure_rng(rng))

    # -- subclass responsibilities ------------------------------------------
    @abstractmethod
    def _init_params(self, rng: np.random.Generator) -> None:
        """Create and initialise the entries of ``self.params``."""

    @abstractmethod
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Plausibility of each triple; ``h, r, t`` are id arrays of shape [B]."""

    @abstractmethod
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        """Gradient of ``sum(upstream * score)`` w.r.t. touched parameter rows."""

    # -- parameter naming, used by trainers/regularizers ---------------------
    #: Names of parameter tables indexed by entity id.
    entity_params: tuple[str, ...] = ("entity",)
    #: Names of parameter tables indexed by relation id.
    relation_params: tuple[str, ...] = ("relation",)

    # -- convenience forward variants ----------------------------------------
    def score_triples(self, triples: np.ndarray) -> np.ndarray:
        """Score an ``[B, 3]`` triple array."""
        triples = np.asarray(triples, dtype=np.int64)
        return self.score(triples[:, 0], triples[:, 1], triples[:, 2])

    def grad_triples(self, triples: np.ndarray, upstream: np.ndarray) -> GradientBag:
        """Gradient counterpart of :meth:`score_triples`."""
        triples = np.asarray(triples, dtype=np.int64)
        return self.grad(triples[:, 0], triples[:, 1], triples[:, 2], upstream)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Score ``(h_b, r_b, c)`` for every candidate tail ``c``.

        ``candidates`` has shape ``[B, C]``; the result matches it.  The
        generic implementation broadcasts and calls :meth:`score`; subclasses
        may override with a closed form.
        """
        h = np.asarray(h, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        b, c = candidates.shape
        flat_h = np.repeat(h, c)
        flat_r = np.repeat(r, c)
        return self.score(flat_h, flat_r, candidates.ravel()).reshape(b, c)

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """Score ``(c, r_b, t_b)`` for every candidate head ``c`` (shape [B, C])."""
        r = np.asarray(r, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        b, c = candidates.shape
        flat_r = np.repeat(r, c)
        flat_t = np.repeat(t, c)
        return self.score(candidates.ravel(), flat_r, flat_t).reshape(b, c)

    def score_candidates(
        self,
        anchors: np.ndarray,
        r: np.ndarray,
        candidates: np.ndarray,
        mode: str = "tail",
    ) -> np.ndarray:
        """Score a ``[B, C]`` candidate block against per-row queries.

        The fused scoring primitive behind the NSCaching cache refresh
        (Alg. 3 step 4): every row ``b`` carries one partial triple and
        ``C`` corruption candidates.

        Parameters
        ----------
        anchors:
            ``[B]`` entity ids of the *uncorrupted* side — the heads when
            ``mode="tail"``, the tails when ``mode="head"``.
        r:
            ``[B]`` relation ids.
        candidates:
            ``[B, C]`` entity ids filling the corrupted slot.  May be
            non-contiguous; it is never written to.
        mode:
            ``"tail"`` scores ``(anchors_b, r_b, candidates[b, c])``;
            ``"head"`` scores ``(candidates[b, c], r_b, anchors_b)``.
            Anything else raises ``ValueError`` before any scoring work.

        Returns
        -------
        ``float64 [B, C]`` plausibility scores matching :meth:`score`.

        This entry point owns validation and dispatch; models specialise
        the :meth:`_score_candidates_impl` kernel hook instead of
        overriding this method, so every kernel inherits the same
        contract (checked model-by-model in the conformance suite).
        """
        if mode not in CANDIDATE_MODES:
            raise ValueError(
                f"unknown corruption mode {mode!r}; expected one of "
                f"{CANDIDATE_MODES}"
            )
        anchors = np.asarray(anchors, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.ndim != 2:
            raise ValueError(
                f"candidates must be [B, C], got shape {candidates.shape}"
            )
        if anchors.shape != (len(candidates),) or r.shape != (len(candidates),):
            raise ValueError(
                f"anchors {anchors.shape} and r {r.shape} must both be "
                f"[{len(candidates)}] to match candidates {candidates.shape}"
            )
        if candidates.size == 0:  # empty batch or zero-candidate block
            return np.zeros(candidates.shape, dtype=np.float64)
        out = self._score_candidates_impl(anchors, r, candidates, mode)
        return np.asarray(out, dtype=np.float64)

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Kernel hook behind :meth:`score_candidates` (inputs validated).

        The generic fallback delegates to the model's bulk scorers, which
        at worst broadcast through :meth:`score` — correct for any model.
        Override this (not :meth:`score_candidates`) with a fused kernel
        when per-family structure pays: compute the per-row query once,
        then score the whole candidate block with one matmul/broadcast op.
        """
        if mode == "tail":
            return self.score_tails(anchors, r, candidates)
        return self.score_heads(candidates, r, anchors)

    def score_all_tails(
        self, h: np.ndarray, r: np.ndarray, chunk: int = 64
    ) -> np.ndarray:
        """Score against every entity as tail; result ``[B, n_entities]``.

        Evaluation-sized workloads go through here, so the generic version
        processes query rows in chunks to bound temporary memory.
        """
        h = np.asarray(h, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        all_entities = np.arange(self.n_entities, dtype=np.int64)
        out = np.empty((len(h), self.n_entities), dtype=np.float64)
        for start in range(0, len(h), chunk):
            stop = min(start + chunk, len(h))
            cand = np.broadcast_to(all_entities, (stop - start, self.n_entities))
            out[start:stop] = self.score_tails(h[start:stop], r[start:stop], cand)
        return out

    def score_all_heads(
        self, r: np.ndarray, t: np.ndarray, chunk: int = 64
    ) -> np.ndarray:
        """Score against every entity as head; result ``[B, n_entities]``."""
        r = np.asarray(r, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        all_entities = np.arange(self.n_entities, dtype=np.int64)
        out = np.empty((len(r), self.n_entities), dtype=np.float64)
        for start in range(0, len(r), chunk):
            stop = min(start + chunk, len(r))
            cand = np.broadcast_to(all_entities, (stop - start, self.n_entities))
            out[start:stop] = self.score_heads(cand, r[start:stop], t[start:stop])
        return out

    # -- constraints ----------------------------------------------------------
    def normalize(self, touched_entities: np.ndarray | None = None) -> None:
        """Apply the model's norm constraints (default: none).

        Called by the trainer after each optimiser step with the entity rows
        touched by the step, or ``None`` for all rows.
        """

    # -- bookkeeping ------------------------------------------------------------
    def n_parameters(self) -> int:
        """Total number of scalar parameters (Table I comparisons)."""
        return int(sum(p.size for p in self.params.values()))

    def copy(self) -> "KGEModel":
        """Deep copy (used to snapshot pretrained states)."""
        import copy as _copy

        return _copy.deepcopy(self)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of all parameter arrays."""
        return {name: array.copy() for name, array in self.params.items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for name, array in state.items():
            if name not in self.params:
                raise KeyError(f"unknown parameter {name!r}")
            if self.params[name].shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{self.params[name].shape} vs {array.shape}"
                )
            self.params[name][...] = array

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_entities={self.n_entities}, "
            f"n_relations={self.n_relations}, dim={self.dim})"
        )
