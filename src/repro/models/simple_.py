"""SimplE (Kazemi & Poole 2018) — extension beyond the paper's five models.

Each entity has a *head* role vector and a *tail* role vector; each relation
a forward and an inverse vector.  The score averages the forward and inverse
canonical-polyadic terms:

``f = 0.5 * ( <hh_h, r, ht_t> + <hh_t, r_inv, ht_h> )``

which is fully expressive while keeping O(d) per relation.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import xavier_uniform
from repro.models.params import GradientBag

__all__ = ["SimplE"]


class SimplE(KGEModel):
    """Bidirectional canonical-polyadic semantic matching model."""

    default_loss = "logistic"
    entity_params = ("entity_head", "entity_tail")
    relation_params = ("relation", "relation_inv")

    def _init_params(self, rng: np.random.Generator) -> None:
        shape_e = (self.n_entities, self.dim)
        shape_r = (self.n_relations, self.dim)
        self.params["entity_head"] = xavier_uniform(shape_e, rng)
        self.params["entity_tail"] = xavier_uniform(shape_e, rng)
        self.params["relation"] = xavier_uniform(shape_r, rng)
        self.params["relation_inv"] = xavier_uniform(shape_r, rng)

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        p = self.params
        forward = np.sum(p["entity_head"][h] * p["relation"][r] * p["entity_tail"][t], axis=-1)
        inverse = np.sum(p["entity_head"][t] * p["relation_inv"][r] * p["entity_tail"][h], axis=-1)
        return 0.5 * (forward + inverse)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        p = self.params
        fwd_q = p["entity_head"][h] * p["relation"][r]  # pairs with candidate tail-role
        inv_q = p["relation_inv"][r] * p["entity_tail"][h]  # pairs with candidate head-role
        return 0.5 * (
            np.einsum("bd,bcd->bc", fwd_q, p["entity_tail"][candidates])
            + np.einsum("bd,bcd->bc", inv_q, p["entity_head"][candidates])
        )

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        p = self.params
        fwd_q = p["relation"][r] * p["entity_tail"][t]
        inv_q = p["entity_head"][t] * p["relation_inv"][r]
        return 0.5 * (
            np.einsum("bd,bcd->bc", fwd_q, p["entity_head"][candidates])
            + np.einsum("bd,bcd->bc", inv_q, p["entity_tail"][candidates])
        )

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: forward and inverse queries built once per
        row, block scored with two batched matmuls over the role tables."""
        p = self.params
        if mode == "tail":
            fwd_q = p["entity_head"][anchors] * p["relation"][r]
            inv_q = p["relation_inv"][r] * p["entity_tail"][anchors]
            fwd_table, inv_table = p["entity_tail"], p["entity_head"]
        else:
            fwd_q = p["relation"][r] * p["entity_tail"][anchors]
            inv_q = p["entity_head"][anchors] * p["relation_inv"][r]
            fwd_table, inv_table = p["entity_head"], p["entity_tail"]
        out = np.matmul(fwd_table[candidates], fwd_q[:, :, None])
        out += np.matmul(inv_table[candidates], inv_q[:, :, None])
        out *= 0.5
        return out[:, :, 0]

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        p = self.params
        hh, ht = p["entity_head"][h], p["entity_tail"][h]
        th, tt = p["entity_head"][t], p["entity_tail"][t]
        rr, ri = p["relation"][r], p["relation_inv"][r]
        up = 0.5 * np.asarray(upstream, dtype=np.float64)[:, None]
        bag = GradientBag()
        # forward term <hh, rr, tt-of-t>
        bag.add("entity_head", h, up * rr * tt)
        bag.add("relation", r, up * hh * tt)
        bag.add("entity_tail", t, up * hh * rr)
        # inverse term <hh-of-t, ri, tt-of-h>
        bag.add("entity_head", t, up * ri * ht)
        bag.add("relation_inv", r, up * th * ht)
        bag.add("entity_tail", h, up * th * ri)
        return bag
