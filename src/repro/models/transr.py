"""TransR (Lin et al. 2015) — extension beyond the paper's five models.

Entities live in entity space, relations in their own space, connected by a
full per-relation projection matrix ``M_r`` (``O(d_r * d)`` parameters per
relation):

``f = -|| M_r h + r - M_r t ||_p``.

Included because the paper cites it as a standard translational baseline;
it also stresses the optimiser with matrix-shaped parameter rows.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import normalize_rows, xavier_uniform
from repro.models.norms import check_p, norm_backward, norm_forward
from repro.models.params import GradientBag

__all__ = ["TransR"]


class TransR(KGEModel):
    """Projection-matrix translational model."""

    default_loss = "margin"
    entity_params = ("entity",)
    relation_params = ("relation", "projection")

    def __init__(
        self,
        n_entities: int,
        n_relations: int,
        dim: int,
        rng: np.random.Generator | int | None = None,
        *,
        relation_dim: int | None = None,
        p: int = 1,
    ) -> None:
        self.p = check_p(p)
        self.relation_dim = int(relation_dim or dim)
        super().__init__(n_entities, n_relations, dim, rng)

    def _init_params(self, rng: np.random.Generator) -> None:
        d, k = self.dim, self.relation_dim
        self.params["entity"] = xavier_uniform((self.n_entities, d), rng)
        self.params["relation"] = xavier_uniform((self.n_relations, k), rng)
        # Initialise every projection near the identity, as in the original.
        eye = np.zeros((k, d))
        np.fill_diagonal(eye, 1.0)
        projection = np.tile(eye, (self.n_relations, 1, 1))
        projection += 0.01 * rng.normal(size=projection.shape)
        self.params["projection"] = projection
        self.normalize()

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        ent = self.params["entity"]
        m = self.params["projection"][r]  # [B, k, d]
        diff = ent[h] - ent[t]  # [B, d]
        e = np.einsum("bkd,bd->bk", m, diff) + self.params["relation"][r]
        return -norm_forward(e, self.p)

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        ent = self.params["entity"]
        m = self.params["projection"][r]
        query = np.einsum("bkd,bd->bk", m, ent[h]) + self.params["relation"][r]
        tails = np.einsum("bkd,bcd->bck", m, ent[candidates])
        return -norm_forward(query[:, None, :] - tails, self.p)

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        ent = self.params["entity"]
        m = self.params["projection"][r]
        base = self.params["relation"][r] - np.einsum("bkd,bd->bk", m, ent[t])
        heads = np.einsum("bkd,bcd->bck", m, ent[candidates])
        return -norm_forward(heads + base[:, None, :], self.p)

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: project the whole candidate block with one
        batched matmul (BLAS) instead of an einsum, then fold the per-row
        query into it in place."""
        ent = self.params["entity"]
        m = self.params["projection"][r]  # [B, k, d]
        # [B, C, d] @ [B, d, k] -> [B, C, k]: batched GEMM over the block.
        projected = np.matmul(ent[candidates], m.transpose(0, 2, 1))
        anchor = np.einsum("bkd,bd->bk", m, ent[anchors])
        if mode == "tail":
            query = anchor + self.params["relation"][r]
            np.subtract(query[:, None, :], projected, out=projected)
        else:
            base = self.params["relation"][r] - anchor
            projected += base[:, None, :]
        return -norm_forward(projected, self.p)

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        ent = self.params["entity"]
        m = self.params["projection"][r]
        diff = ent[h] - ent[t]
        e = np.einsum("bkd,bd->bk", m, diff) + self.params["relation"][r]
        up = np.asarray(upstream, dtype=np.float64)[:, None]
        s = -norm_backward(e, self.p) * up  # [B, k]
        d_ent = np.einsum("bkd,bk->bd", m, s)  # M^T s
        d_m = np.einsum("bk,bd->bkd", s, diff)  # s (h - t)^T
        bag = GradientBag()
        bag.add("entity", h, d_ent)
        bag.add("entity", t, -d_ent)
        bag.add("relation", r, s)
        bag.add("projection", r, d_m)
        return bag

    # -- constraints -----------------------------------------------------------
    def normalize(self, touched_entities: np.ndarray | None = None) -> None:
        """Clamp entity rows to the unit l2 ball."""
        ent = self.params["entity"]
        if touched_entities is None:
            ent[...] = normalize_rows(ent)
        else:
            rows = np.unique(np.asarray(touched_entities, dtype=np.int64))
            ent[rows] = normalize_rows(ent[rows])
