"""RESCAL (Nickel et al. 2011) — extension beyond the paper's five models.

The original bilinear model: each relation is a full ``d x d`` interaction
matrix, ``f = h^T M_r t``.  Expressive but ``O(d^2)`` parameters per
relation — exactly the cost DistMult/ComplEx were designed to avoid, which
makes it a useful ablation point.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel
from repro.models.initializers import xavier_uniform
from repro.models.params import GradientBag

__all__ = ["RESCAL"]


class RESCAL(KGEModel):
    """Full bilinear semantic matching model."""

    default_loss = "logistic"
    entity_params = ("entity",)
    relation_params = ("relation",)

    def _init_params(self, rng: np.random.Generator) -> None:
        self.params["entity"] = xavier_uniform((self.n_entities, self.dim), rng)
        # Relation matrices initialised near scaled identity to keep early
        # scores in a sane range.
        rel = 0.1 * rng.normal(size=(self.n_relations, self.dim, self.dim))
        idx = np.arange(self.dim)
        rel[:, idx, idx] += 0.5
        self.params["relation"] = rel

    # -- forward -------------------------------------------------------------
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        ent = self.params["entity"]
        m = self.params["relation"][r]
        return np.einsum("bi,bij,bj->b", ent[h], m, ent[t])

    def score_tails(
        self, h: np.ndarray, r: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        ent = self.params["entity"]
        m = self.params["relation"][r]
        query = np.einsum("bi,bij->bj", ent[h], m)  # h^T M
        return np.einsum("bj,bcj->bc", query, ent[candidates])

    def score_heads(
        self, candidates: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        ent = self.params["entity"]
        m = self.params["relation"][r]
        query = np.einsum("bij,bj->bi", m, ent[t])  # M t
        return np.einsum("bi,bci->bc", query, ent[candidates])

    def _score_candidates_impl(
        self, anchors: np.ndarray, r: np.ndarray, candidates: np.ndarray, mode: str
    ) -> np.ndarray:
        """Fused candidate kernel: the relation matrix is contracted with the
        anchor once per row (``h^T M`` or ``M t``), then the block is scored
        with one batched matmul."""
        ent = self.params["entity"]
        m = self.params["relation"][r]
        if mode == "tail":
            query = np.einsum("bi,bij->bj", ent[anchors], m)  # h^T M
        else:
            query = np.einsum("bij,bj->bi", m, ent[anchors])  # M t
        return np.matmul(ent[candidates], query[:, :, None])[:, :, 0]

    def score_all_tails(self, h: np.ndarray, r: np.ndarray, chunk: int = 64) -> np.ndarray:
        ent = self.params["entity"]
        h = np.asarray(h, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        query = np.einsum("bi,bij->bj", ent[h], self.params["relation"][r])
        return query @ ent.T

    def score_all_heads(self, r: np.ndarray, t: np.ndarray, chunk: int = 64) -> np.ndarray:
        ent = self.params["entity"]
        r = np.asarray(r, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        query = np.einsum("bij,bj->bi", self.params["relation"][r], ent[t])
        return query @ ent.T

    # -- backward ------------------------------------------------------------
    def grad(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, upstream: np.ndarray
    ) -> GradientBag:
        ent = self.params["entity"]
        m = self.params["relation"][r]
        eh, et = ent[h], ent[t]
        up = np.asarray(upstream, dtype=np.float64)
        bag = GradientBag()
        bag.add("entity", h, up[:, None] * np.einsum("bij,bj->bi", m, et))
        bag.add("entity", t, up[:, None] * np.einsum("bi,bij->bj", eh, m))
        bag.add("relation", r, up[:, None, None] * np.einsum("bi,bj->bij", eh, et))
        return bag
