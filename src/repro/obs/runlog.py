"""JSONL run telemetry: one record per line, one file per training run.

The run log is the durable sibling of the live
:class:`~repro.obs.registry.MetricsRegistry`: where the registry answers
"what is happening now" (the serve layer's ``/metrics``), the run log
answers "what happened over this run" — the raw material of every
convergence/efficiency figure and of the auto-tuning loops the ROADMAP
plans.

Schema (``version`` = :data:`RUN_LOG_VERSION`):

* ``run_meta`` — one per run, first line: model/dataset/sampler names and
  the training configuration;
* ``epoch`` — one per epoch: loss, NZL, gradient norm, wall seconds,
  samples/sec, the partitioned per-phase seconds, and a ``cache`` block
  with churn / survivor fraction / refresh counters (plus
  ``refresh_shards`` per-shard task timings under the parallel refresh);
* ``run_end`` — one per run, last line: epoch count, total train seconds
  and the final registry snapshot;
* ``span`` (since version 2) — one finished trace span
  (:mod:`repro.obs.trace`): name, category, monotonic start, duration,
  pid, tid and optional args.  Trace files (``train --trace-out``) are
  JSONL files of span records and share this validator.

Version 2 only *adds* the span record type; every version-1 record is
still valid, so :func:`validate_record` accepts both versions.

Every record is validated by :func:`validate_record`;
:func:`read_run_log` applies it to a whole file, which is what
``repro metrics`` and the CI obs-smoke job run.  A crashed or in-flight
writer can leave a truncated file (half-written last line, no
``run_end``); :func:`read_run_log_lenient` reads the valid prefix and
reports what it skipped instead of raising, which is what the CLI uses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable

from repro.obs import clock

__all__ = [
    "RUN_LOG_VERSION",
    "EPOCH_REQUIRED_FIELDS",
    "RunLogError",
    "RunLogWriter",
    "read_run_log",
    "read_run_log_lenient",
    "validate_record",
]

#: Bump when a record's required shape changes.
RUN_LOG_VERSION = 2

#: Schema versions :func:`validate_record` accepts (v2 is additive).
SUPPORTED_VERSIONS = (1, 2)

#: Required numeric fields of an ``epoch`` record (beside type/epoch).
EPOCH_REQUIRED_FIELDS: tuple[str, ...] = (
    "loss", "nzl", "grad_norm", "epoch_seconds", "samples_per_sec",
)

_RECORD_TYPES = ("run_meta", "epoch", "run_end", "span")


class RunLogError(ValueError):
    """A structurally invalid run-log record or file."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RunLogError(message)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_record(record: object) -> dict[str, Any]:
    """Check one parsed record against the schema; returns it on success.

    Raises :class:`RunLogError` (a ``ValueError``) naming the violation —
    the CLI maps that to exit code 2.
    """
    _require(isinstance(record, dict), f"record must be an object, got {type(record).__name__}")
    assert isinstance(record, dict)
    kind = record.get("type")
    _require(
        kind in _RECORD_TYPES,
        f"record type must be one of {_RECORD_TYPES}, got {kind!r}",
    )
    version = record.get("version")
    _require(
        version in SUPPORTED_VERSIONS,
        f"record version must be one of {SUPPORTED_VERSIONS}, got {version!r}",
    )
    _require(
        not (kind == "span" and version < 2),
        f"span records need version >= 2, got {version!r}",
    )
    if kind == "run_meta":
        for field in ("model", "dataset", "sampler"):
            _require(
                isinstance(record.get(field), str),
                f"run_meta.{field} must be a string, got {record.get(field)!r}",
            )
        _require(
            isinstance(record.get("config"), dict),
            "run_meta.config must be an object",
        )
    elif kind == "epoch":
        epoch = record.get("epoch")
        _require(
            isinstance(epoch, int) and not isinstance(epoch, bool) and epoch >= 0,
            f"epoch must be a non-negative integer, got {epoch!r}",
        )
        for field in EPOCH_REQUIRED_FIELDS:
            _require(
                _is_number(record.get(field)),
                f"epoch.{field} must be a number, got {record.get(field)!r}",
            )
        for field in ("phase_seconds", "cache", "refresh_shards", "extra"):
            if field in record:
                _require(
                    isinstance(record[field], dict),
                    f"epoch.{field} must be an object when present",
                )
        if "cache" in record:
            for field in ("churn", "refreshed_rows"):
                _require(
                    _is_number(record["cache"].get(field)),
                    f"epoch.cache.{field} must be a number",
                )
    elif kind == "span":
        for field in ("name", "cat"):
            _require(
                isinstance(record.get(field), str),
                f"span.{field} must be a string, got {record.get(field)!r}",
            )
        for field in ("ts", "dur"):
            _require(
                _is_number(record.get(field)) and record[field] >= 0,
                f"span.{field} must be a non-negative number, "
                f"got {record.get(field)!r}",
            )
        for field in ("pid", "tid"):
            value = record.get(field)
            _require(
                isinstance(value, int) and not isinstance(value, bool),
                f"span.{field} must be an integer, got {value!r}",
            )
        if "args" in record:
            _require(
                isinstance(record["args"], dict),
                "span.args must be an object when present",
            )
    else:  # run_end
        _require(
            _is_number(record.get("epochs")),
            "run_end.epochs must be a number",
        )
        _require(
            _is_number(record.get("train_seconds")),
            "run_end.train_seconds must be a number",
        )
    return record


class RunLogWriter:
    """Append-only JSONL writer, flushed per record so tails read live.

    The file is truncated on the first write (a writer is one run);
    :meth:`close` is idempotent and a closed writer silently drops
    further records — so trainer teardown paths need no ordering care.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: IO[str] | None = None
        self._opened = False
        self._closed = False
        self.records_written = 0

    def write(self, record: dict[str, Any]) -> None:
        """Validate and append one record."""
        if self._closed:
            return
        validate_record(record)
        if not self._opened:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
            self._opened = True
        assert self._file is not None
        json.dump(record, self._file, separators=(",", ":"), sort_keys=True)
        self._file.write("\n")
        self._file.flush()
        self.records_written += 1

    def stamp(self, record: dict[str, Any]) -> dict[str, Any]:
        """Add the schema version and a unix timestamp to a record."""
        record.setdefault("version", RUN_LOG_VERSION)
        record.setdefault("unix_time", clock.wall_time())
        return record

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        self._closed = True
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "RunLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"RunLogWriter({str(self.path)!r}, records={self.records_written}, {state})"


def read_run_log(path: str | Path) -> list[dict[str, Any]]:
    """Parse and validate a whole run log; raises :class:`RunLogError`.

    Blank lines are tolerated (a crashed writer may leave one); anything
    else that fails to parse or validate fails the file with its line
    number.
    """
    records: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RunLogError(f"{path}:{lineno}: invalid JSON: {exc}") from None
            try:
                records.append(validate_record(record))
            except RunLogError as exc:
                raise RunLogError(f"{path}:{lineno}: {exc}") from None
    return records


def read_run_log_lenient(
    path: str | Path,
) -> tuple[list[dict[str, Any]], list[str]]:
    """The valid prefix of a run log, plus warnings about what was cut.

    A crashed run leaves a truncated log: a half-written last line (the
    writer died mid-record) and/or no ``run_end``.  The strict
    :func:`read_run_log` raises on the former, which is right for CI but
    wrong for ``repro metrics`` on a log you are trying to *diagnose* —
    this reader stops at the first unparsable or invalid line and returns
    everything before it, with one warning per anomaly (truncation point,
    missing ``run_end``).  An empty warning list means the strict reader
    would have accepted the file whole.
    """
    records: list[dict[str, Any]] = []
    warnings: list[str] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(validate_record(json.loads(line)))
            except json.JSONDecodeError as exc:
                warnings.append(
                    f"{path}:{lineno}: invalid JSON ({exc}); summarising the "
                    f"{len(records)}-record prefix"
                )
                break
            except RunLogError as exc:
                warnings.append(
                    f"{path}:{lineno}: {exc}; summarising the "
                    f"{len(records)}-record prefix"
                )
                break
    if records and not any(r.get("type") == "run_end" for r in records):
        warnings.append(
            f"{path}: no run_end record (crashed or in-flight run); "
            "totals cover the logged epochs only"
        )
    return records, warnings


def epoch_records(records: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """The ``epoch`` records of a parsed run log, in order."""
    return [r for r in records if r.get("type") == "epoch"]
