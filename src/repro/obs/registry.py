"""A near-zero-overhead metrics registry: counters, gauges, histograms.

The observability spine of the repository.  Training, the cache refresh,
the worker pool and the serving layer all report through one
:class:`MetricsRegistry`; the registry renders itself as JSON
(:meth:`MetricsRegistry.as_json`) and as Prometheus text exposition
format (:meth:`MetricsRegistry.to_prometheus`), and exposes a flat
:meth:`MetricsRegistry.snapshot` so per-epoch deltas are one dict
subtraction.

Design constraints, in order:

1. **Disabled means absent.**  Nothing in the hot loops holds a registry
   by default — instrumented call sites are ``None``-guarded, so a run
   without metrics executes the exact seed code path (bit-identical
   trajectories, enforced by the parity tests and bench X8).
2. **Enabled means cheap.**  Call sites cache instrument handles once
   (:meth:`counter` et al. are get-or-create and idempotent), so a
   hot-loop observation is one attribute add — no string formatting, no
   dict lookup.  Histogram buckets are a fixed numpy array resolved with
   ``searchsorted``; bench X8 pins the instrumented ``update()`` loop at
   < 3% overhead.
3. **Single-writer counters.**  Counters and gauges are plain
   attribute writes (the training loop is single-threaded); only
   :class:`Histogram` takes a lock, because the threading HTTP server
   observes latencies concurrently.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator, Mapping, NamedTuple

import numpy as np

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
]

#: Latency-shaped default histogram bounds (seconds); the terminal +Inf
#: bucket is implicit.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Label tuples as stored: sorted ``(key, value)`` pairs.
LabelPairs = tuple[tuple[str, str], ...]


class Sample(NamedTuple):
    """One exported time-series point (histograms flatten to several)."""

    name: str
    kind: str  # "counter" | "gauge" | histogram-derived series
    labels: LabelPairs
    value: float


def _label_pairs(labels: Mapping[str, object] | None) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: LabelPairs) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing scalar (resettable only via registry)."""

    kind = "counter"

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0 to stay a counter)."""
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the cumulative total (for mirroring external counters).

        The serving layer keeps its own int counters under its own lock
        and mirrors them into the registry at export time; this is the
        mirroring hook, not a hot-loop API.
        """
        self.value = float(value)

    def samples(self) -> Iterator[Sample]:
        yield Sample(self.name, self.kind, self.labels, float(self.value))


class Gauge(Counter):
    """A scalar that can go up and down."""

    kind = "gauge"

    __slots__ = ()

    def set(self, value: float) -> None:
        self.value = float(value)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``bounds`` are the finite upper bucket edges; an implicit ``+Inf``
    bucket catches the tail.  Observation is ``searchsorted`` into the
    numpy bounds plus one locked add — safe under the threading HTTP
    server.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "labels", "bounds", "counts", "sum", "count",
                 "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelPairs = (),
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted and non-empty, got {bounds}")
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = np.asarray(bounds, dtype=np.float64)
        self.counts = np.zeros(len(bounds) + 1, dtype=np.int64)  # +Inf last
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        bucket = int(np.searchsorted(self.bounds, value, side="left"))
        with self._lock:
            self.counts[bucket] += 1
            self.sum += value
            self.count += 1

    def observe_many(self, values: np.ndarray) -> None:
        """Record a batch of observations in one vectorised pass."""
        values = np.asarray(values, dtype=np.float64)
        buckets = np.searchsorted(self.bounds, values, side="left")
        with self._lock:
            self.counts += np.bincount(buckets, minlength=len(self.counts))
            self.sum += float(values.sum())
            self.count += len(values)

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            counts = self.counts.copy()
            total, n = self.sum, self.count
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts[:-1]):
            cumulative += int(bucket_count)
            labels = self.labels + (("le", _format_value(float(bound))),)
            yield Sample(f"{self.name}_bucket", self.kind, labels, float(cumulative))
        labels = self.labels + (("le", "+Inf"),)
        yield Sample(f"{self.name}_bucket", self.kind, labels, float(n))
        yield Sample(f"{self.name}_sum", self.kind, self.labels, float(total))
        yield Sample(f"{self.name}_count", self.kind, self.labels, float(n))


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named instruments plus the exporters that make them observable.

    Instrument accessors are get-or-create: calling :meth:`counter` twice
    with the same ``(name, labels)`` returns the same object, so call
    sites can resolve handles eagerly and hold them across the hot loop.
    One name maps to one instrument type — re-registering a name as a
    different type raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelPairs], Instrument] = {}
        self._kinds: dict[str, type] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------------
    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Mapping[str, object] | None,
        **kwargs: object,
    ) -> Instrument:
        pairs = _label_pairs(labels)
        key = (name, pairs)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested {cls.__name__}"
                    )
                return existing
            registered = self._kinds.get(name)
            if registered is not None and registered is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{registered.__name__}, requested {cls.__name__}"
                )
            instrument = cls(name, help, pairs, **kwargs)
            self._instruments[key] = instrument
            self._kinds[name] = cls
            if help:
                self._help[name] = help
            return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, object] | None = None,
    ) -> Counter:
        """Get or create a counter (same name+labels → same object)."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, object] | None = None,
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, object] | None = None,
        *,
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._get_or_create(Histogram, name, help, labels, bounds=bounds)

    # -- convenience one-shots (not for hot loops) ----------------------------
    def inc(
        self, name: str, amount: float = 1.0,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        """Get-or-create + increment in one call (setup/teardown paths)."""
        self.counter(name, labels=labels).inc(amount)

    def set(
        self, name: str, value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        """Get-or-create + set a gauge in one call."""
        self.gauge(name, labels=labels).set(value)

    def observe(
        self, name: str, value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        """Get-or-create + observe into a histogram in one call."""
        self.histogram(name, labels=labels).observe(value)

    def value(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> float:
        """Current value of a counter/gauge (0.0 if never touched)."""
        instrument = self._instruments.get((name, _label_pairs(labels)))
        if instrument is None or isinstance(instrument, Histogram):
            return 0.0
        return float(instrument.value)

    # -- export ---------------------------------------------------------------
    def _ordered(self) -> list[Instrument]:
        with self._lock:
            return sorted(
                self._instruments.values(), key=lambda i: (i.name, i.labels)
            )

    def samples(self) -> list[Sample]:
        """Every exported series point, sorted by name then labels."""
        out: list[Sample] = []
        for instrument in self._ordered():
            out.extend(instrument.samples())
        return out

    def snapshot(self) -> dict[tuple[str, LabelPairs], float]:
        """Flat scalar view for delta computation.

        Counters and gauges appear under their name; histograms
        contribute their ``_sum`` and ``_count`` series (buckets are
        omitted — deltas of cumulative buckets are rarely what a caller
        wants and double the snapshot size).
        """
        out: dict[tuple[str, LabelPairs], float] = {}
        for sample in self.samples():
            if sample.name.endswith("_bucket") and sample.kind == "histogram":
                continue
            out[(sample.name, sample.labels)] = sample.value
        return out

    def as_json(self) -> dict[str, object]:
        """A JSON-safe rendering of every instrument."""
        metrics: list[dict[str, object]] = []
        for instrument in self._ordered():
            entry: dict[str, object] = {
                "name": instrument.name,
                "type": instrument.kind,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Histogram):
                entry["count"] = int(instrument.count)
                entry["sum"] = float(instrument.sum)
                entry["buckets"] = {
                    _format_value(float(bound)): int(count)
                    for bound, count in zip(instrument.bounds, instrument.counts)
                }
                entry["buckets"]["+Inf"] = int(instrument.counts[-1])
            else:
                entry["value"] = float(instrument.value)
            metrics.append(entry)
        return {"metrics": metrics}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for instrument in self._ordered():
            if instrument.name not in seen_headers:
                seen_headers.add(instrument.name)
                help_text = self._help.get(instrument.name, "")
                if help_text:
                    escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
                    lines.append(f"# HELP {instrument.name} {escaped}")
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            for sample in instrument.samples():
                lines.append(
                    f"{sample.name}{_render_labels(sample.labels)} "
                    f"{_format_value(sample.value)}"
                )
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"
