"""Span tracing: a cross-process timeline for the refresh pipeline.

The counters of :mod:`repro.obs.registry` say *how much*; spans say
*when*.  A :class:`Span` is one named interval —
``(name, category, start, duration, pid, tid, args)`` — and a
:class:`Tracer` is a preallocated in-process ring buffer of finished
spans.  The design constraints mirror the registry's:

* **Disabled means absent.**  Hot paths hold ``tracer = None`` unless a
  caller opted in; every instrumentation site is a ``None`` check, so an
  untraced run executes the exact seed code path (asserted bit-identical
  by ``tests/train/test_trainer_trace.py``).
* **Enabled means cheap.**  ``start_span`` allocates one slotted object
  and reads one clock; ``end`` reads the clock again and appends under a
  lock (the serve layer traces from handler threads).  Bench X11 pins
  the whole thing ≤ 3% on the update() hot loop.
* **One time axis.**  Timestamps come from
  :func:`repro.obs.clock.monotonic`, which is system-wide on Linux —
  spans recorded inside ``fork``-ed :class:`~repro.parallel.pool`
  workers land on the same axis as the parent's, so the merged timeline
  (worker spans ship back piggybacked on ``ShardResult`` and are folded
  in via :meth:`Tracer.ingest`) shows refresh/step overlap directly.

Finished spans serialise as run-log ``span`` records (JSONL, one per
line — :func:`write_trace` / :func:`read_trace`) and export as Chrome
trace-event JSON (:func:`chrome_trace`), loadable in Perfetto or
``chrome://tracing``.  :func:`category_summary` and
:func:`overlap_report` are the analysis behind ``repro trace summary``:
per-category totals with self-time (child spans carved out of their
parents) and the fraction of worker refresh time hidden behind the
trainer's gradient/optimizer phases.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs import clock
from repro.obs.runlog import RUN_LOG_VERSION, RunLogError, read_run_log, validate_record

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace",
    "validate_chrome_trace",
    "write_trace",
    "read_trace",
    "category_summary",
    "overlap_report",
]

#: Default ring capacity: ~2 spans per update() at paper batch sizes keeps
#: hours of training; the serve layer recycles long before this fills.
DEFAULT_CAPACITY = 65536

#: Sentinel duration of a span that has not ended yet.
_OPEN = -1.0


class Span:
    """One named interval; finishes into its tracer's ring on :meth:`end`.

    Usable both explicitly (``span = tracer.start_span(...); ...;
    span.end()`` — the shape the trainer's phase plumbing needs) and as a
    context manager (``with tracer.start_span(...):``).  ``end`` is
    idempotent: the first call stamps the duration and records the span,
    later calls return the same duration.
    """

    __slots__ = ("name", "category", "start", "duration", "pid", "tid", "args", "_tracer")

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        pid: int,
        tid: int,
        args: Mapping[str, Any] | None,
        tracer: "Tracer | None",
    ) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.duration = _OPEN
        self.pid = pid
        self.tid = tid
        self.args = args
        self._tracer = tracer

    def end(self) -> float:
        """Stamp the duration, record the span, return the duration."""
        if self.duration == _OPEN:
            self.duration = clock.monotonic() - self.start
            tracer, self._tracer = self._tracer, None
            if tracer is not None:
                tracer._record(self)
        return self.duration

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end()

    def as_record(self) -> dict[str, Any]:
        """The span as a schema-v2 run-log ``span`` record."""
        record: dict[str, Any] = {
            "type": "span",
            "version": RUN_LOG_VERSION,
            "name": self.name,
            "cat": self.category,
            "ts": self.start,
            "dur": max(0.0, self.duration),
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.args:
            record["args"] = dict(self.args)
        return record

    def __repr__(self) -> str:
        state = "open" if self.duration == _OPEN else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, cat={self.category!r}, {state})"


class Tracer:
    """A preallocated ring buffer of finished spans.

    ``capacity`` bounds memory up front; once full, the oldest span is
    overwritten and :attr:`dropped` counts the loss (a truncated-head
    timeline is still a valid timeline — the alternative, unbounded
    growth, is not an option inside forked workers).  Thread-safe on the
    recording side: the serve handler traces from worker threads.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: list[Span | None] = [None] * self.capacity
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()
        #: Spans overwritten because the ring was full.
        self.dropped = 0

    def start_span(
        self,
        name: str,
        category: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> Span:
        """An open span starting now; finish it with ``end()``/``with``."""
        return Span(
            name,
            category,
            clock.monotonic(),
            os.getpid(),
            threading.get_native_id(),
            args,
            self,
        )

    def _record(self, span: Span) -> None:
        with self._lock:
            if self._count == self.capacity:
                self.dropped += 1
            else:
                self._count += 1
            self._ring[self._next] = span
            self._next = (self._next + 1) % self.capacity

    def ingest(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Fold already-finished span records into the ring.

        The cross-process merge: refresh workers drain their local rings
        into ``ShardResult.spans`` and the parent's sampler calls this.
        Returns the number of spans folded in.
        """
        n = 0
        for record in records:
            span = Span(
                str(record["name"]),
                str(record.get("cat", "")),
                float(record["ts"]),
                int(record.get("pid", 0)),
                int(record.get("tid", 0)),
                record.get("args"),
                None,
            )
            span.duration = float(record["dur"])
            self._record(span)
            n += 1
        return n

    def __len__(self) -> int:
        return self._count

    def records(self) -> list[dict[str, Any]]:
        """Finished spans as record dicts, oldest first (ring preserved)."""
        with self._lock:
            if self._count < self.capacity:
                spans = self._ring[: self._count]
            else:
                spans = self._ring[self._next :] + self._ring[: self._next]
        return [span.as_record() for span in spans if span is not None]

    def drain(self) -> list[dict[str, Any]]:
        """:meth:`records`, then reset the ring (the worker ship path)."""
        with self._lock:
            if self._count < self.capacity:
                spans = self._ring[: self._count]
            else:
                spans = self._ring[self._next :] + self._ring[: self._next]
            self._ring = [None] * self.capacity
            self._next = 0
            self._count = 0
        return [span.as_record() for span in spans if span is not None]

    def __repr__(self) -> str:
        return (
            f"Tracer(capacity={self.capacity}, spans={self._count}, "
            f"dropped={self.dropped})"
        )


# -- trace files (JSONL span records) ------------------------------------------
def write_trace(path: str | Path, records: Iterable[Mapping[str, Any]]) -> Path:
    """Write span records as a JSONL trace file, ordered by start time.

    Every record is validated against the run-log schema before anything
    is written, so a trace file is always fully ``repro trace``-readable.
    """
    ordered = sorted(
        (validate_record(dict(record)) for record in records),
        key=lambda r: (r["ts"], -r["dur"]),
    )
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as handle:
        for record in ordered:
            json.dump(record, handle, separators=(",", ":"), sort_keys=True)
            handle.write("\n")
    return out


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Read a trace file's span records (raises on non-span records).

    A trace file is a run log holding only ``span`` records; reading one
    through :func:`~repro.obs.runlog.read_run_log` keeps the validation
    in one place.
    """
    records = read_run_log(path)
    wrong = [r["type"] for r in records if r.get("type") != "span"]
    if wrong:
        raise RunLogError(
            f"{path}: expected only span records, found {sorted(set(wrong))} "
            "(a run log is not a trace file — pass train --trace-out output)"
        )
    return records


# -- Chrome trace-event export -------------------------------------------------
def chrome_trace(records: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Span records as a Chrome trace-event JSON object.

    Complete ("ph": "X") events with microsecond timestamps rebased to
    the earliest span, loadable in Perfetto / ``chrome://tracing``.
    Process/thread ids pass through, so worker shard tasks appear on
    their own rows under their own pid — overlap with the trainer's
    gradient/optimizer spans is directly visible.
    """
    origin = min((float(r["ts"]) for r in records), default=0.0)
    events = []
    for record in sorted(records, key=lambda r: (r["ts"], -r["dur"])):
        event: dict[str, Any] = {
            "name": record["name"],
            "cat": record.get("cat") or "default",
            "ph": "X",
            "ts": (float(record["ts"]) - origin) * 1e6,
            "dur": float(record["dur"]) * 1e6,
            "pid": int(record.get("pid", 0)),
            "tid": int(record.get("tid", 0)),
        }
        args = record.get("args")
        if args:
            event["args"] = dict(args)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj: object) -> None:
    """Check an object against the trace-event schema; raises ValueError.

    Covers what Perfetto actually requires of complete events: the
    ``traceEvents`` array, and per event — name/cat strings, phase
    ``"X"``, non-negative numeric ``ts``/``dur``, integer ``pid``/``tid``.
    The CI obs-smoke job runs this over the exported file.
    """
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        raise ValueError("chrome trace must be {'traceEvents': [...], ...}")
    for i, event in enumerate(obj["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} must be an object")
        for field in ("name", "cat"):
            if not isinstance(event.get(field), str):
                raise ValueError(f"{where}.{field} must be a string")
        if event.get("ph") != "X":
            raise ValueError(f"{where}.ph must be 'X' (complete event)")
        for field in ("ts", "dur"):
            value = event.get(field)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{where}.{field} must be a number")
            if value < 0:
                raise ValueError(f"{where}.{field} must be >= 0, got {value}")
        for field in ("pid", "tid"):
            if isinstance(event.get(field), bool) or not isinstance(
                event.get(field), int
            ):
                raise ValueError(f"{where}.{field} must be an integer")


# -- summary analysis ----------------------------------------------------------
def category_summary(
    records: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Per-category span counts, total seconds and *self* seconds.

    Self time carves each span's direct children (same pid/tid, nested
    inside it) out of its own duration — so ``cache_update`` does not
    double-count the ``refresh_side`` spans running inside it.  Rows are
    sorted by self seconds, descending.
    """
    self_seconds = _self_seconds(records)
    totals: dict[str, dict[str, float]] = {}
    for record, self_dur in zip(records, self_seconds):
        cat = str(record.get("cat") or "default")
        row = totals.setdefault(cat, {"spans": 0, "seconds": 0.0, "self_seconds": 0.0})
        row["spans"] += 1
        row["seconds"] += float(record["dur"])
        row["self_seconds"] += self_dur
    return [
        {"category": cat, **row}
        for cat, row in sorted(
            totals.items(), key=lambda kv: -kv[1]["self_seconds"]
        )
    ]


def _self_seconds(records: Sequence[Mapping[str, Any]]) -> list[float]:
    """Each record's duration minus its direct children's, input order."""
    self_dur = [float(r["dur"]) for r in records]
    by_thread: dict[tuple[int, int], list[int]] = {}
    for i, record in enumerate(records):
        key = (int(record.get("pid", 0)), int(record.get("tid", 0)))
        by_thread.setdefault(key, []).append(i)
    for indices in by_thread.values():
        # Sort by start, longest first on ties, and keep a stack of the
        # currently-open ancestry: each span's duration is charged to its
        # *direct* parent only, so grandchildren never double-subtract.
        indices.sort(key=lambda i: (records[i]["ts"], -records[i]["dur"]))
        stack: list[int] = []
        for i in indices:
            start = float(records[i]["ts"])
            end = start + float(records[i]["dur"])
            while stack and _end_of(records[stack[-1]]) <= start:
                stack.pop()
            if stack and end <= _end_of(records[stack[-1]]) + 1e-9:
                self_dur[stack[-1]] -= float(records[i]["dur"])
            stack.append(i)
    return [max(0.0, d) for d in self_dur]


def _end_of(record: Mapping[str, Any]) -> float:
    return float(record["ts"]) + float(record["dur"])


def _merge_intervals(
    intervals: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def overlap_report(
    records: Sequence[Mapping[str, Any]],
    *,
    worker_category: str = "refresh_worker",
    worker_name: str = "shard_task",
    behind: tuple[str, ...] = ("gradients", "optimizer"),
) -> dict[str, float] | None:
    """How much worker refresh time ran *behind* the trainer's step.

    Intersects every worker ``shard_task`` span with the union of the
    trainer's ``gradients``/``optimizer`` intervals: time inside the
    union is refresh latency the overlap pipeline hid; time outside is
    latency the trainer (potentially) waited on.  Returns ``None`` when
    either side of the comparison is absent (no workers traced, or no
    step spans), else::

        {"worker_seconds", "step_seconds", "hidden_seconds", "hidden_pct"}

    Deterministic interval arithmetic — unit-tested on synthetic spans,
    demonstrated on real ``--refresh-overlap`` runs by the CI smoke job.
    """
    workers = [
        (float(r["ts"]), _end_of(r))
        for r in records
        if r.get("cat") == worker_category and r.get("name") == worker_name
    ]
    step = _merge_intervals(
        [
            (float(r["ts"]), _end_of(r))
            for r in records
            if r.get("cat") == "train" and r.get("name") in behind
        ]
    )
    if not workers or not step:
        return None
    worker_seconds = sum(end - start for start, end in workers)
    hidden = 0.0
    for w_start, w_end in workers:
        for s_start, s_end in step:
            lo, hi = max(w_start, s_start), min(w_end, s_end)
            if hi > lo:
                hidden += hi - lo
    return {
        "worker_seconds": worker_seconds,
        "step_seconds": sum(end - start for start, end in step),
        "hidden_seconds": hidden,
        "hidden_pct": 100.0 * hidden / worker_seconds if worker_seconds else 0.0,
    }
