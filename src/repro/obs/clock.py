"""The sanctioned clock: every obs-layer time read routes through here.

Three readers, one per distinct job:

* :func:`monotonic` — span timestamps.  ``CLOCK_MONOTONIC`` is
  system-wide on Linux, so readings taken in ``fork``-ed refresh workers
  land on the same axis as the parent's — the property the merged
  cross-process timeline (and the pool's queue-wait accounting) depends
  on.  Never use wall time for spans: an NTP step mid-run would fold the
  timeline.
* :func:`perf_counter` — highest-resolution interval measurement where
  cross-process comparability does not matter (per-request latency,
  benchmark arms).
* :func:`wall_time` — the only reader that may name a calendar instant
  (run-log ``unix_time`` stamps).

RPL005 enforces the discipline: kernel modules (``models/*``, ``core/*``)
read no clocks at all — not even these helpers — other ``obs/`` modules
must route every read through this module, and this module alone touches
:mod:`time` directly ("exempt by construction": the rule skips
``obs/clock.py`` by name, so no pragmas appear anywhere in ``obs/``).
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "perf_counter", "wall_time"]


def monotonic() -> float:
    """Seconds on the system-wide monotonic axis (span timestamps)."""
    return time.monotonic()


def perf_counter() -> float:
    """Seconds on the highest-resolution local counter (intervals)."""
    return time.perf_counter()


def wall_time() -> float:
    """Seconds since the Unix epoch (calendar stamps, never spans)."""
    return time.time()
