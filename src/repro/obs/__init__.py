"""Unified observability: live metrics, run telemetry, exposition.

Three pieces, designed to be threaded through every hot layer of the
reproduction without touching its semantics:

* :class:`~repro.obs.registry.MetricsRegistry` — numpy-backed counters,
  gauges and fixed-bucket histograms with Prometheus text and JSON
  exporters.  Disabled-by-default: hot paths hold no registry unless one
  is attached, so an uninstrumented run executes the exact seed code
  path.
* :mod:`~repro.obs.runlog` — a JSONL run log (one validated record per
  epoch) written by the trainer's ``metrics_out`` hook and consumed by
  ``repro metrics`` and the CI schema check.
* :mod:`~repro.obs.summary` — the run-log summariser behind
  ``repro metrics``.
* :mod:`~repro.obs.trace` — disabled-by-default span tracing with
  cross-process collection (forked refresh workers ship spans back on
  their results), Chrome trace-event export and the ``repro trace``
  summary analysis; all clock reads route through
  :mod:`~repro.obs.clock`, the single sanctioned reader RPL005 enforces.
"""

from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.runlog import (
    EPOCH_REQUIRED_FIELDS,
    RUN_LOG_VERSION,
    RunLogError,
    RunLogWriter,
    read_run_log,
    read_run_log_lenient,
    validate_record,
)
from repro.obs.summary import epoch_rows, phase_totals, run_overview
from repro.obs.trace import (
    Span,
    Tracer,
    category_summary,
    chrome_trace,
    overlap_report,
    read_trace,
    validate_chrome_trace,
    write_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "EPOCH_REQUIRED_FIELDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RUN_LOG_VERSION",
    "RunLogError",
    "RunLogWriter",
    "Sample",
    "Span",
    "Tracer",
    "category_summary",
    "chrome_trace",
    "epoch_rows",
    "overlap_report",
    "phase_totals",
    "read_run_log",
    "read_run_log_lenient",
    "read_trace",
    "run_overview",
    "validate_chrome_trace",
    "validate_record",
    "write_trace",
]
