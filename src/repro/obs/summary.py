"""Run-log summarisation for the ``repro metrics`` CLI.

Turns a parsed run log (:func:`repro.obs.runlog.read_run_log`) into the
per-epoch rows and run-level totals the CLI prints — the quick "did the
cache stay healthy, where did the time go" read on any finished or
in-flight run.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.runlog import epoch_records

__all__ = ["EPOCH_COLUMNS", "run_overview", "epoch_rows", "phase_totals"]

#: Header of the per-epoch table, in print order.
EPOCH_COLUMNS: tuple[str, ...] = (
    "epoch", "loss", "nzl", "grad_norm", "seconds", "samples/s",
    "churn", "survivors",
)


def _fmt_ratio(value: object) -> object:
    return round(float(value), 4) if isinstance(value, (int, float)) else "--"


def run_overview(records: Sequence[dict[str, Any]]) -> dict[str, object]:
    """Run-level facts: meta fields, epoch count, totals.

    Tolerates partial logs (a live ``tail`` has no ``run_end`` yet): every
    field falls back to what the present records imply.
    """
    meta = next((r for r in records if r.get("type") == "run_meta"), None)
    end = next((r for r in records if r.get("type") == "run_end"), None)
    epochs = epoch_records(records)
    overview: dict[str, object] = {
        "epochs_logged": len(epochs),
        "total_seconds": round(
            sum(float(r["epoch_seconds"]) for r in epochs), 3
        ),
        "total_churn": int(
            sum(float(r.get("cache", {}).get("churn", 0)) for r in epochs)
        ),
    }
    if meta is not None:
        for field in ("model", "dataset", "sampler"):
            overview[field] = meta[field]
    if end is not None:
        overview["train_seconds"] = round(float(end["train_seconds"]), 3)
        overview["complete"] = True
    else:
        overview["complete"] = False
    return overview


def epoch_rows(
    records: Sequence[dict[str, Any]], tail: int = 0
) -> list[tuple[object, ...]]:
    """Table rows matching :data:`EPOCH_COLUMNS` (last ``tail`` if > 0)."""
    epochs = epoch_records(records)
    if tail > 0:
        epochs = epochs[-tail:]
    rows: list[tuple[object, ...]] = []
    for record in epochs:
        cache = record.get("cache", {})
        rows.append(
            (
                record["epoch"],
                round(float(record["loss"]), 5),
                round(float(record["nzl"]), 4),
                round(float(record["grad_norm"]), 5),
                round(float(record["epoch_seconds"]), 3),
                round(float(record["samples_per_sec"])),
                int(cache["churn"]) if "churn" in cache else "--",
                _fmt_ratio(cache.get("survivor_fraction")),
            )
        )
    return rows


def phase_totals(records: Sequence[dict[str, Any]]) -> dict[str, float]:
    """Summed per-phase seconds across every epoch record that has them."""
    totals: dict[str, float] = {}
    for record in epoch_records(records):
        for phase, seconds in record.get("phase_seconds", {}).items():
            totals[phase] = totals.get(phase, 0.0) + float(seconds)
    return {phase: round(seconds, 4) for phase, seconds in totals.items()}
