"""RPL003 — metrics call sites must be None-guarded.

The obs contract (PR 6) is "disabled by default, bit-identical when
off": every hot path holds ``metrics = None`` unless the caller opted
in, so every ``<...>.metrics.counter/gauge/histogram(...)`` chain must
prove the registry exists before touching it.  A guard is any of:

* an enclosing ``if``/ternary whose test mentions the same base
  expression (``if self.metrics is not None: ...``, ``m if metrics else n``);
* an earlier early-exit in the same function
  (``if metrics is None: return``);
* an earlier ``assert <base> is not None`` in the same function;
* the base being a function parameter annotated with a non-Optional
  type — the None-guard then lives at the call boundary, enforced by
  RPL006/mypy on the caller.

The rule is textual by design: it only tracks chains whose base is
literally named ``metrics`` (or ``*_metrics``); a registry renamed into
a local keeps whatever proof the assignment site established.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import FileContext, Finding, Rule

__all__ = ["MetricsGuardRule"]

#: Registry factory methods whose call sites the rule audits.
METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def _base_is_metrics(expr: ast.expr) -> bool:
    """Whether ``expr`` is a name/attribute chain ending in ``metrics``."""
    if isinstance(expr, ast.Name):
        symbol = expr.id
    elif isinstance(expr, ast.Attribute):
        symbol = expr.attr
    else:
        return False
    return symbol == "metrics" or symbol.endswith("_metrics")


def _mentions(test: ast.expr, base_dump: str) -> bool:
    """Whether ``base_dump`` appears as a sub-expression of ``test``."""
    for sub in ast.walk(test):
        if isinstance(sub, (ast.Name, ast.Attribute)) and (
            ast.dump(sub) == base_dump
        ):
            return True
    return False


def _is_none_exit_guard(stmt: ast.stmt, base_dump: str) -> bool:
    """``if <base> is None: return/raise/continue`` before the call site."""
    if not isinstance(stmt, ast.If) or not stmt.body:
        return False
    test = stmt.test
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
        and _mentions(test.left, base_dump)
    ):
        return False
    return isinstance(stmt.body[-1], (ast.Return, ast.Raise, ast.Continue))


def _annotation_excludes_none(annotation: ast.expr | None) -> bool:
    """Whether a parameter annotation rules out ``None`` statically."""
    if annotation is None:
        return False
    text = ast.dump(annotation)
    return "None" not in text and "Optional" not in text and (
        "Any" not in text
    )


class MetricsGuardRule(Rule):
    """RPL003 — ``metrics.counter/gauge/histogram`` needs a None-guard."""

    code = "RPL003"
    name = "metrics-none-guard"
    summary = (
        "metrics registries are disabled (None) by default; every "
        ".counter/.gauge/.histogram chain on a `metrics` base needs a "
        "None-guard or a non-Optional parameter annotation"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in METRIC_FACTORIES
                and _base_is_metrics(node.func.value)
            ):
                continue
            base = node.func.value
            if self._is_guarded(ctx, node, base):
                continue
            label = ast.unparse(base)
            yield ctx.finding(
                node,
                self.code,
                f"metrics call on `{label}` is not None-guarded; wrap in "
                f"`if {label} is not None:` (the obs contract keeps "
                "registries disabled by default) or annotate the parameter "
                "with a non-Optional registry type",
            )

    def _is_guarded(
        self, ctx: FileContext, call: ast.Call, base: ast.expr
    ) -> bool:
        base_dump = ast.dump(base)
        enclosing_fn: ast.AST | None = None
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, (ast.If, ast.IfExp)) and _mentions(
                ancestor.test, base_dump
            ):
                return True
            if isinstance(ancestor, ast.Assert) and _mentions(
                ancestor.test, base_dump
            ):
                return True
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                enclosing_fn = ancestor
                break
        if enclosing_fn is None:
            return False
        if self._param_excludes_none(enclosing_fn, base):
            return True
        # Earlier statements in the enclosing function: early-exit guards
        # and assertions establish non-None-ness for everything after.
        call_line = call.lineno
        for stmt in ast.walk(enclosing_fn):
            if getattr(stmt, "lineno", call_line) >= call_line:
                continue
            if _is_none_exit_guard(stmt, base_dump):  # type: ignore[arg-type]
                return True
            if isinstance(stmt, ast.Assert) and _mentions(
                stmt.test, base_dump
            ):
                return True
        return False

    @staticmethod
    def _param_excludes_none(fn: ast.AST, base: ast.expr) -> bool:
        if not isinstance(base, ast.Name):
            return False
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        args = fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == base.id:
                return _annotation_excludes_none(arg.annotation)
        return False
