"""RPL006 — complete type annotations on the typed public API.

``repro.core``, ``repro.eval``, ``repro.parallel`` and ``repro.serve``
are the packages other layers (and the mypy gate) build on; every
*public* function there — module-level defs and methods of module-level
classes whose names don't start with ``_`` — must annotate every
parameter (``self``/``cls`` excepted) and the return type.  Private
helpers and nested closures stay unconstrained.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import FileContext, Finding, Rule

__all__ = ["PublicAnnotationsRule"]

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _public_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    for node in tree.body:
        if isinstance(node, _FunctionNode):
            if not node.name.startswith("_"):
                yield node, node.name
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, _FunctionNode) and not (
                    member.name.startswith("_")
                ):
                    yield member, f"{node.name}.{member.name}"


def _missing_annotations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> Iterator[str]:
    args = fn.args
    positional = [*args.posonlyargs, *args.args]
    if is_method and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    for arg in (*positional, *args.kwonlyargs):
        if arg.annotation is None:
            yield f"parameter `{arg.arg}`"
    if args.vararg is not None and args.vararg.annotation is None:
        yield f"parameter `*{args.vararg.arg}`"
    if args.kwarg is not None and args.kwarg.annotation is None:
        yield f"parameter `**{args.kwarg.arg}`"
    if fn.returns is None:
        yield "return type"


class PublicAnnotationsRule(Rule):
    """RPL006 — public API functions missing type annotations."""

    code = "RPL006"
    name = "typed-public-api"
    summary = (
        "public functions in repro.{core,eval,parallel,serve} must carry "
        "complete parameter and return annotations (the mypy gate "
        "depends on them)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_typed_api or ctx.is_test:
            return
        for fn, qualname in _public_functions(ctx.tree):
            is_method = "." in qualname
            missing = list(_missing_annotations(fn, is_method))
            if not missing:
                continue
            yield ctx.finding(
                fn,
                self.code,
                f"public function `{qualname}` is missing "
                f"{', '.join(missing)}; the typed-API packages require "
                "complete annotations",
            )
