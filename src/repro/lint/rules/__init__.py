"""Rule registry: every implemented rule, addressable by code.

Adding a rule = implement :class:`repro.lint.findings.Rule` in a module
here and append an instance to :data:`RULES`; the engine, CLI
``--select/--ignore`` validation, ``--list-rules`` output and the README
rule table all read from this one tuple.
"""

from __future__ import annotations

from repro.lint.findings import Rule
from repro.lint.rules.annotations import PublicAnnotationsRule
from repro.lint.rules.determinism import GlobalNumpyRngRule, UnseededRngRule
from repro.lint.rules.metrics_guard import MetricsGuardRule
from repro.lint.rules.resources import SharedMemoryLifecycleRule
from repro.lint.rules.wallclock import KernelWallClockRule

__all__ = ["RULES", "resolve_codes", "rule_by_code"]

#: Every implemented rule, in code order.
RULES: tuple[Rule, ...] = (
    GlobalNumpyRngRule(),
    UnseededRngRule(),
    MetricsGuardRule(),
    SharedMemoryLifecycleRule(),
    KernelWallClockRule(),
    PublicAnnotationsRule(),
)

_BY_CODE = {rule.code: rule for rule in RULES}


def rule_by_code(code: str) -> Rule:
    """The registered rule for ``code``; raises ``KeyError`` if unknown."""
    return _BY_CODE[code]


def resolve_codes(selector: str | None) -> frozenset[str]:
    """Expand a ``"RPL001,RPL003"`` selector into a validated code set.

    ``None``/empty selects every rule.  Unknown codes raise ``ValueError``
    naming the offender — the CLI turns that into a clean exit 2.
    """
    if not selector:
        return frozenset(_BY_CODE)
    codes = frozenset(
        part.strip() for part in selector.split(",") if part.strip()
    )
    unknown = sorted(codes - set(_BY_CODE))
    if unknown:
        known = ", ".join(sorted(_BY_CODE))
        raise ValueError(
            f"unknown rule code(s) {', '.join(unknown)}; known codes: {known}"
        )
    return codes
