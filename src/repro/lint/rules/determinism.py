"""Determinism rules: RPL001 (global NumPy RNG) and RPL002 (unseeded RNG).

NSCaching's reproducibility claims rest on every random draw flowing
from an explicitly seeded ``numpy.random.Generator`` (the repo threads
one through ``repro.utils.rng.ensure_rng``).  Two AST rules defend that:

* RPL001 bans the legacy module-level API (``np.random.shuffle`` etc.),
  which mutates hidden global state and couples call sites through it;
* RPL002 bans *unseeded* generator construction outside test code —
  ``np.random.default_rng()`` with no seed pulls OS entropy and makes
  two identical runs diverge silently.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.findings import FileContext, Finding, Rule

__all__ = ["GlobalNumpyRngRule", "UnseededRngRule", "NumpyNames"]

#: Legacy module-level numpy.random API (global-state draws and state pokes).
GLOBAL_RNG_MEMBERS = frozenset({
    "RandomState", "beta", "binomial", "bytes", "chisquare", "choice",
    "dirichlet", "exponential", "f", "gamma", "geometric", "get_state",
    "gumbel", "hypergeometric", "laplace", "logistic", "lognormal",
    "logseries", "multinomial", "multivariate_hypergeometric",
    "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "normal", "pareto", "permutation", "poisson", "power",
    "rand", "randint", "randn", "random", "random_integers",
    "random_sample", "ranf", "rayleigh", "sample", "seed", "set_state",
    "shuffle", "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_normal", "standard_t", "triangular", "uniform", "vonmises",
    "wald", "weibull", "zipf",
})

#: Constructors that default to OS entropy when called without a seed.
UNSEEDED_CONSTRUCTORS = frozenset({
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64", "SeedSequence",
    "default_rng",
})


class NumpyNames:
    """Per-file import-alias map for ``numpy`` / ``numpy.random`` symbols.

    Resolves expressions like ``np.random.shuffle``, ``npr.shuffle`` (via
    ``import numpy.random as npr``) or a bare ``shuffle`` (via
    ``from numpy.random import shuffle``) back to the canonical member
    name, so the rules see through whatever alias the file picked.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.numpy_aliases: set[str] = set()
        self.random_aliases: set[str] = set()
        #: local name → numpy.random member imported directly.
        self.direct_members: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random" and alias.asname:
                        self.random_aliases.add(alias.asname)
                    elif alias.name.startswith("numpy.") and not alias.asname:
                        # ``import numpy.random`` binds the root ``numpy``
                        self.numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.direct_members[alias.asname or alias.name] = (
                            alias.name
                        )

    def random_member(self, node: ast.expr) -> str | None:
        """The ``numpy.random`` member ``node`` refers to, if any."""
        if isinstance(node, ast.Name):
            return self.direct_members.get(node.id)
        if not isinstance(node, ast.Attribute):
            return None
        value = node.value
        # np.random.<member> / numpy.random.<member>
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.numpy_aliases
        ):
            return node.attr
        # npr.<member> via ``import numpy.random as npr`` / ``from numpy
        # import random [as npr]``
        if isinstance(value, ast.Name) and value.id in self.random_aliases:
            return node.attr
        return None


def _numpy_names(ctx: FileContext) -> NumpyNames:
    # One alias scan per file, shared by both determinism rules.
    cached = getattr(ctx, "_numpy_names", None)
    if cached is None:
        cached = NumpyNames(ctx.tree)
        ctx._numpy_names = cached  # type: ignore[attr-defined]
    return cached


class GlobalNumpyRngRule(Rule):
    """RPL001 — no global-state ``numpy.random`` module-level API."""

    code = "RPL001"
    name = "no-global-numpy-rng"
    summary = (
        "numpy.random module-level API (shuffle/seed/randint/…) mutates "
        "hidden global state; thread a seeded Generator instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        names = _numpy_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            # Only flag the outermost reference: ``np.random.shuffle`` is
            # one finding, not one per nested Attribute.
            parent = ctx.parents.get(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue
            member = names.random_member(node)
            if member in GLOBAL_RNG_MEMBERS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"np.random.{member} uses the process-global NumPy RNG; "
                    "pass an explicit np.random.Generator "
                    "(repro.utils.rng.ensure_rng) instead",
                )
            # ``from numpy.random import shuffle`` — flag the import site
            # too, so the ban is visible where the name enters scope.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name in GLOBAL_RNG_MEMBERS:
                        yield ctx.finding(
                            node,
                            self.code,
                            f"importing numpy.random.{alias.name} binds the "
                            "process-global RNG API; use a seeded Generator "
                            "method instead",
                        )


def _is_unseeded_call(call: ast.Call) -> bool:
    """No positional seed, or an explicit ``None`` seed, and no ``seed=``."""
    if call.args:
        first = call.args[0]
        if not (isinstance(first, ast.Constant) and first.value is None):
            return False
        return True  # explicit default_rng(None)
    for kw in call.keywords:
        if kw.arg in ("seed", "entropy"):
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
        if kw.arg is None:  # **kwargs — assume the caller threads a seed
            return False
    return True


class UnseededRngRule(Rule):
    """RPL002 — no unseeded Generator/bit-generator construction."""

    code = "RPL002"
    name = "no-unseeded-rng"
    summary = (
        "np.random.default_rng() / bit generators constructed without a "
        "seed pull OS entropy and break run-to-run reproducibility "
        "(test code is exempt)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.is_test:
            return
        names = _numpy_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            member = names.random_member(node.func)
            if member in UNSEEDED_CONSTRUCTORS and _is_unseeded_call(node):
                yield ctx.finding(
                    node,
                    self.code,
                    f"np.random.{member}() without a seed is "
                    "non-reproducible; pass an explicit seed or thread the "
                    "run's Generator (repro.utils.rng.ensure_rng)",
                )
