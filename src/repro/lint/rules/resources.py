"""RPL004 — shared-memory segments need a reachable release path.

``multiprocessing.shared_memory.SharedMemory(create=True)`` allocates a
named OS segment that outlives the process unless somebody calls both
``close()`` (drop this process's mapping) and ``unlink()`` (remove the
segment).  The repo's convention (``repro.parallel.sharded``) is that
the *creating* class owns the lifecycle: whatever class constructs a
segment must also contain a ``close()``/``unlink()`` call pair — usually
inside a ``close()``/``release()`` method that owners chain to.

The rule is scope-based: a ``SharedMemory(create=True)`` call is clean
when its enclosing class (or, for module-level creation, the module)
contains at least one ``.close()`` call and one ``.unlink()`` call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import FileContext, Finding, Rule

__all__ = ["SharedMemoryLifecycleRule"]


def _is_shared_memory_create(node: ast.Call) -> bool:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    for kw in node.keywords:
        if kw.arg == "create":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    return False  # attach-only (create defaults to False) — not an owner


def _calls_method(scope: ast.AST, method: str) -> bool:
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
        ):
            return True
    return False


class SharedMemoryLifecycleRule(Rule):
    """RPL004 — ``SharedMemory(create=True)`` without close()/unlink()."""

    code = "RPL004"
    name = "shared-memory-lifecycle"
    summary = (
        "every SharedMemory(create=True) owner must hold a reachable "
        "close() AND unlink() call (segments leak past process exit "
        "otherwise)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_shared_memory_create(node)):
                continue
            scope: ast.AST = ctx.tree
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, ast.ClassDef):
                    scope = ancestor
                    break
            missing = [
                method
                for method in ("close", "unlink")
                if not _calls_method(scope, method)
            ]
            if not missing:
                continue
            where = (
                f"class {scope.name}" if isinstance(scope, ast.ClassDef)
                else "this module"
            )
            needed = " and ".join(f"{method}()" for method in missing)
            yield ctx.finding(
                node,
                self.code,
                "SharedMemory(create=True) allocates an OS segment but "
                f"{where} never calls {needed}; give the owning scope a "
                "release path (see repro.parallel.sharded.SharedArrayBlock)",
            )
