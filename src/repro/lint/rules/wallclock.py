"""RPL005 — clock discipline: clock-free kernels, one clock source in obs.

Kernel modules (``models/*``, ``core/*``) are the code whose outputs
must be bit-identical under a seed and whose phase costs the profiler
attributes exactly.  A stray ``time.time()`` / ``time.perf_counter()``
there either leaks timing into logic or double-counts a phase that the
sanctioned :class:`repro.utils.timer.Timer` (and the obs phase spans
built on it) already measures.  Timing belongs to the orchestration
layers — trainer, pool, eval drivers — or to an explicitly pragma'd
telemetry site.  Importing :mod:`repro.obs.clock` into a kernel is the
same violation with a detour, so that import is banned there too.

The observability package has the complementary invariant: spans, run
logs and metrics must share *one* time axis, so every ``obs/`` module
routes clock reads through :mod:`repro.obs.clock` — which is itself
exempt by construction (it is the single sanctioned ``time.*`` reader),
so no blanket pragmas are needed anywhere in ``obs/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import FileContext, Finding, Rule

__all__ = ["KernelWallClockRule"]

#: ``time`` module members that read a clock.
CLOCK_MEMBERS = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "time", "time_ns",
})

#: The sanctioned clock module (kernels must not import it either).
_CLOCK_MODULE = "repro.obs.clock"


class KernelWallClockRule(Rule):
    """RPL005 — ad-hoc clock reads in kernel and obs modules."""

    code = "RPL005"
    name = "no-kernel-wallclock"
    summary = (
        "kernel modules (models/*, core/*) must not read wall clocks "
        "or import repro.obs.clock; obs/* modules must read clocks "
        "through repro.obs.clock (itself the one exempt reader)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_kernel:
            yield from self._clock_reads(
                ctx,
                "read inside a kernel module; kernels must stay "
                "clock-free (profile via repro.utils.timer.Timer in the "
                "orchestration layer, or pragma a telemetry-only site "
                "with a reason)",
            )
            yield from self._clock_imports(ctx)
        elif ctx.is_obs:
            yield from self._clock_reads(
                ctx,
                "read directly in an obs module; route it through "
                "repro.obs.clock so spans, run logs and metrics share "
                "one time axis",
            )

    def _clock_reads(self, ctx: FileContext, why: str) -> Iterator[Finding]:
        time_aliases: set[str] = set()
        member_aliases: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in CLOCK_MEMBERS:
                        member_aliases[alias.asname or alias.name] = alias.name
        for node in ast.walk(ctx.tree):
            member: str | None = None
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in time_aliases
                and node.attr in CLOCK_MEMBERS
            ):
                member = node.attr
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in member_aliases
            ):
                member = member_aliases[node.id]
            if member is not None:
                yield ctx.finding(node, self.code, f"time.{member} {why}")

    def _clock_imports(self, ctx: FileContext) -> Iterator[Finding]:
        """Kernels importing the sanctioned clock module are still kernels
        reading clocks — the laundering detour gets the same finding."""
        for node in ast.walk(ctx.tree):
            hit = False
            if isinstance(node, ast.Import):
                hit = any(
                    alias.name == _CLOCK_MODULE
                    or alias.name.startswith(_CLOCK_MODULE + ".")
                    for alias in node.names
                )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                hit = module == _CLOCK_MODULE or (
                    module == "repro.obs"
                    and any(alias.name == "clock" for alias in node.names)
                )
            if hit:
                yield ctx.finding(
                    node,
                    self.code,
                    f"{_CLOCK_MODULE} imported into a kernel module; "
                    "kernels must stay clock-free — the sanctioned clock "
                    "is for obs/orchestration code, not kernels",
                )
