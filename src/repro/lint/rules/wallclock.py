"""RPL005 — no ad-hoc wall-clock reads inside kernel modules.

Kernel modules (``models/*``, ``core/*``) are the code whose outputs
must be bit-identical under a seed and whose phase costs the profiler
attributes exactly.  A stray ``time.time()`` / ``time.perf_counter()``
there either leaks timing into logic or double-counts a phase that the
sanctioned :class:`repro.utils.timer.Timer` (and the obs phase spans
built on it) already measures.  Timing belongs to the orchestration
layers — trainer, pool, eval drivers — or to an explicitly pragma'd
telemetry site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import FileContext, Finding, Rule

__all__ = ["KernelWallClockRule"]

#: ``time`` module members that read a clock.
CLOCK_MEMBERS = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "time", "time_ns",
})


class KernelWallClockRule(Rule):
    """RPL005 — wall-clock reads in ``models/``/``core/`` modules."""

    code = "RPL005"
    name = "no-kernel-wallclock"
    summary = (
        "kernel modules (models/*, core/*) must not read wall clocks "
        "directly; time through repro.utils.timer.Timer at the "
        "orchestration layer"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_kernel:
            return
        time_aliases: set[str] = set()
        member_aliases: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in CLOCK_MEMBERS:
                        member_aliases[alias.asname or alias.name] = alias.name
        for node in ast.walk(ctx.tree):
            member: str | None = None
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in time_aliases
                and node.attr in CLOCK_MEMBERS
            ):
                member = node.attr
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in member_aliases
            ):
                member = member_aliases[node.id]
            if member is not None:
                yield ctx.finding(
                    node,
                    self.code,
                    f"time.{member} read inside a kernel module; kernels "
                    "must stay clock-free (profile via "
                    "repro.utils.timer.Timer in the orchestration layer, "
                    "or pragma a telemetry-only site with a reason)",
                )
