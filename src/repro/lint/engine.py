"""The lint engine: file collection, pragmas, rule dispatch, formatting.

The engine is deliberately filesystem-thin: :func:`lint_source` checks
one in-memory file (what the fixture tests drive), :func:`lint_paths`
maps it over a file tree.  Findings are suppressed by inline pragmas::

    np.random.shuffle(rows)  # repro-lint: ignore[RPL001] -- vendored demo
    risky_call()             # repro-lint: ignore -- blanket, all rules

A pragma suppresses findings *on its own physical line* only, and the
bracket form must name real rule codes — a typo'd code is itself
reported (``RPL902 unknown code in pragma``) instead of silently
suppressing nothing.
"""

from __future__ import annotations

import json
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.lint.findings import FileContext, Finding, Rule
from repro.lint.rules import RULES, resolve_codes

__all__ = [
    "LintConfig",
    "LintResult",
    "PARSE_ERROR",
    "UNKNOWN_PRAGMA_CODE",
    "collect_files",
    "format_findings",
    "lint_paths",
    "lint_source",
]

#: Synthetic finding codes the engine itself emits.
PARSE_ERROR = "RPL901"
UNKNOWN_PRAGMA_CODE = "RPL902"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[^\]]*)\])?"
)
#: Directories never descended into when collecting files.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist",
})


@dataclass(frozen=True)
class LintConfig:
    """What to check and how to report it."""

    select: frozenset[str] = frozenset(rule.code for rule in RULES)
    ignore: frozenset[str] = frozenset()
    output_format: str = "text"

    @classmethod
    def from_selectors(
        cls,
        select: str | None = None,
        ignore: str | None = None,
        output_format: str = "text",
    ) -> "LintConfig":
        """Build a config from CLI-style selector strings (validated)."""
        selected = resolve_codes(select)
        ignored = resolve_codes(ignore) if ignore else frozenset()
        return cls(
            select=selected, ignore=ignored, output_format=output_format
        )

    @property
    def active_rules(self) -> tuple[Rule, ...]:
        return tuple(
            rule
            for rule in RULES
            if rule.code in self.select and rule.code not in self.ignore
        )


@dataclass
class LintResult:
    """Findings plus enough bookkeeping for stable, comparable output."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def counts(self) -> dict[str, int]:
        """Findings per code, only non-zero entries, sorted by code."""
        totals: dict[str, int] = {}
        for finding in self.findings:
            totals[finding.code] = totals.get(finding.code, 0) + 1
        return dict(sorted(totals.items()))

    @property
    def clean(self) -> bool:
        return not self.findings

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def finalize(self) -> "LintResult":
        self.findings.sort()
        return self


def _pragma_lines(source: str) -> dict[int, frozenset[str] | None]:
    """line → suppressed codes (``None`` = all codes) from real comments.

    Tokenizing (rather than regexing raw lines) keeps pragma-looking
    strings inside string literals from suppressing anything.
    """
    pragmas: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                pragmas[token.start[0]] = None
            else:
                pragmas[token.start[0]] = frozenset(
                    part.strip() for part in codes.split(",") if part.strip()
                )
    except tokenize.TokenError:  # unterminated something — parse reports it
        pass
    return pragmas


def lint_source(
    source: str,
    path: str | Path,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one in-memory file; the fixture tests call this directly."""
    config = config or LintConfig()
    display = str(path)
    try:
        ctx = FileContext.from_source(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    pragmas = _pragma_lines(source)
    known_codes = {rule.code for rule in RULES}
    findings: list[Finding] = []
    for line, codes in sorted(pragmas.items()):
        for code in sorted(codes or ()):
            if code not in known_codes:
                findings.append(
                    Finding(
                        path=display,
                        line=line,
                        col=0,
                        code=UNKNOWN_PRAGMA_CODE,
                        message=(
                            f"pragma ignores unknown rule code {code!r}; "
                            "it suppresses nothing"
                        ),
                    )
                )
    for rule in config.active_rules:
        for finding in rule.run(ctx):
            suppressed = pragmas.get(finding.line, frozenset())
            if suppressed is None or (
                suppressed and finding.code in suppressed
            ):
                continue
            findings.append(finding)
    return sorted(findings)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    missing: list[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(
                    part in _SKIP_DIRS for part in candidate.parts
                ):
                    seen.setdefault(candidate, None)
        elif path.is_file():
            seen.setdefault(path, None)
        else:
            missing.append(str(raw))
    if missing:
        raise FileNotFoundError(
            f"no such file or directory: {', '.join(missing)}"
        )
    return sorted(seen)


def lint_paths(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> LintResult:
    """Lint every ``.py`` file under ``paths``."""
    config = config or LintConfig()
    result = LintResult()
    for path in collect_files(paths):
        source = path.read_text(encoding="utf-8")
        result.extend(lint_source(source, path, config))
        result.files_checked += 1
    return result.finalize()


def format_findings(result: LintResult, output_format: str = "text") -> str:
    """Render a result as ``text`` or machine-stable ``json``."""
    if output_format == "json":
        payload: Mapping[str, object] = {
            "version": 1,
            "files_checked": result.files_checked,
            "counts": result.counts,
            "findings": [finding.as_dict() for finding in result.findings],
        }
        return json.dumps(payload, indent=2, sort_keys=False)
    if output_format != "text":
        raise ValueError(f"unknown output format {output_format!r}")
    lines = [finding.render() for finding in result.findings]
    if result.findings:
        by_code = ", ".join(
            f"{code} x{count}" for code, count in result.counts.items()
        )
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files_checked} file(s): {by_code}"
        )
    else:
        lines.append(f"clean: {result.files_checked} file(s), 0 findings")
    return "\n".join(lines)


def _iter_rule_docs() -> Iterator[tuple[str, str, str]]:
    for rule in RULES:
        yield rule.code, rule.name, rule.summary


def list_rules() -> str:
    """Human-readable rule table for ``repro lint --list-rules``."""
    rows = list(_iter_rule_docs())
    width = max(len(name) for _, name, _ in rows)
    return "\n".join(
        f"{code}  {name.ljust(width)}  {summary}"
        for code, name, summary in rows
    )
