"""repro.lint — contract-aware static analysis for this repository.

The repo's reproducibility story rests on conventions that ordinary
linters cannot see: seeded RNG threading, None-guarded metrics call
sites, shared-memory lifecycle discipline, clock-free kernels and a
fully annotated public API.  This package turns those conventions into
machine-checked rules (``RPL001``–``RPL006``), exposed as
``repro lint [PATHS]`` and as a plain Python API::

    from repro.lint import LintConfig, lint_paths
    result = lint_paths(["src"], LintConfig.from_selectors("RPL001,RPL002"))
    assert result.clean, result.findings

Intentional violations carry inline pragmas with a reason::

    return np.random.default_rng()  # repro-lint: ignore[RPL002] -- API allows None

See the README "Static analysis" section for the rule table.
"""

from repro.lint.engine import (
    LintConfig,
    LintResult,
    collect_files,
    format_findings,
    lint_paths,
    lint_source,
    list_rules,
)
from repro.lint.findings import FileContext, Finding, Rule
from repro.lint.rules import RULES, resolve_codes

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "Rule",
    "collect_files",
    "format_findings",
    "lint_paths",
    "lint_source",
    "list_rules",
    "resolve_codes",
]
