"""Finding and rule primitives shared by the lint engine and its rules.

A :class:`Finding` is one rule violation at one source location; a
:class:`Rule` is a stateless checker that maps a parsed file
(:class:`FileContext`) to findings.  Rules never read the filesystem —
the engine hands them source, AST and path classification, which keeps
every rule trivially testable against in-memory snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import PurePath
from typing import Iterable, Iterator

__all__ = ["FileContext", "Finding", "Rule"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, addressable as ``path:line:col: code message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The conventional one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping (stable key order via dataclass fields)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


#: Path parts that mark a file as test code (RPL002 exempts tests).
_TEST_PARTS = frozenset({"tests", "test"})
#: Path parts that mark a kernel module (RPL005 applies there).
_KERNEL_PARTS = frozenset({"models", "core"})
#: Path part marking the observability package (RPL005's obs scope).
_OBS_PART = "obs"
#: The one obs module allowed to read ``time.*``: everything else in
#: ``obs/`` routes through it, so the trace/runlog time axis has exactly
#: one source.
_OBS_CLOCK_FILENAME = "clock.py"
#: Path parts naming the typed public-API packages (RPL006 applies there).
_TYPED_API_PARTS = frozenset({"core", "eval", "parallel", "serve"})


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file.

    ``display_path`` is what findings report (usually relative to the
    invocation directory); ``parts`` drives the path classification so
    rules behave identically for real repo files and for fixture trees
    materialised under a tmp directory.
    """

    display_path: str
    source: str
    tree: ast.Module
    parts: tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def from_source(cls, source: str, path: str | PurePath) -> "FileContext":
        """Parse ``source``; raises ``SyntaxError`` for the engine to wrap."""
        pure = PurePath(path)
        return cls(
            display_path=str(path),
            source=source,
            tree=ast.parse(source, filename=str(path)),
            parts=pure.parts,
        )

    # -- path classification ---------------------------------------------------
    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.display_path

    @property
    def is_test(self) -> bool:
        """Test code: under a tests/ directory, or a test_*/conftest module."""
        if any(part in _TEST_PARTS for part in self.parts[:-1]):
            return True
        name = self.filename
        return name.startswith("test_") or name == "conftest.py"

    @property
    def is_kernel(self) -> bool:
        """Kernel module: lives under a ``models/`` or ``core/`` package."""
        return any(part in _KERNEL_PARTS for part in self.parts[:-1])

    @property
    def is_obs(self) -> bool:
        """Inside the ``obs/`` package, excluding the sanctioned clock.

        ``obs/clock.py`` is exempt *by construction* — it is the single
        module allowed to touch ``time.*``, so RPL005's obs scope covers
        every other ``obs/`` file with no pragmas needed.
        """
        return (
            any(part == _OBS_PART for part in self.parts[:-1])
            and self.filename != _OBS_CLOCK_FILENAME
        )

    @property
    def is_typed_api(self) -> bool:
        """Inside one of the packages whose public API must be annotated."""
        return any(part in _TYPED_API_PARTS for part in self.parts[:-1])

    # -- AST conveniences ------------------------------------------------------
    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent map over the whole tree (rules walk ancestors)."""
        mapping: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                mapping[child] = parent
        return mapping

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """A finding anchored at ``node`` (1-indexed line, 0-indexed col)."""
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


class Rule:
    """Base class: one code, one invariant, one ``check`` implementation."""

    #: Stable identifier, e.g. ``"RPL001"``; selected via --select/--ignore.
    code: str = ""
    #: Short kebab-case name shown by ``repro lint --list-rules``.
    name: str = ""
    #: One-line statement of the invariant the rule protects.
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> list[Finding]:
        """``check`` with the output normalised to a sorted list."""
        return sorted(self.check(ctx))
