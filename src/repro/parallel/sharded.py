"""Shared-memory sharded cache storage (the ``sharded-array`` backend).

The array engine already makes a cache refresh one ``gather`` and one
``scatter`` over a preallocated block; this module moves that block into
``multiprocessing.shared_memory`` and overlays a
:class:`~repro.parallel.plan.ShardPlan` on its row-space.  Semantics are
*identical* to the inner scheme — the only change is where the bytes
live — so a sharded store with any ``n_shards`` is bit-identical to its
unsharded sibling under a fixed seed (property-tested), and the plain
sequential refresh path works against it unchanged.  What the shared
storage buys is that :class:`~repro.parallel.pool.RefreshPool` worker
processes can gather/scatter the same rows with zero copying: each shard
is a contiguous row range, each batch slice touches exactly one shard,
and concurrent shard refreshes are write-disjoint by construction.  To
*see* that concurrency, trace a run (``repro train --trace-out``): each
worker's ``shard_task`` spans (:mod:`repro.obs.trace`) land on their own
pid row of the exported timeline, overlapping the trainer's gradient and
optimizer spans when ``--refresh-overlap`` is on.

Two inner schemes are supported, selected by the backend's ``inner``
option:

* ``array`` — one row per distinct key (unbounded, the default);
* ``bucketed-array`` — ``n_buckets`` rows shared by hashing (§VI bounded
  memory), in which case the plan partitions the *bucket* row-space.

Shared-memory segments are owned by the creating process: call
:meth:`ShardedCacheStore.close` (or let the owning sampler/trainer close)
to release them; re-attaching an index also releases the previous blocks.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro.core.array_cache import ArrayNegativeCache
from repro.core.bucketed import BucketedArrayCache
from repro.data.keyindex import KeyIndex
from repro.parallel.plan import ShardPlan

__all__ = [
    "ShardedArrayCache",
    "ShardedBucketedArrayCache",
    "ShardedCacheStore",
    "SharedArrayBlock",
    "check_sharded_options",
    "make_sharded_cache",
]

#: Inner storage schemes ``make_sharded_cache`` accepts.
SHARDED_INNER_BACKENDS: tuple[str, ...] = ("array", "bucketed-array")


class SharedArrayBlock:
    """One ndarray backed by a ``multiprocessing.shared_memory`` segment.

    The creating process owns the segment and must :meth:`release` it;
    forked worker processes inherit the mapping and never unlink.
    """

    def __init__(self, shape: tuple[int, ...], dtype: object) -> None:
        nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=nbytes
        )
        self.array: np.ndarray | None = np.ndarray(
            shape, dtype=dtype, buffer=self._shm.buf
        )
        self.array.fill(0)

    def release(self) -> None:
        """Drop the array view, close the mapping and unlink the segment."""
        if self._shm is None:
            return
        self.array = None  # the buffer export must go before close()
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ShardedCacheStore:
    """Mixin: shared-memory allocation plus a shard plan over storage rows.

    Combined with :class:`~repro.core.array_cache.ArrayNegativeCache` or
    :class:`~repro.core.bucketed.BucketedArrayCache` below; the mixin only
    changes *where* storage lives (`_alloc`) and *how it is described*
    (shard plan, occupancy stats, worker layout) — never access semantics.
    """

    def __init__(
        self,
        size: int,
        n_entities: int,
        rng: np.random.Generator | int | None = None,
        *,
        n_shards: int = 1,
        **kwargs: object,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        super().__init__(size, n_entities, rng, **kwargs)  # type: ignore[call-arg]
        self.n_shards = int(n_shards)
        self.plan: ShardPlan | None = None
        self._blocks: list[SharedArrayBlock] = []

    # -- allocation -----------------------------------------------------------
    def _alloc(self, shape: tuple[int, ...], dtype: type) -> np.ndarray:
        block = SharedArrayBlock(shape, dtype)
        self._blocks.append(block)
        assert block.array is not None
        return block.array

    def attach_index(self, index: KeyIndex) -> None:
        """Bind the key→row map; allocate shared storage and plan shards."""
        self.close()  # re-attach replaces any previous segments
        super().attach_index(index)  # type: ignore[misc]
        assert self._ids is not None
        self.plan = ShardPlan(self._ids.shape[0], self.n_shards)

    def close(self) -> None:
        """Release the shared-memory segments (idempotent).

        After closing, gather/scatter raise until a new index is attached.
        """
        if not self._blocks:
            return
        self._ids = None
        self._live = None
        self._scores = None
        self.plan = None  # shard introspection now raises cleanly too
        blocks, self._blocks = self._blocks, []
        for block in blocks:
            block.release()

    # -- shard introspection ---------------------------------------------------
    def _require_plan(self) -> ShardPlan:
        if self.plan is None:
            raise RuntimeError(
                "sharded cache has no shard plan yet; call attach_index first"
            )
        return self.plan

    def shard_occupancy(self) -> np.ndarray:
        """Initialised (live) storage rows per shard; shape ``[n_shards]``."""
        plan = self._require_plan()
        assert self._live is not None
        return plan.occupancy_of(np.flatnonzero(self._live))

    def shard_load_factors(self) -> np.ndarray:
        """Live-row fraction per shard; shape ``[n_shards]``, in [0, 1].

        The numeric per-shard occupancy the obs layer records per epoch
        (the CLI's ``cache_stats`` strings are for humans); a skewed
        vector here means the shard plan is load-imbalanced for this key
        distribution.
        """
        plan = self._require_plan()
        sizes = plan.rows_per_shard().astype(np.float64)
        return self.shard_occupancy() / np.maximum(sizes, 1.0)

    def shard_key_ownership(self) -> np.ndarray:
        """Distinct cache keys whose storage row each shard owns.

        For the ``array`` scheme this equals the shard's row count; for
        the bucketed scheme it is the number of keys hashing into the
        shard's bucket range (collisions make it exceed the row count).
        """
        plan = self._require_plan()
        index = self._index
        assert index is not None
        all_rows = self.storage_rows(  # type: ignore[attr-defined]
            np.arange(index.n_keys, dtype=np.int64)
        )
        return plan.occupancy_of(all_rows)

    def worker_layout(self) -> dict[str, object]:
        """The pieces a refresh worker needs to view this store's rows."""
        self._require_plan()
        return {
            "ids": self._ids,
            "live": self._live,
            "scores": self._scores,
            "plan": self.plan,
            "size": self.size,  # type: ignore[attr-defined]
            "store_scores": self.store_scores,  # type: ignore[attr-defined]
        }


class ShardedArrayCache(ShardedCacheStore, ArrayNegativeCache):
    """Unbounded array scheme (one row per key) in shared memory."""

    def __repr__(self) -> str:
        n_keys = self._index.n_keys if self._index is not None else 0
        return (
            f"ShardedArrayCache(size={self.size}, n_keys={n_keys}, "
            f"n_shards={self.n_shards}, entries={self.n_entries})"
        )


class ShardedBucketedArrayCache(ShardedCacheStore, BucketedArrayCache):
    """Memory-bounded bucket scheme in shared memory; shards own buckets."""

    def __repr__(self) -> str:
        return (
            f"ShardedBucketedArrayCache(size={self.size}, "
            f"n_buckets={self.n_buckets}, n_shards={self.n_shards}, "
            f"entries={self.n_entries})"
        )


def check_sharded_options(options: Mapping[str, object]) -> None:
    """Value checks for the ``sharded-array`` backend options.

    Registered as the backend's ``check_options`` hook so bad values fail
    at sampler construction / ``make_cache_backend`` with a clean
    ``ValueError`` (the CLI's exit-2 path) instead of deep inside
    allocation at bind time.
    """
    from repro.core.store import require_positive_int_options

    require_positive_int_options(options, "n_shards", "n_buckets")
    inner = options.get("inner", "array")
    if inner not in SHARDED_INNER_BACKENDS:
        raise ValueError(
            f"sharded-array inner backend must be one of "
            f"{SHARDED_INNER_BACKENDS}, got {inner!r}"
        )
    if "n_buckets" in options and inner != "bucketed-array":
        raise ValueError(
            "n_buckets only applies to the bucketed-array inner backend; "
            "pass inner='bucketed-array' (the CLI does this automatically "
            "when --n-buckets is given)"
        )


def make_sharded_cache(
    size: int,
    n_entities: int,
    rng: np.random.Generator | int | None = None,
    *,
    store_scores: bool = False,
    n_shards: int = 1,
    inner: str = "array",
    n_buckets: int | None = None,
) -> ShardedCacheStore:
    """Factory for the ``sharded-array`` backend registry entry."""
    check_sharded_options(
        {"n_shards": n_shards, "inner": inner}
        | ({"n_buckets": n_buckets} if n_buckets is not None else {})
    )
    if inner == "bucketed-array":
        return ShardedBucketedArrayCache(
            size,
            n_entities,
            rng,
            n_shards=n_shards,
            n_buckets=1024 if n_buckets is None else n_buckets,
            store_scores=store_scores,
        )
    return ShardedArrayCache(
        size, n_entities, rng, n_shards=n_shards, store_scores=store_scores
    )
