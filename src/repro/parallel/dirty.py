"""Dirty-row tracking for incremental parameter synchronisation.

The :class:`~repro.parallel.pool.RefreshPool` keeps its workers on
current embeddings by mirroring the model's parameters into shared
memory before every refresh.  A full mirror is one ``memcpy`` of *every*
parameter table per batch — at million-entity scale that copy, not the
refresh, dominates and worker counts stop paying.  But one optimiser
step only touches the rows of the batch's entities and relations (the
sparse :class:`~repro.models.params.GradientBag` names them exactly), so
the mirror only needs those **dirty rows**: ``shared[rows] = param[rows]``.

A :class:`DirtyRowTracker` accumulates the touched rows per parameter
between syncs.  Every tracker starts **fully dirty** — the first drain
after construction (or after :meth:`mark_all`) reports a full copy, so a
consumer that honours the ``None`` sentinel is always correct even when
nothing was ever marked.  Marks are appended raw (no per-batch
deduplication on the hot path); :meth:`drain` compacts with one
``np.unique``.  When the raw marks for a parameter exceed
``full_threshold`` of its rows the tracker compacts early and — if the
*unique* count still exceeds the threshold — collapses to fully dirty:
a contiguous block copy beats fancy indexing over most of the table.

The pool keeps one tracker per shared parameter buffer (double
buffering syncs each buffer on alternating batches, so each tracker
accumulates the rows dirtied since *its* buffer was last published).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

__all__ = ["DirtyRowTracker"]


class DirtyRowTracker:
    """Accumulates dirty row indices per named parameter table.

    Parameters
    ----------
    row_counts:
        ``{parameter name: number of rows}`` for every tracked table.
        Marks for unknown names raise ``KeyError`` (a silent typo here
        would mean silently stale worker parameters).
    full_threshold:
        Fraction of a table's rows beyond which the tracker collapses to
        "fully dirty" (default 0.5): past that point one contiguous copy
        is cheaper than a fancy-indexed gather/scatter pair.
    """

    def __init__(
        self,
        row_counts: Mapping[str, int],
        *,
        full_threshold: float = 0.5,
    ) -> None:
        if not 0.0 < full_threshold <= 1.0:
            raise ValueError(
                f"full_threshold must be in (0, 1], got {full_threshold}"
            )
        self.row_counts = {
            name: int(count) for name, count in row_counts.items()
        }
        for name, count in self.row_counts.items():
            if count < 1:
                raise ValueError(
                    f"row count for {name!r} must be >= 1, got {count}"
                )
        self.full_threshold = float(full_threshold)
        # Start fully dirty: the first sync after construction must be a
        # full copy (the shared buffer holds zeros, not parameters).
        self._full: set[str] = set(self.row_counts)
        self._chunks: dict[str, list[np.ndarray]] = {
            name: [] for name in self.row_counts
        }
        self._raw_counts: dict[str, int] = dict.fromkeys(self.row_counts, 0)

    # -- marking (hot path) ---------------------------------------------------
    def mark(self, name: str, rows: np.ndarray) -> None:
        """Record that ``param[name][rows]`` changed since the last drain."""
        limit = self.row_counts.get(name)
        if limit is None:
            raise KeyError(
                f"unknown parameter {name!r}; tracking "
                f"{sorted(self.row_counts)}"
            )
        if name in self._full:
            return  # already fully dirty — marks add nothing
        rows = np.asarray(rows, dtype=np.int64).ravel()
        if len(rows) == 0:
            return
        if rows.min() < 0 or rows.max() >= limit:
            raise ValueError(
                f"rows for {name!r} must lie in [0, {limit}), got range "
                f"[{rows.min()}, {rows.max()}]"
            )
        self._chunks[name].append(rows)
        self._raw_counts[name] += len(rows)
        if self._raw_counts[name] >= self.full_threshold * limit:
            self._compact(name)

    def mark_all(self, name: str | None = None) -> None:
        """Mark one table (or every table) as fully dirty."""
        names: Iterable[str]
        if name is None:
            names = self.row_counts
        elif name in self.row_counts:
            names = (name,)
        else:
            raise KeyError(
                f"unknown parameter {name!r}; tracking "
                f"{sorted(self.row_counts)}"
            )
        for n in names:
            self._full.add(n)
            self._chunks[n] = []
            self._raw_counts[n] = 0

    def _compact(self, name: str) -> None:
        """Dedup the raw marks; collapse to full past the threshold."""
        unique = np.unique(np.concatenate(self._chunks[name]))
        if len(unique) >= self.full_threshold * self.row_counts[name]:
            self.mark_all(name)
        else:
            self._chunks[name] = [unique]
            self._raw_counts[name] = len(unique)

    # -- draining -------------------------------------------------------------
    def drain(self, name: str) -> np.ndarray | None:
        """The dirty rows of ``name`` since the last drain; resets to clean.

        ``None`` means *fully dirty* — the consumer must copy the whole
        table.  Otherwise the sorted unique row indices are returned
        (possibly empty: nothing to sync).
        """
        if name not in self.row_counts:
            raise KeyError(
                f"unknown parameter {name!r}; tracking "
                f"{sorted(self.row_counts)}"
            )
        if name in self._full:
            self._full.discard(name)
            return None
        chunks = self._chunks[name]
        self._chunks[name] = []
        self._raw_counts[name] = 0
        if not chunks:
            return np.empty(0, dtype=np.int64)
        if len(chunks) == 1:
            return np.unique(chunks[0])
        return np.unique(np.concatenate(chunks))

    # -- introspection --------------------------------------------------------
    def is_full(self, name: str) -> bool:
        """Whether ``name`` is currently marked fully dirty."""
        return name in self._full

    def pending_rows(self, name: str) -> int:
        """Upper bound on the dirty rows a drain of ``name`` would return.

        Raw (pre-dedup) count, or the table's row count when fully
        dirty — an O(1) read for telemetry, never a compaction.
        """
        if name in self._full:
            return self.row_counts[name]
        return self._raw_counts[name]

    def pending_fraction(self) -> float:
        """Dirty fraction over all tracked rows (upper bound, in [0, 1])."""
        total = sum(self.row_counts.values())
        pending = sum(self.pending_rows(name) for name in self.row_counts)
        return min(1.0, pending / total)

    def __repr__(self) -> str:
        pending = {name: self.pending_rows(name) for name in self.row_counts}
        return f"DirtyRowTracker(pending={pending}, full={sorted(self._full)})"
