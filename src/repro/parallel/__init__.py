"""Sharded cache row-space and multiprocess epoch refresh.

The NSCaching refresh is the trainer's dominant cost and is
embarrassingly parallel once write ownership is made explicit: cache
storage rows are the unit of ownership, and batches touching disjoint
row ranges can refresh concurrently with zero locking.  This package
provides the three pieces:

* :class:`~repro.parallel.plan.ShardPlan` — partitions a storage
  row-space (key rows or bucket rows) into contiguous shard ranges and
  assigns each batch's touched rows to shards;
* :class:`~repro.parallel.sharded.ShardedCacheStore` — the
  ``sharded-array`` cache backend: the array engine's storage moved into
  ``multiprocessing.shared_memory`` with a shard plan overlaid,
  bit-identical to the unsharded backends under a seed;
* :class:`~repro.parallel.pool.RefreshPool` — persistent worker
  processes running the fused score-and-select refresh per shard against
  the shared storage, with deterministic per-``(mode, shard, epoch,
  batch)`` RNG streams and a bit-identical in-process fallback.

``NSCachingSampler(refresh_workers=..., cache_backend="sharded-array")``
wires them together; the CLI exposes ``--n-shards``/``--refresh-workers``.
"""

from repro.parallel.dirty import DirtyRowTracker
from repro.parallel.plan import ShardPlan
from repro.parallel.pool import RefreshPool, ShardResult, ShardTask, SyncReport
from repro.parallel.sharded import (
    ShardedArrayCache,
    ShardedBucketedArrayCache,
    ShardedCacheStore,
    SharedArrayBlock,
    make_sharded_cache,
)

__all__ = [
    "DirtyRowTracker",
    "RefreshPool",
    "ShardPlan",
    "ShardResult",
    "ShardTask",
    "ShardedArrayCache",
    "ShardedBucketedArrayCache",
    "ShardedCacheStore",
    "SharedArrayBlock",
    "SyncReport",
    "make_sharded_cache",
]
